"""Hardened, parallel fault-injection campaign engine.

The original :class:`repro.gpusim.faults.FaultCampaign` injects only into
the register file, runs strictly serially, and assumes checkpoint storage
and the recovery runtime are fault-free.  This engine removes all three
assumptions:

- **Wider surface.**  Injections are drawn from three surfaces: the
  register file (``rf``), checkpoint slots in shared/global memory under a
  SECDED correct-or-escalate model (``ckpt``), and the recovery runtime
  itself — strikes between restore actions or just before a slot load
  (``recovery``), exercising re-entrant recovery under the
  ``max_recoveries_per_thread`` budget.

- **DUE taxonomy.**  Every detected-unrecoverable outcome carries a
  :class:`repro.gpusim.faults.DueType` label — ``no_runtime``,
  ``budget_exhausted``, ``missing_metadata``, ``slice_failure``,
  ``memory_exception`` or ``watchdog_timeout`` — instead of one lossy
  ``DUE`` bucket.

- **Scale.**  Injections run on the *supervised* worker pool
  (:class:`repro.runtime.pool.WorkerPool`) with deterministic per-index
  seeding (an injection's plan depends only on the campaign seed and its
  index, never on scheduling), a per-injection instruction-budget
  watchdog, a crash-safe JSONL journal that survives a mid-campaign kill
  and resumes to the identical final report, :meth:`CampaignReport.merge`
  for sharded campaigns, and Wilson-score confidence intervals on the
  outcome rates.

- **Supervision.**  A worker that segfaults, is OOM-killed, or hangs
  past the wall-clock deadline (``wall_timeout`` — distinct from the
  instruction-budget watchdog, which cannot fire when the *worker* is
  wedged) takes down exactly one injection attempt: the index is retried
  on another worker, and an index whose attempts kill
  ``poison_threshold`` consecutive workers is quarantined and journaled
  as a typed ``worker_crash`` DUE record — the sweep-level analogue of a
  detected-unrecoverable error, classified and survived instead of
  fatal.  SIGINT/SIGTERM drain gracefully: the journal is flushed, the
  partial report is tagged resumable, and ``--resume`` completes the
  sweep to the identical report.  At the end of an uninterrupted run the
  engine *reconciles*: every index accounted for exactly once
  (journaled ∪ retried ∪ quarantined) or a
  :class:`repro.runtime.errors.ReconciliationError` is raised.

Journal format (version 2): line 1 is a header ``{"spec": {...},
"version": 2}``; every subsequent line is one :class:`InjectionRecord`
as JSON.  Each line carries a CRC32 trailer (``<json>\\t<8-hex-crc>``)
so torn or bit-rotted records are *detected*, not silently mis-parsed;
:func:`fsck_journal` validates checksums and schema, skipping and
counting corrupt lines.  Version-1 lines (no trailer) are still
accepted as ``legacy``.  Lines are written append-only and flushed per
record, so after a crash the journal holds a header plus complete
records (a torn final line is detected and dropped on resume).
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import math
import os
import random
import signal
import threading
import zlib
from collections import Counter as _IndexCounter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.obs.metrics import Counters
from repro.gpusim.backend import make_executor
from repro.gpusim.executor import SimulationError
from repro.gpusim.faults import (
    CheckpointFaultPlan,
    ComposedFaultPlan,
    DueType,
    FaultOutcome,
    FaultPlan,
    RecoveryFaultPlan,
    classify_due,
)
from repro.gpusim.memory import MemoryError32
from repro.runtime.errors import (
    PoisonJobError,
    ReconciliationError,
    TaskRuntimeError,
)
from repro.runtime.pool import PoolConfig, WorkerPool

JOURNAL_VERSION = 2

#: surface label of records synthesized for quarantined indices (the
#: fault hit the *harness*, not a simulated structure)
SURFACE_HARNESS = "harness"


def _campaign_chaos():
    """Late-bound :func:`repro.serve.chaos.active_chaos` (lazy so
    importing the campaign engine does not pull in the serving stack)."""
    from repro.serve.chaos import active_chaos

    return active_chaos()

SURFACE_RF = "rf"
SURFACE_CKPT = "ckpt"
SURFACE_RECOVERY = "recovery"
ALL_SURFACES = (SURFACE_RF, SURFACE_CKPT, SURFACE_RECOVERY)


def stable_seed(campaign_seed: int, index: int) -> int:
    """Deterministic 63-bit seed for injection ``index`` of a campaign.

    Derived with SHA-256 so it is stable across processes, Python versions
    and ``PYTHONHASHSEED`` — the property the resumable journal and shard
    merging depend on (same seed → same plan → same outcome).
    """
    digest = hashlib.sha256(
        f"{campaign_seed}:{index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float, float]:
    """Wilson score interval: ``(rate, lower, upper)`` at confidence ``z``.

    Unlike the normal approximation it behaves at the boundaries — the
    regime campaigns care about, since the interesting rates (SDC on
    single-bit faults) are exactly zero and the claim is the upper bound.
    """
    if trials <= 0:
        return (0.0, 0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return (p, max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to (re)build a campaign anywhere.

    The spec is pure data so worker processes can reconstruct the compiled
    kernel, the golden run and every injection plan from it alone — that is
    what makes the journal resumable and shards mergeable.
    """

    benchmark: str
    scheme: str = "Penny"  # a scheme preset name, or "none" (unprotected)
    rf_code: str = "parity"  # parity | secded | none
    num_injections: int = 100
    seed: int = 2020
    surfaces: Tuple[str, ...] = (SURFACE_RF,)
    bits_per_fault: int = 1
    pattern: str = "random"  # random | burst
    ckpt_bits: Tuple[int, ...] = (1, 2)
    recovery_repeat_rate: float = 0.25
    max_instructions: int = 2_000_000  # per-injection watchdog budget
    max_recoveries: int = 100
    backend: str = "auto"  # executor engine: auto | scalar | vector
    #: selective-protection policy applied when compiling the scheme
    #: (:class:`repro.policy.ProtectionPolicy` string form)
    policy: str = "full"

    def __post_init__(self):
        from repro.policy import ProtectionPolicy

        # canonicalize through the parser (frozen dataclass: go around)
        object.__setattr__(
            self, "policy", str(ProtectionPolicy.parse(self.policy))
        )
        for s in self.surfaces:
            if s not in ALL_SURFACES:
                raise ValueError(f"unknown injection surface {s!r}")
        if not self.surfaces:
            raise ValueError("at least one injection surface required")
        if self.pattern not in ("random", "burst"):
            raise ValueError(f"unknown fault pattern {self.pattern!r}")
        if self.rf_code not in ("parity", "secded", "none"):
            raise ValueError(f"unknown rf code {self.rf_code!r}")
        if self.num_injections < 0:
            raise ValueError("num_injections must be >= 0")
        if self.backend not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown executor backend {self.backend!r}")

    def to_dict(self) -> Dict:
        d = dataclasses.asdict(self)
        d["surfaces"] = list(self.surfaces)
        d["ckpt_bits"] = list(self.ckpt_bits)
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "CampaignSpec":
        d = dict(d)
        d["surfaces"] = tuple(d.get("surfaces", (SURFACE_RF,)))
        d["ckpt_bits"] = tuple(d.get("ckpt_bits", (1, 2)))
        return cls(**d)


@dataclass
class InjectionRecord:
    """One journaled injection outcome (plain data, JSONL-serializable).

    ``counters`` is the injection's :class:`repro.obs.Counters` snapshot
    (instruction classes, recovery re-execution histogram, ...) captured
    by whichever worker ran it.  Because an injection's simulation is
    deterministic in its seed, the snapshot is a pure function of the
    record's index — so shard merging (which deduplicates by index) sums
    counter totals to exactly the serial run's.  ``None`` on records from
    journals predating the observability layer.
    """

    index: int
    surface: str
    outcome: str
    due_cause: Optional[str] = None
    detections: int = 0
    recoveries: int = 0
    instructions: int = 0
    seed: int = 0
    detail: Optional[str] = None
    counters: Optional[Dict] = None

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "InjectionRecord":
        return cls(**json.loads(line))


@dataclass
class CampaignReport:
    """Aggregated campaign results with taxonomy and confidence intervals.

    Implements the :class:`repro.obs.Reportable` protocol; ``counters()``
    folds the per-record metric snapshots into one registry whose totals
    are independent of sharding and worker scheduling.
    """

    records: List[InjectionRecord] = field(default_factory=list)
    spec: Optional[CampaignSpec] = None
    #: True when the run was drained early (SIGINT/SIGTERM): the report
    #: is partial but the journal is flushed, so ``--resume`` completes
    #: it to the identical uninterrupted report
    interrupted: bool = False
    #: supervision counters of the pool that ran this sweep (restarts,
    #: crashes, retries, quarantined, ...); ``None`` for inline runs
    supervision: Optional[Dict[str, Any]] = None

    def count(self, outcome: FaultOutcome) -> int:
        return sum(1 for r in self.records if r.outcome == outcome.value)

    def summary(self) -> Dict[str, int]:
        return {o.value: self.count(o) for o in FaultOutcome}

    def due_taxonomy(self) -> Dict[str, int]:
        """DUE counts by taxonomy label (only labels that occurred)."""
        taxonomy: Dict[str, int] = {}
        for r in self.records:
            if r.outcome == FaultOutcome.DUE.value:
                label = r.due_cause or "unclassified"
                taxonomy[label] = taxonomy.get(label, 0) + 1
        return taxonomy

    def by_surface(self) -> Dict[str, Dict[str, int]]:
        table: Dict[str, Dict[str, int]] = {}
        for r in self.records:
            row = table.setdefault(
                r.surface, {o.value: 0 for o in FaultOutcome}
            )
            row[r.outcome] += 1
        return table

    @property
    def injected_runs(self) -> int:
        return sum(
            1
            for r in self.records
            if r.outcome != FaultOutcome.NOT_INJECTED.value
        )

    def rates(self, z: float = 1.96) -> Dict[str, Tuple[float, float, float]]:
        """Wilson ``(rate, lo, hi)`` for each outcome over injected runs."""
        n = self.injected_runs
        out = {}
        for o in (
            FaultOutcome.MASKED,
            FaultOutcome.RECOVERED,
            FaultOutcome.SDC,
            FaultOutcome.DUE,
        ):
            out[o.value] = wilson_interval(self.count(o), n, z)
        return out

    def counters(self) -> Counters:
        """All records' metric snapshots, merged (associative: any
        sharding of the records produces the same totals)."""
        return Counters.merged(
            Counters.from_dict(r.counters)
            for r in self.records
            if r.counters
        )

    def reconciliation(self) -> Dict[str, Any]:
        """End-of-run accounting: is every index of the spec present
        exactly once?  ``missing``/``duplicates`` list the offenders."""
        expected = (
            self.spec.num_injections if self.spec else len(self.records)
        )
        counts = _IndexCounter(r.index for r in self.records)
        missing = [i for i in range(expected) if i not in counts]
        duplicates = sorted(i for i, n in counts.items() if n > 1)
        return {
            "expected": expected,
            "recorded": len(self.records),
            "missing": missing,
            "duplicates": duplicates,
            "complete": not missing and not duplicates,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "campaign_report",
            "spec": self.spec.to_dict() if self.spec else None,
            "injections": len(self.records),
            "injected_runs": self.injected_runs,
            "interrupted": self.interrupted,
            "resumable": self.interrupted,
            "supervision": self.supervision,
            "reconciliation": self.reconciliation(),
            "records": [dataclasses.asdict(r) for r in self.records],
            "summary": self.summary(),
            "due_taxonomy": dict(sorted(self.due_taxonomy().items())),
            "by_surface": {
                s: row for s, row in sorted(self.by_surface().items())
            },
            "rates": {
                k: {"rate": p, "lo": lo, "hi": hi}
                for k, (p, lo, hi) in self.rates().items()
            },
            "counters": self.counters().to_dict(),
        }

    @classmethod
    def merge(cls, reports: Iterable["CampaignReport"]) -> "CampaignReport":
        """Merge shard reports into one.  Records are deduplicated by
        injection index (identical seeds produce identical records, so the
        first occurrence wins) and re-sorted.  Deduplication is also what
        keeps ``counters()`` totals equal to a serial run's no matter how
        the shards overlapped."""
        seen: Dict[int, InjectionRecord] = {}
        spec = None
        for rep in reports:
            if spec is None:
                spec = rep.spec
            for r in rep.records:
                seen.setdefault(r.index, r)
        merged = sorted(seen.values(), key=lambda r: r.index)
        return cls(records=merged, spec=spec)


# -- per-process campaign state --------------------------------------------------


def _code_factory(name: str):
    if name == "parity":
        from repro.coding import ParityCode

        return lambda: ParityCode(32)
    if name == "secded":
        from repro.coding import SecdedCode

        return lambda: SecdedCode(32)
    if name == "none":
        return lambda: None
    raise ValueError(f"unknown rf code {name!r}")


class _CampaignState:
    """Compiled kernel + golden profile, built once per process."""

    def __init__(self, spec: CampaignSpec):
        from repro.bench import get_benchmark

        self.spec = spec
        bench = get_benchmark(spec.benchmark)
        self.wl = bench.workload()
        kernel = bench.fresh_kernel()
        if spec.scheme != "none":
            from repro.core.pipeline import PennyCompiler
            from repro.core.schemes import scheme_config

            config = scheme_config(spec.scheme)
            if spec.policy != "full":
                config = dataclasses.replace(config, policy=spec.policy)
            kernel = (
                PennyCompiler(config)
                .compile(kernel, self.wl.launch_config)
                .kernel
            )
        self.kernel = kernel
        self.storage = kernel.meta.get("storage_assignment")
        self.code_factory = _code_factory(spec.rf_code)
        code = self.code_factory()
        self.codeword_bits = code.n if code is not None else 33

        # Golden run (generous budget — the watchdog is for injected runs).
        mem, _, out = self.wl.make()
        golden_exec = make_executor(
            self.kernel,
            backend=spec.backend,
            rf_code_factory=self.code_factory,
        ).run(self.wl.launch, mem)
        self.out = out
        self.golden = mem.download(*out)
        self.lifetimes = {
            key: n
            for key, n in golden_exec.thread_instructions.items()
            if n >= 2
        }
        if not self.lifetimes:
            raise ValueError(
                f"{spec.benchmark}: no thread executed enough instructions"
            )
        self.keys = sorted(self.lifetimes)

    # -- deterministic plan construction --

    def plan_for_index(self, index: int):
        """Build injection ``index``'s plan.  Depends only on the spec and
        the (deterministic) golden profile."""
        spec = self.spec
        seed = stable_seed(spec.seed, index)
        rng = random.Random(seed)
        surface = spec.surfaces[rng.randrange(len(spec.surfaces))]
        ctaid, tid = self.keys[rng.randrange(len(self.keys))]
        horizon = self.lifetimes[(ctaid, tid)]
        point = rng.randrange(1, max(2, horizon))
        bits = self._draw_bits(rng, spec.bits_per_fault)

        if surface == SURFACE_CKPT and (
            self.storage is None or not self.storage.slots
        ):
            surface = SURFACE_RF  # nothing to strike; degrade honestly
        if surface == SURFACE_RECOVERY and not self.kernel.meta.get(
            "recovery_table"
        ):
            surface = SURFACE_RF

        if surface == SURFACE_RF:
            plan = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=point,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
        elif surface == SURFACE_CKPT:
            # A slot strike alone is invisible until recovery reads the
            # slot, so pair it with an RF fault that triggers recovery.
            nbits = spec.ckpt_bits[rng.randrange(len(spec.ckpt_bits))]
            ckpt_point = rng.randrange(1, max(2, horizon))
            plan = ComposedFaultPlan(
                plans=[
                    CheckpointFaultPlan(
                        ctaid=ctaid,
                        tid=tid,
                        after_instructions=min(point, ckpt_point),
                        num_bits=nbits,
                        rng_seed=rng.getrandbits(30),
                        storage=self.storage,
                    ),
                    FaultPlan(
                        ctaid=ctaid,
                        tid=tid,
                        after_instructions=max(point, ckpt_point),
                        bits=bits,
                        rng_seed=rng.getrandbits(30),
                    ),
                ]
            )
        else:  # SURFACE_RECOVERY
            primary = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=point,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
            mode = "register" if rng.random() < 0.5 else "slot"
            plan = RecoveryFaultPlan(
                primary=primary,
                strike_restore=rng.randrange(4),
                mode=mode,
                bits=(rng.randrange(self.codeword_bits),),
                repeat=rng.random() < spec.recovery_repeat_rate,
                storage=self.storage,
            )
        return surface, seed, plan

    def _draw_bits(self, rng: random.Random, nbits: int) -> Tuple[int, ...]:
        if self.spec.pattern == "burst":
            start = rng.randrange(self.codeword_bits - nbits + 1)
            return tuple(range(start, start + nbits))
        return tuple(rng.sample(range(self.codeword_bits), nbits))

    # -- one injection --

    def run_index(self, index: int) -> InjectionRecord:
        surface, seed, plan = self.plan_for_index(index)
        mem = self.wl.make_memory()
        executor = make_executor(
            self.kernel,
            backend=self.spec.backend,
            rf_code_factory=self.code_factory,
            max_instructions_per_thread=self.spec.max_instructions,
            max_recoveries_per_thread=self.spec.max_recoveries,
            fault_plan=plan,
        )
        # A span-less tracer scoped to this one injection: the executor's
        # end-of-run dump and recovery histograms land in a fresh registry
        # whose snapshot rides on the record across the process boundary.
        injection_obs = obs.Tracer(record_spans=False)
        try:
            with injection_obs:
                result = executor.run(self.wl.launch, mem)
        except (SimulationError, MemoryError32) as exc:
            injection_obs.counters.inc(f"campaign.due.{classify_due(exc).value}")
            return InjectionRecord(
                index=index,
                surface=surface,
                outcome=FaultOutcome.DUE.value,
                due_cause=classify_due(exc).value,
                detections=-1,
                recoveries=-1,
                instructions=-1,
                seed=seed,
                detail=str(exc),
                counters=injection_obs.counters.to_dict(),
            )
        output = mem.download(*self.out)
        if not plan.injected:
            outcome = FaultOutcome.NOT_INJECTED
        elif output == self.golden:
            outcome = (
                FaultOutcome.RECOVERED
                if result.recoveries > 0
                else FaultOutcome.MASKED
            )
        else:
            outcome = FaultOutcome.SDC
        injection_obs.counters.inc(f"campaign.outcome.{outcome.value}")
        return InjectionRecord(
            index=index,
            surface=surface,
            outcome=outcome.value,
            detections=result.detections,
            recoveries=result.recoveries,
            instructions=result.instructions,
            seed=seed,
            detail=_plan_detail(plan),
            counters=injection_obs.counters.to_dict(),
        )


def _plan_detail(plan) -> Optional[str]:
    if isinstance(plan, ComposedFaultPlan):
        parts = [_plan_detail(p) for p in plan.plans]
        return "+".join(p for p in parts if p) or None
    if isinstance(plan, CheckpointFaultPlan):
        if plan.effect:
            return f"ckpt:{plan.effect}:{plan.hit_slot or '-'}"
        return None
    if isinstance(plan, RecoveryFaultPlan):
        tag = f"recovery:{plan.mode}:strikes={plan.strikes}"
        if plan.repeat:
            tag += ":repeat"
        return tag
    if isinstance(plan, FaultPlan):
        return f"rf:{plan.hit_register or '-'}"
    return None


# -- worker-pool plumbing --------------------------------------------------------

_WORKER_STATE: Optional[Tuple[str, _CampaignState]] = None


def _spec_digest(spec_dict: Dict) -> str:
    return hashlib.sha256(
        json.dumps(spec_dict, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _pool_runner(payload: Dict) -> Dict:
    """The supervised pool's task runner: one injection per call.

    The compiled kernel + golden profile are built once per worker
    process and cached by spec digest, so a restarted worker rebuilds
    them exactly once and consecutive injections pay nothing.
    """
    global _WORKER_STATE
    spec_dict = payload["spec"]
    digest = _spec_digest(spec_dict)
    if _WORKER_STATE is None or _WORKER_STATE[0] != digest:
        _WORKER_STATE = (
            digest,
            _CampaignState(CampaignSpec.from_dict(spec_dict)),
        )
    return dataclasses.asdict(
        _WORKER_STATE[1].run_index(int(payload["index"]))
    )


# -- journal ---------------------------------------------------------------------


def _crc_line(payload: str) -> str:
    """Version-2 journal line: payload + tab + 8-hex CRC32.

    ``json.dumps`` never emits a raw tab (it escapes to ``\\t``), so
    splitting on the *last* tab is unambiguous.
    """
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{payload}\t{crc:08x}"


def _parse_journal_line(line: str) -> Tuple[Optional[Dict], str]:
    """One journal line -> ``(object, status)`` where status is ``"ok"``
    (CRC-verified v2 line), ``"legacy"`` (v1 line, no trailer) or
    ``"corrupt"`` (bad CRC, bad JSON, or not a record object)."""
    if "\t" in line:
        payload, _, trailer = line.rpartition("\t")
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        if trailer != f"{crc:08x}":
            return None, "corrupt"
        status = "ok"
    else:
        payload, status = line, "legacy"
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError:
        return None, "corrupt"
    if not isinstance(obj, dict):
        # A torn fragment can still parse (a bare number, a string):
        # anything but a record object is corrupt.
        return None, "corrupt"
    return obj, status


@dataclass
class JournalFsck:
    """The result of validating one journal file.

    ``records`` holds every line that survived checksum + schema
    validation, keyed by index (last occurrence wins, matching the
    append-only log's "later supersedes earlier" semantics);
    ``corrupt_lines`` counts lines that did not.
    """

    path: str
    header: Optional[Dict] = None
    records: Dict[int, InjectionRecord] = field(default_factory=dict)
    total_lines: int = 0
    record_lines: int = 0
    corrupt_lines: int = 0
    legacy_lines: int = 0
    duplicate_indices: List[int] = field(default_factory=list)

    def reconcile(self, expected: Optional[int] = None) -> Dict[str, Any]:
        """Accounting summary against ``expected`` indices (defaults to
        the header spec's ``num_injections``)."""
        if expected is None and self.header is not None:
            expected = self.header.get("spec", {}).get("num_injections")
        if expected is None:
            expected = (max(self.records) + 1) if self.records else 0
        missing = [i for i in range(expected) if i not in self.records]
        return {
            "expected": expected,
            "recorded": len(self.records),
            "missing": missing,
            "duplicates": list(self.duplicate_indices),
            "corrupt_lines": self.corrupt_lines,
            "legacy_lines": self.legacy_lines,
            "complete": not missing and not self.duplicate_indices,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "journal_fsck",
            "path": self.path,
            "version": (
                self.header.get("version") if self.header else None
            ),
            "total_lines": self.total_lines,
            "record_lines": self.record_lines,
            "corrupt_lines": self.corrupt_lines,
            "legacy_lines": self.legacy_lines,
            "reconciliation": self.reconcile(),
        }


def fsck_journal(path: str) -> JournalFsck:
    """Validate a (possibly truncated, possibly bit-rotted) journal.

    Every line is checksum- and schema-checked; torn or corrupt lines —
    the tail of a killed campaign, a flipped disk bit — are skipped and
    *counted*, never fatal and never silently mis-parsed as data.
    """
    fsck = JournalFsck(path=path)
    if not os.path.exists(path):
        return fsck
    # errors="replace": truncation mid multi-byte character must read as
    # a corrupt line, not raise UnicodeDecodeError.
    with open(path, errors="replace") as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            fsck.total_lines += 1
            obj, status = _parse_journal_line(line)
            if status == "corrupt":
                fsck.corrupt_lines += 1
                continue
            if status == "legacy":
                fsck.legacy_lines += 1
            if fsck.header is None and "spec" in obj and lineno == 0:
                fsck.header = obj
                continue
            try:
                rec = InjectionRecord(**obj)
            except TypeError:
                fsck.corrupt_lines += 1
                if status == "legacy":
                    fsck.legacy_lines -= 1
                continue
            fsck.record_lines += 1
            if (
                rec.index in fsck.records
                and rec.index not in fsck.duplicate_indices
            ):
                fsck.duplicate_indices.append(rec.index)
            fsck.records[rec.index] = rec
    fsck.duplicate_indices.sort()
    return fsck


def load_journal(path: str) -> Tuple[Optional[Dict], Dict[int, InjectionRecord]]:
    """Read a (possibly truncated) journal.  Returns the header spec dict
    (or None) and the complete records by index.  Torn or corrupt lines —
    the tail of a killed campaign — are skipped, not fatal."""
    fsck = fsck_journal(path)
    return fsck.header, fsck.records


class _Journal:
    """Append-only checksummed JSONL writer, flushed per record.

    Write faults (real ``OSError`` or injected ``journal.torn`` /
    ``journal.enospc`` chaos) never propagate: the record stays in the
    engine's memory, ``write_errors`` counts it, and the engine calls
    :meth:`repair` at end of run to append whatever the disk is missing
    — so a journal hole costs a repair pass, not a record.
    """

    def __init__(self, path: str, spec: CampaignSpec, fresh: bool):
        self.path = path
        self.write_errors = 0
        self._torn = False
        mode = "w" if fresh else "a"
        if not fresh and os.path.exists(path) and os.path.getsize(path) > 0:
            # A kill can tear the final line without a newline; terminate
            # it so the first appended record does not merge into it (the
            # torn fragment then parses as one corrupt line and is skipped
            # on load, instead of eating a fresh record).
            with open(path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                torn = f.read(1) != b"\n"
            if torn:
                with open(path, "a") as f:
                    f.write("\n")
        self._f = open(path, mode)
        if fresh:
            self._write_line(
                json.dumps(
                    {"spec": spec.to_dict(), "version": JOURNAL_VERSION},
                    sort_keys=True,
                )
            )

    def _raw_write(self, text: str) -> None:
        if self._torn:
            # The previous write died mid-line: terminate the fragment so
            # it costs exactly one corrupt line, not the next record too.
            text = "\n" + text
            self._torn = False
        self._f.write(text)
        self._f.flush()
        os.fsync(self._f.fileno())

    def _write_line(self, payload: str) -> None:
        self._raw_write(_crc_line(payload) + "\n")

    def append(self, record: InjectionRecord) -> bool:
        """Write one record; returns False (and counts) on a write
        fault instead of raising."""
        payload = record.to_json()
        chaos = _campaign_chaos()
        rule = None
        if chaos is not None:
            from repro.serve.chaos import SITE_JOURNAL_WRITE

            rule = chaos.decide(SITE_JOURNAL_WRITE, index=record.index)
        try:
            if rule is not None and rule.action == "enospc":
                raise OSError(
                    errno.ENOSPC, "no space left on device (chaos)"
                )
            if rule is not None and rule.action == "torn":
                line = _crc_line(payload)
                self._raw_write(line[: max(1, len(line) // 2)])
                self._torn = True
                raise OSError(errno.EIO, "torn journal write (chaos)")
            self._write_line(payload)
            return True
        except OSError:
            self.write_errors += 1
            self._torn = True  # re-terminate before the next write
            obs.inc("journal.write_errors")
            return False

    def repair(self, records: Iterable[InjectionRecord]) -> int:
        """Append every in-memory record missing on disk (fsck first);
        returns how many were appended.  Bypasses chaos — this *is* the
        recovery path."""
        self._f.flush()
        on_disk = fsck_journal(self.path).records
        appended = 0
        for rec in sorted(records, key=lambda r: r.index):
            if rec.index in on_disk:
                continue
            try:
                self._write_line(rec.to_json())
                appended += 1
            except OSError:
                self.write_errors += 1
                self._torn = True
        if appended:
            obs.inc("journal.repaired", appended)
        return appended

    def close(self) -> None:
        if self._torn:
            try:
                self._raw_write("")
            except OSError:
                pass
        self._f.close()


# -- the engine ------------------------------------------------------------------


class ParallelCampaign:
    """Runs a :class:`CampaignSpec` on the supervised worker pool with a
    checksummed, resumable journal.

    ``workers <= 1`` runs inline (no subprocesses) — same records, same
    journal.  ``resume=True`` fscks the journal, keeps every record that
    survives checksum + schema validation and only runs the missing
    indices; because plans are seeded per index, the resumed campaign's
    final report is identical to an uninterrupted run's.

    Supervision (``workers > 1``): a worker crash or hang takes down one
    injection attempt; the index is retried, and after
    ``poison_threshold`` consecutive worker deaths it is quarantined and
    recorded as a ``worker_crash`` DUE.  ``wall_timeout`` is the
    per-injection wall-clock deadline (``None`` = never) — the recovery
    net *under* the instruction-budget watchdog, for when the worker
    itself is wedged.  An uninterrupted run ends with reconciliation:
    every index exactly once, or :class:`ReconciliationError`.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        journal_path: Optional[str] = None,
        *,
        use_threads: bool = False,
        wall_timeout: Optional[float] = None,
        poison_threshold: int = 2,
    ):
        self.spec = spec
        self.workers = max(1, workers)
        self.journal_path = journal_path
        self.use_threads = use_threads
        self.wall_timeout = wall_timeout
        self.poison_threshold = poison_threshold
        self._stop = threading.Event()
        self._stop_reason: Optional[str] = None
        self._supervision: Optional[Dict[str, Any]] = None

    def request_stop(self, reason: str = "stop") -> None:
        """Ask the sweep to drain: finish nothing new, flush the journal,
        return the partial (resumable) report.  Thread- and
        signal-safe."""
        self._stop_reason = reason
        self._stop.set()

    def run(
        self, resume: bool = False, handle_signals: bool = False
    ) -> CampaignReport:
        """``handle_signals=True`` (the CLI path) installs SIGINT/SIGTERM
        handlers for the duration of the run: the first signal drains
        gracefully, a second one force-raises ``KeyboardInterrupt``."""
        self._stop.clear()
        self._stop_reason = None
        restore: List[Tuple[Any, Any]] = []
        if handle_signals:
            restore = self._install_signal_handlers()
        try:
            with obs.span(
                "campaign.run",
                benchmark=self.spec.benchmark,
                scheme=self.spec.scheme,
                injections=self.spec.num_injections,
                workers=self.workers,
                seed=self.spec.seed,
            ):
                return self._run(resume)
        finally:
            for sig, old in restore:
                try:
                    signal.signal(sig, old)
                except (ValueError, OSError):
                    pass

    def _install_signal_handlers(self) -> List[Tuple[Any, Any]]:
        def _drain(signum, frame):
            if self._stop.is_set():
                raise KeyboardInterrupt  # second signal: force
            self.request_stop(signal.Signals(signum).name)

        restore = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                restore.append((sig, signal.signal(sig, _drain)))
            except ValueError:
                pass  # not the main thread: drain via request_stop only
        return restore

    def _run(self, resume: bool) -> CampaignReport:
        n = self.spec.num_injections
        done: Dict[int, InjectionRecord] = {}
        pre_corrupt = 0
        if self.journal_path and resume:
            fsck = fsck_journal(self.journal_path)
            header = fsck.header
            if header is not None and header.get("spec") != self.spec.to_dict():
                raise ValueError(
                    "journal was written by a different campaign spec; "
                    "refusing to resume into it"
                )
            # Drop stray indices beyond this spec (defensive).
            done = {i: r for i, r in fsck.records.items() if 0 <= i < n}
            pre_corrupt = fsck.corrupt_lines
            if pre_corrupt:
                obs.inc("journal.corrupt_records", pre_corrupt)
                obs.event(
                    "journal.fsck",
                    path=self.journal_path,
                    corrupt=pre_corrupt,
                    kept=len(done),
                )
        todo = [i for i in range(n) if i not in done]
        journal = (
            _Journal(self.journal_path, self.spec, fresh=not done)
            if self.journal_path
            else None
        )
        records = list(done.values())
        self._supervision = None
        try:
            if todo:
                for rec in self._execute(todo):
                    records.append(rec)
                    if journal is not None:
                        journal.append(rec)
        finally:
            if journal is not None:
                if journal.write_errors:
                    # Holes from torn/ENOSPC writes: heal from memory so
                    # the on-disk journal matches the report.
                    journal.repair(records)
                journal.close()
        records.sort(key=lambda r: r.index)
        interrupted = (
            self._stop.is_set() and len({r.index for r in records}) < n
        )
        # Inline runs have no pool counters but still carry the journal
        # accounting, so `supervision` is always present on a report.
        supervision = dict(self._supervision or {})
        if journal is not None:
            supervision["journal_write_errors"] = journal.write_errors
        supervision["journal_corrupt_records"] = pre_corrupt
        if self._stop_reason:
            supervision["drain_reason"] = self._stop_reason
        report = CampaignReport(
            records=records,
            spec=self.spec,
            interrupted=interrupted,
            supervision=supervision,
        )
        if not interrupted:
            recon = report.reconciliation()
            if not recon["complete"]:
                raise ReconciliationError(
                    "campaign reconciliation failed: "
                    f"{len(recon['missing'])} missing, "
                    f"{len(recon['duplicates'])} duplicate indices",
                    expected=recon["expected"],
                    recorded=recon["recorded"],
                    missing=recon["missing"][:20],
                    duplicates=recon["duplicates"][:20],
                )
        return report

    def _execute(self, todo: Sequence[int]) -> Iterable[InjectionRecord]:
        if self.workers <= 1 or len(todo) <= 1:
            state = _CampaignState(self.spec)
            for i in todo:
                if self._stop.is_set():
                    return
                yield state.run_index(i)
            return
        config = PoolConfig(
            workers=self.workers,
            use_threads=self.use_threads,
            runner="repro.gpusim.campaign:_pool_runner",
            job_timeout=self.wall_timeout,
            poison_threshold=self.poison_threshold,
            chaos_site="campaign.worker",
            tick=0.005,
        )
        spec_dict = self.spec.to_dict()
        jobs = (
            (str(i), {"spec": spec_dict, "index": i}) for i in todo
        )
        with WorkerPool(config) as pool:
            for key, outcome in pool.imap_supervised(
                jobs, stop=self._stop
            ):
                index = int(key)
                if isinstance(outcome, TaskRuntimeError):
                    yield self._crash_record(index, outcome)
                else:
                    yield InjectionRecord(**outcome)
            m = pool.metrics
            self._supervision = {
                "workers": self.workers,
                "use_threads": self.use_threads,
                "wall_timeout": self.wall_timeout,
                "poison_threshold": self.poison_threshold,
                **m.to_dict(),
            }
            if m.restarts:
                obs.inc("campaign.worker_restarts", m.restarts)
            if m.retries:
                obs.inc("campaign.worker_retries", m.retries)
            if m.hung_kills:
                obs.inc("campaign.worker_hung", m.hung_kills)

    def _crash_record(
        self, index: int, exc: TaskRuntimeError
    ) -> InjectionRecord:
        """Synthesize the typed ``worker_crash`` DUE record for an index
        whose worker(s) died past the retry budget — the sweep-level
        DUE: detected, contained, and survived."""
        quarantined = isinstance(exc, PoisonJobError)
        if quarantined:
            obs.inc("campaign.quarantined")
        obs.event(
            "campaign.worker_crash",
            index=index,
            quarantined=quarantined,
            message=getattr(exc, "message", str(exc)),
        )
        counters = Counters()
        counters.inc(f"campaign.due.{DueType.WORKER_CRASH.value}")
        detail = getattr(exc, "message", str(exc))
        strikes = getattr(exc, "detail", {}).get("strikes")
        if strikes:
            detail += f" (strikes={strikes})"
        return InjectionRecord(
            index=index,
            surface=SURFACE_HARNESS,
            outcome=FaultOutcome.DUE.value,
            due_cause=DueType.WORKER_CRASH.value,
            detections=-1,
            recoveries=-1,
            instructions=-1,
            seed=stable_seed(self.spec.seed, index),
            detail=f"worker_crash: {detail}",
            counters=counters.to_dict(),
        )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
    **kwargs: Any,
) -> CampaignReport:
    """Convenience wrapper: build and run a :class:`ParallelCampaign`
    (``kwargs`` pass through to its constructor — ``use_threads``,
    ``wall_timeout``, ``poison_threshold``)."""
    return ParallelCampaign(
        spec, workers=workers, journal_path=journal_path, **kwargs
    ).run(resume=resume)
