"""Hardened, parallel fault-injection campaign engine.

The original :class:`repro.gpusim.faults.FaultCampaign` injects only into
the register file, runs strictly serially, and assumes checkpoint storage
and the recovery runtime are fault-free.  This engine removes all three
assumptions:

- **Wider surface.**  Injections are drawn from three surfaces: the
  register file (``rf``), checkpoint slots in shared/global memory under a
  SECDED correct-or-escalate model (``ckpt``), and the recovery runtime
  itself — strikes between restore actions or just before a slot load
  (``recovery``), exercising re-entrant recovery under the
  ``max_recoveries_per_thread`` budget.

- **DUE taxonomy.**  Every detected-unrecoverable outcome carries a
  :class:`repro.gpusim.faults.DueType` label — ``no_runtime``,
  ``budget_exhausted``, ``missing_metadata``, ``slice_failure``,
  ``memory_exception`` or ``watchdog_timeout`` — instead of one lossy
  ``DUE`` bucket.

- **Scale.**  Injections run on a multiprocessing worker pool with
  deterministic per-index seeding (an injection's plan depends only on the
  campaign seed and its index, never on scheduling), a per-injection
  instruction-budget watchdog, a crash-safe JSONL journal that survives a
  mid-campaign kill and resumes to the identical final report,
  :meth:`CampaignReport.merge` for sharded campaigns, and Wilson-score
  confidence intervals on the outcome rates.

Journal format: line 1 is a header ``{"spec": {...}, "version": 1}``; every
subsequent line is one :class:`InjectionRecord` as JSON.  Lines are written
append-only and flushed per record, so after a crash the journal holds a
header plus complete records (a torn final line is detected and dropped on
resume).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.obs.metrics import Counters
from repro.gpusim.executor import Executor, SimulationError
from repro.gpusim.faults import (
    CheckpointFaultPlan,
    ComposedFaultPlan,
    DueType,
    FaultOutcome,
    FaultPlan,
    RecoveryFaultPlan,
    classify_due,
)
from repro.gpusim.memory import MemoryError32

JOURNAL_VERSION = 1

SURFACE_RF = "rf"
SURFACE_CKPT = "ckpt"
SURFACE_RECOVERY = "recovery"
ALL_SURFACES = (SURFACE_RF, SURFACE_CKPT, SURFACE_RECOVERY)


def stable_seed(campaign_seed: int, index: int) -> int:
    """Deterministic 63-bit seed for injection ``index`` of a campaign.

    Derived with SHA-256 so it is stable across processes, Python versions
    and ``PYTHONHASHSEED`` — the property the resumable journal and shard
    merging depend on (same seed → same plan → same outcome).
    """
    digest = hashlib.sha256(
        f"{campaign_seed}:{index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float, float]:
    """Wilson score interval: ``(rate, lower, upper)`` at confidence ``z``.

    Unlike the normal approximation it behaves at the boundaries — the
    regime campaigns care about, since the interesting rates (SDC on
    single-bit faults) are exactly zero and the claim is the upper bound.
    """
    if trials <= 0:
        return (0.0, 0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return (p, max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to (re)build a campaign anywhere.

    The spec is pure data so worker processes can reconstruct the compiled
    kernel, the golden run and every injection plan from it alone — that is
    what makes the journal resumable and shards mergeable.
    """

    benchmark: str
    scheme: str = "Penny"  # a scheme preset name, or "none" (unprotected)
    rf_code: str = "parity"  # parity | secded | none
    num_injections: int = 100
    seed: int = 2020
    surfaces: Tuple[str, ...] = (SURFACE_RF,)
    bits_per_fault: int = 1
    pattern: str = "random"  # random | burst
    ckpt_bits: Tuple[int, ...] = (1, 2)
    recovery_repeat_rate: float = 0.25
    max_instructions: int = 2_000_000  # per-injection watchdog budget
    max_recoveries: int = 100

    def __post_init__(self):
        for s in self.surfaces:
            if s not in ALL_SURFACES:
                raise ValueError(f"unknown injection surface {s!r}")
        if not self.surfaces:
            raise ValueError("at least one injection surface required")
        if self.pattern not in ("random", "burst"):
            raise ValueError(f"unknown fault pattern {self.pattern!r}")
        if self.rf_code not in ("parity", "secded", "none"):
            raise ValueError(f"unknown rf code {self.rf_code!r}")
        if self.num_injections < 0:
            raise ValueError("num_injections must be >= 0")

    def to_dict(self) -> Dict:
        d = dataclasses.asdict(self)
        d["surfaces"] = list(self.surfaces)
        d["ckpt_bits"] = list(self.ckpt_bits)
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "CampaignSpec":
        d = dict(d)
        d["surfaces"] = tuple(d.get("surfaces", (SURFACE_RF,)))
        d["ckpt_bits"] = tuple(d.get("ckpt_bits", (1, 2)))
        return cls(**d)


@dataclass
class InjectionRecord:
    """One journaled injection outcome (plain data, JSONL-serializable).

    ``counters`` is the injection's :class:`repro.obs.Counters` snapshot
    (instruction classes, recovery re-execution histogram, ...) captured
    by whichever worker ran it.  Because an injection's simulation is
    deterministic in its seed, the snapshot is a pure function of the
    record's index — so shard merging (which deduplicates by index) sums
    counter totals to exactly the serial run's.  ``None`` on records from
    journals predating the observability layer.
    """

    index: int
    surface: str
    outcome: str
    due_cause: Optional[str] = None
    detections: int = 0
    recoveries: int = 0
    instructions: int = 0
    seed: int = 0
    detail: Optional[str] = None
    counters: Optional[Dict] = None

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "InjectionRecord":
        return cls(**json.loads(line))


@dataclass
class CampaignReport:
    """Aggregated campaign results with taxonomy and confidence intervals.

    Implements the :class:`repro.obs.Reportable` protocol; ``counters()``
    folds the per-record metric snapshots into one registry whose totals
    are independent of sharding and worker scheduling.
    """

    records: List[InjectionRecord] = field(default_factory=list)
    spec: Optional[CampaignSpec] = None

    def count(self, outcome: FaultOutcome) -> int:
        return sum(1 for r in self.records if r.outcome == outcome.value)

    def summary(self) -> Dict[str, int]:
        return {o.value: self.count(o) for o in FaultOutcome}

    def due_taxonomy(self) -> Dict[str, int]:
        """DUE counts by taxonomy label (only labels that occurred)."""
        taxonomy: Dict[str, int] = {}
        for r in self.records:
            if r.outcome == FaultOutcome.DUE.value:
                label = r.due_cause or "unclassified"
                taxonomy[label] = taxonomy.get(label, 0) + 1
        return taxonomy

    def by_surface(self) -> Dict[str, Dict[str, int]]:
        table: Dict[str, Dict[str, int]] = {}
        for r in self.records:
            row = table.setdefault(
                r.surface, {o.value: 0 for o in FaultOutcome}
            )
            row[r.outcome] += 1
        return table

    @property
    def injected_runs(self) -> int:
        return sum(
            1
            for r in self.records
            if r.outcome != FaultOutcome.NOT_INJECTED.value
        )

    def rates(self, z: float = 1.96) -> Dict[str, Tuple[float, float, float]]:
        """Wilson ``(rate, lo, hi)`` for each outcome over injected runs."""
        n = self.injected_runs
        out = {}
        for o in (
            FaultOutcome.MASKED,
            FaultOutcome.RECOVERED,
            FaultOutcome.SDC,
            FaultOutcome.DUE,
        ):
            out[o.value] = wilson_interval(self.count(o), n, z)
        return out

    def counters(self) -> Counters:
        """All records' metric snapshots, merged (associative: any
        sharding of the records produces the same totals)."""
        return Counters.merged(
            Counters.from_dict(r.counters)
            for r in self.records
            if r.counters
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "campaign_report",
            "spec": self.spec.to_dict() if self.spec else None,
            "injections": len(self.records),
            "injected_runs": self.injected_runs,
            "summary": self.summary(),
            "due_taxonomy": dict(sorted(self.due_taxonomy().items())),
            "by_surface": {
                s: row for s, row in sorted(self.by_surface().items())
            },
            "rates": {
                k: {"rate": p, "lo": lo, "hi": hi}
                for k, (p, lo, hi) in self.rates().items()
            },
            "counters": self.counters().to_dict(),
        }

    @classmethod
    def merge(cls, reports: Iterable["CampaignReport"]) -> "CampaignReport":
        """Merge shard reports into one.  Records are deduplicated by
        injection index (identical seeds produce identical records, so the
        first occurrence wins) and re-sorted.  Deduplication is also what
        keeps ``counters()`` totals equal to a serial run's no matter how
        the shards overlapped."""
        seen: Dict[int, InjectionRecord] = {}
        spec = None
        for rep in reports:
            if spec is None:
                spec = rep.spec
            for r in rep.records:
                seen.setdefault(r.index, r)
        merged = sorted(seen.values(), key=lambda r: r.index)
        return cls(records=merged, spec=spec)


# -- per-process campaign state --------------------------------------------------


def _code_factory(name: str):
    if name == "parity":
        from repro.coding import ParityCode

        return lambda: ParityCode(32)
    if name == "secded":
        from repro.coding import SecdedCode

        return lambda: SecdedCode(32)
    if name == "none":
        return lambda: None
    raise ValueError(f"unknown rf code {name!r}")


class _CampaignState:
    """Compiled kernel + golden profile, built once per process."""

    def __init__(self, spec: CampaignSpec):
        from repro.bench import get_benchmark

        self.spec = spec
        bench = get_benchmark(spec.benchmark)
        self.wl = bench.workload()
        kernel = bench.fresh_kernel()
        if spec.scheme != "none":
            from repro.core.pipeline import PennyCompiler
            from repro.core.schemes import scheme_config

            kernel = (
                PennyCompiler(scheme_config(spec.scheme))
                .compile(kernel, self.wl.launch_config)
                .kernel
            )
        self.kernel = kernel
        self.storage = kernel.meta.get("storage_assignment")
        self.code_factory = _code_factory(spec.rf_code)
        code = self.code_factory()
        self.codeword_bits = code.n if code is not None else 33

        # Golden run (generous budget — the watchdog is for injected runs).
        mem, _, out = self.wl.make()
        golden_exec = Executor(
            self.kernel, rf_code_factory=self.code_factory
        ).run(self.wl.launch, mem)
        self.out = out
        self.golden = mem.download(*out)
        self.lifetimes = {
            key: n
            for key, n in golden_exec.thread_instructions.items()
            if n >= 2
        }
        if not self.lifetimes:
            raise ValueError(
                f"{spec.benchmark}: no thread executed enough instructions"
            )
        self.keys = sorted(self.lifetimes)

    # -- deterministic plan construction --

    def plan_for_index(self, index: int):
        """Build injection ``index``'s plan.  Depends only on the spec and
        the (deterministic) golden profile."""
        spec = self.spec
        seed = stable_seed(spec.seed, index)
        rng = random.Random(seed)
        surface = spec.surfaces[rng.randrange(len(spec.surfaces))]
        ctaid, tid = self.keys[rng.randrange(len(self.keys))]
        horizon = self.lifetimes[(ctaid, tid)]
        point = rng.randrange(1, max(2, horizon))
        bits = self._draw_bits(rng, spec.bits_per_fault)

        if surface == SURFACE_CKPT and (
            self.storage is None or not self.storage.slots
        ):
            surface = SURFACE_RF  # nothing to strike; degrade honestly
        if surface == SURFACE_RECOVERY and not self.kernel.meta.get(
            "recovery_table"
        ):
            surface = SURFACE_RF

        if surface == SURFACE_RF:
            plan = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=point,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
        elif surface == SURFACE_CKPT:
            # A slot strike alone is invisible until recovery reads the
            # slot, so pair it with an RF fault that triggers recovery.
            nbits = spec.ckpt_bits[rng.randrange(len(spec.ckpt_bits))]
            ckpt_point = rng.randrange(1, max(2, horizon))
            plan = ComposedFaultPlan(
                plans=[
                    CheckpointFaultPlan(
                        ctaid=ctaid,
                        tid=tid,
                        after_instructions=min(point, ckpt_point),
                        num_bits=nbits,
                        rng_seed=rng.getrandbits(30),
                        storage=self.storage,
                    ),
                    FaultPlan(
                        ctaid=ctaid,
                        tid=tid,
                        after_instructions=max(point, ckpt_point),
                        bits=bits,
                        rng_seed=rng.getrandbits(30),
                    ),
                ]
            )
        else:  # SURFACE_RECOVERY
            primary = FaultPlan(
                ctaid=ctaid,
                tid=tid,
                after_instructions=point,
                bits=bits,
                rng_seed=rng.getrandbits(30),
            )
            mode = "register" if rng.random() < 0.5 else "slot"
            plan = RecoveryFaultPlan(
                primary=primary,
                strike_restore=rng.randrange(4),
                mode=mode,
                bits=(rng.randrange(self.codeword_bits),),
                repeat=rng.random() < spec.recovery_repeat_rate,
                storage=self.storage,
            )
        return surface, seed, plan

    def _draw_bits(self, rng: random.Random, nbits: int) -> Tuple[int, ...]:
        if self.spec.pattern == "burst":
            start = rng.randrange(self.codeword_bits - nbits + 1)
            return tuple(range(start, start + nbits))
        return tuple(rng.sample(range(self.codeword_bits), nbits))

    # -- one injection --

    def run_index(self, index: int) -> InjectionRecord:
        surface, seed, plan = self.plan_for_index(index)
        mem = self.wl.make_memory()
        executor = Executor(
            self.kernel,
            rf_code_factory=self.code_factory,
            max_instructions_per_thread=self.spec.max_instructions,
            max_recoveries_per_thread=self.spec.max_recoveries,
            fault_plan=plan,
        )
        # A span-less tracer scoped to this one injection: the executor's
        # end-of-run dump and recovery histograms land in a fresh registry
        # whose snapshot rides on the record across the process boundary.
        injection_obs = obs.Tracer(record_spans=False)
        try:
            with injection_obs:
                result = executor.run(self.wl.launch, mem)
        except (SimulationError, MemoryError32) as exc:
            injection_obs.counters.inc(f"campaign.due.{classify_due(exc).value}")
            return InjectionRecord(
                index=index,
                surface=surface,
                outcome=FaultOutcome.DUE.value,
                due_cause=classify_due(exc).value,
                detections=-1,
                recoveries=-1,
                instructions=-1,
                seed=seed,
                detail=str(exc),
                counters=injection_obs.counters.to_dict(),
            )
        output = mem.download(*self.out)
        if not plan.injected:
            outcome = FaultOutcome.NOT_INJECTED
        elif output == self.golden:
            outcome = (
                FaultOutcome.RECOVERED
                if result.recoveries > 0
                else FaultOutcome.MASKED
            )
        else:
            outcome = FaultOutcome.SDC
        injection_obs.counters.inc(f"campaign.outcome.{outcome.value}")
        return InjectionRecord(
            index=index,
            surface=surface,
            outcome=outcome.value,
            detections=result.detections,
            recoveries=result.recoveries,
            instructions=result.instructions,
            seed=seed,
            detail=_plan_detail(plan),
            counters=injection_obs.counters.to_dict(),
        )


def _plan_detail(plan) -> Optional[str]:
    if isinstance(plan, ComposedFaultPlan):
        parts = [_plan_detail(p) for p in plan.plans]
        return "+".join(p for p in parts if p) or None
    if isinstance(plan, CheckpointFaultPlan):
        if plan.effect:
            return f"ckpt:{plan.effect}:{plan.hit_slot or '-'}"
        return None
    if isinstance(plan, RecoveryFaultPlan):
        tag = f"recovery:{plan.mode}:strikes={plan.strikes}"
        if plan.repeat:
            tag += ":repeat"
        return tag
    if isinstance(plan, FaultPlan):
        return f"rf:{plan.hit_register or '-'}"
    return None


# -- worker-pool plumbing --------------------------------------------------------

_WORKER_STATE: Optional[_CampaignState] = None


def _worker_init(spec_dict: Dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _CampaignState(CampaignSpec.from_dict(spec_dict))


def _worker_run(index: int) -> Dict:
    assert _WORKER_STATE is not None, "worker pool not initialized"
    return dataclasses.asdict(_WORKER_STATE.run_index(index))


# -- journal ---------------------------------------------------------------------


def load_journal(path: str) -> Tuple[Optional[Dict], Dict[int, InjectionRecord]]:
    """Read a (possibly truncated) journal.  Returns the header spec dict
    (or None) and the complete records by index.  Torn or corrupt lines —
    the tail of a killed campaign — are skipped, not fatal."""
    header: Optional[Dict] = None
    records: Dict[int, InjectionRecord] = {}
    if not os.path.exists(path):
        return None, records
    # errors="replace": truncation mid multi-byte character must read as
    # a corrupt line, not raise UnicodeDecodeError.
    with open(path, errors="replace") as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a mid-campaign kill
            if not isinstance(obj, dict):
                # A torn fragment can still parse (a bare number, a
                # string): anything but a record object is skipped.
                continue
            if lineno == 0 and "spec" in obj:
                header = obj
                continue
            try:
                rec = InjectionRecord(**obj)
            except TypeError:
                continue
            records[rec.index] = rec
    return header, records


class _Journal:
    """Append-only JSONL writer, flushed per record (crash-safe)."""

    def __init__(self, path: str, spec: CampaignSpec, fresh: bool):
        self.path = path
        mode = "w" if fresh else "a"
        if not fresh and os.path.exists(path) and os.path.getsize(path) > 0:
            # A kill can tear the final line without a newline; terminate
            # it so the first appended record does not merge into it (the
            # torn fragment then parses as one corrupt line and is skipped
            # on load, instead of eating a fresh record).
            with open(path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                torn = f.read(1) != b"\n"
            if torn:
                with open(path, "a") as f:
                    f.write("\n")
        self._f = open(path, mode)
        if fresh:
            self._write_line(
                json.dumps(
                    {"spec": spec.to_dict(), "version": JOURNAL_VERSION},
                    sort_keys=True,
                )
            )

    def _write_line(self, line: str) -> None:
        self._f.write(line + "\n")
        self._f.flush()
        os.fsync(self._f.fileno())

    def append(self, record: InjectionRecord) -> None:
        self._write_line(record.to_json())

    def close(self) -> None:
        self._f.close()


# -- the engine ------------------------------------------------------------------


class ParallelCampaign:
    """Runs a :class:`CampaignSpec` on a worker pool with a resumable
    journal.

    ``workers <= 1`` runs inline (no subprocesses) — same records, same
    journal.  ``resume=True`` re-reads the journal, keeps every complete
    record and only runs the missing indices; because plans are seeded per
    index, the resumed campaign's final report is identical to an
    uninterrupted run's.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        journal_path: Optional[str] = None,
    ):
        self.spec = spec
        self.workers = max(1, workers)
        self.journal_path = journal_path

    def run(self, resume: bool = False) -> CampaignReport:
        with obs.span(
            "campaign.run",
            benchmark=self.spec.benchmark,
            scheme=self.spec.scheme,
            injections=self.spec.num_injections,
            workers=self.workers,
            seed=self.spec.seed,
        ):
            return self._run(resume)

    def _run(self, resume: bool) -> CampaignReport:
        done: Dict[int, InjectionRecord] = {}
        if self.journal_path and resume:
            header, done = load_journal(self.journal_path)
            if header is not None and header.get("spec") != self.spec.to_dict():
                raise ValueError(
                    "journal was written by a different campaign spec; "
                    "refusing to resume into it"
                )
            # Drop stray indices beyond this spec (defensive).
            done = {
                i: r
                for i, r in done.items()
                if 0 <= i < self.spec.num_injections
            }
        todo = [
            i for i in range(self.spec.num_injections) if i not in done
        ]
        journal = (
            _Journal(self.journal_path, self.spec, fresh=not done)
            if self.journal_path
            else None
        )
        records = list(done.values())
        try:
            if todo:
                for rec in self._execute(todo):
                    records.append(rec)
                    if journal is not None:
                        journal.append(rec)
        finally:
            if journal is not None:
                journal.close()
        records.sort(key=lambda r: r.index)
        return CampaignReport(records=records, spec=self.spec)

    def _execute(self, todo: Sequence[int]) -> Iterable[InjectionRecord]:
        if self.workers <= 1 or len(todo) <= 1:
            state = _CampaignState(self.spec)
            for i in todo:
                yield state.run_index(i)
            return
        import multiprocessing as mp

        ctx = mp.get_context()
        with ctx.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(self.spec.to_dict(),),
        ) as pool:
            for rec_dict in pool.imap_unordered(
                _worker_run, todo, chunksize=4
            ):
                yield InjectionRecord(**rec_dict)


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> CampaignReport:
    """Convenience wrapper: build and run a :class:`ParallelCampaign`."""
    return ParallelCampaign(
        spec, workers=workers, journal_path=journal_path
    ).run(resume=resume)
