"""Occupancy calculation: resident blocks/warps per SM.

Occupancy is the lever through which Penny's costs become runtime:
register pressure from renaming and shared-memory checkpoint storage both
shrink the number of resident warps, which shrinks the latency-hiding pool
the timing model draws on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.config import GpuConfig


@dataclass(frozen=True)
class Occupancy:
    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    limiter: str  # "blocks" | "threads" | "registers" | "shared"

    @property
    def active(self) -> bool:
        return self.blocks_per_sm > 0


def occupancy(
    config: GpuConfig,
    threads_per_block: int,
    regs_per_thread: int,
    shared_per_block: int,
) -> Occupancy:
    """Resident blocks per SM under the four classic limits."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    limits = {
        "blocks": config.max_blocks_per_sm,
        "threads": config.max_threads_per_sm // threads_per_block,
    }
    reg_demand = max(1, regs_per_thread) * threads_per_block
    limits["registers"] = config.regs_per_sm // reg_demand
    if shared_per_block > 0:
        limits["shared"] = config.shared_per_sm // shared_per_block
    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    warp_size = config.warp_size
    warps = blocks * ((threads_per_block + warp_size - 1) // warp_size)
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        threads_per_sm=blocks * threads_per_block,
        limiter=limiter,
    )
