"""Simulated GPU configurations.

The paper evaluates on a Fermi-class Tesla C2050 (GPGPU-Sim's default
model) and, for the architecture sensitivity study of §7.8, a Volta-class
Titan V.  Only the parameters our occupancy and timing models consume are
carried here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuConfig:
    """Per-SM resources and latency/issue parameters."""

    name: str
    num_sms: int
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    regs_per_sm: int = 32768
    shared_per_sm: int = 48 * 1024

    #: issue cost in cycles per instruction class
    issue_alu: int = 1
    issue_sfu: int = 4
    issue_mem: int = 1

    #: round-trip latencies in cycles
    lat_shared: int = 30
    lat_global: int = 400
    lat_const: int = 30

    #: LSU throughput cost per (coalesced) memory transaction
    lsu_shared: int = 2
    lsu_global: int = 8

    #: barrier overhead in cycles
    lat_barrier: int = 20

    def clone(self, **overrides) -> "GpuConfig":
        from dataclasses import replace

        return replace(self, **overrides)


#: The paper's primary target: Tesla C2050 (Fermi, GPGPU-Sim default).
FERMI_C2050 = GpuConfig(
    name="Tesla C2050 (Fermi)",
    num_sms=14,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    regs_per_sm=32768,
    shared_per_sm=48 * 1024,
    lat_global=400,
    lat_shared=30,
)

#: The §7.8 sensitivity target: Titan V (Volta).  Larger register file and
#: caches, more blocks per SM, lower effective global latency.
VOLTA_TITAN_V = GpuConfig(
    name="Titan V (Volta)",
    num_sms=80,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    regs_per_sm=65536,
    shared_per_sm=96 * 1024,
    lat_global=280,
    lat_shared=20,
    lsu_global=4,
)
