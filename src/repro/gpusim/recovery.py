"""Penny's recovery runtime, simulated.

When a register read trips parity, the runtime (footnote 3 of the paper):

1. looks up the recovery entry of the thread's *current region* (tracked by
   the executor as the last boundary / adjustment block entered),
2. restores the region's live-in registers — from their checkpoint slots in
   ECC-protected shared/global memory, or by evaluating recovery slices for
   pruned checkpoints,
3. redirects control to the beginning of the region.

Restores re-encode the registers, wiping any corruption on them; corrupted
registers that are *not* live-in are left as-is — they are dead or will be
caught at their next read (Appendix A).
"""

from __future__ import annotations

from typing import Optional

from repro.core.recovery_meta import RecoveryTable, RestoreAction
from repro.core.slices import (
    SImm,
    SLoad,
    SOp,
    SSelp,
    SSetp,
    SSlot,
    SSpecial,
    SSymRef,
    SliceExpr,
)
from repro.core.storage import StorageAssignment, StorageKind
from repro.ir.types import MemSpace
from repro.gpusim.executor import (
    SimulationError,
    ThreadContext,
    UnrecoverableError,
    _alu_compute,
    _compare,
    b2f,
    f2b,
    to_signed,
)

_MASK32 = 0xFFFFFFFF


def slot_location(storage: StorageAssignment, slot, t: ThreadContext, env):
    """Resolve a checkpoint slot to its ``(word_store, address)`` for one
    thread.  Shared slots are laid out coalesced per block; global slots per
    launch.  Shared by the runtime's restore path and the fault injector's
    checkpoint-memory plans, so both always agree on where a slot lives."""
    if slot.kind is StorageKind.SHARED:
        base = env.shared_bases["__ckpt_shared"]
        addr = (
            base
            + slot.index * storage.threads_per_block * 4
            + t.tid * 4
        )
        return env.shared, addr
    gtid = t.ctaid * env.launch.block + t.tid
    addr = (
        env.ckpt_global_base
        + slot.index * storage.total_threads * 4
        + gtid * 4
    )
    return env.mem.global_mem, addr


class RecoveryRuntime:
    """Executes restore actions and region re-entry for one kernel."""

    def __init__(self, kernel, table: RecoveryTable):
        self.kernel = kernel
        self.table = table
        self.storage: Optional[StorageAssignment] = kernel.meta.get(
            "storage_assignment"
        )

    def recover(self, t: ThreadContext, env, err, fault_plan=None) -> None:
        entry = self.table.regions.get(t.region_label)
        if entry is None:
            raise UnrecoverableError(
                f"no recovery entry for region {t.region_label!r} "
                f"({err})",
                cause="missing_metadata",
            )
        # The recovery runtime itself is an injection surface: campaign
        # plans may strike between restore actions (mid-restore) or just
        # before a slot load (mid-slice / ECC escalation).  ``before_restore``
        # fires before action ``i`` executes, ``after_restore`` after its
        # register has been rewritten — re-corrupting a freshly restored
        # register there is the worst case re-entrant recovery must absorb.
        before = getattr(fault_plan, "before_restore", None)
        after = getattr(fault_plan, "after_restore", None)
        for i, action in enumerate(entry.restores):
            if before is not None:
                before(t, env, action, i)
            value = self._restore_value(t, env, action)
            t.rf.write(action.reg_name, value)
            if after is not None:
                after(t, env, action, i)
        # Control returns to the region entry (the executor resets the pc).

    # -- restore actions ----------------------------------------------------------

    def _restore_value(self, t: ThreadContext, env, action: RestoreAction) -> int:
        if action.is_slot:
            return self._load_slot(t, env, action.reg_name, action.slot_color)
        assert action.slice_expr is not None
        return self._eval(t, env, action.slice_expr)

    def _load_slot(self, t: ThreadContext, env, reg_name: str, color: int) -> int:
        if self.storage is None:
            raise UnrecoverableError(
                "kernel has no checkpoint storage map",
                cause="missing_metadata",
            )
        slot = self.storage.slots.get((reg_name, color))
        if slot is None:
            raise UnrecoverableError(
                f"no checkpoint slot for {reg_name} color {color}",
                cause="missing_metadata",
            )
        store, addr = slot_location(self.storage, slot, t, env)
        return store.load(addr)

    # -- slice evaluation -------------------------------------------------------------

    def _eval(self, t: ThreadContext, env, expr: SliceExpr) -> int:
        if isinstance(expr, SImm):
            if expr.dtype.is_float:
                return f2b(float(expr.value))
            return int(expr.value) & _MASK32
        if isinstance(expr, SSpecial):
            return env.special(t, expr.name)
        if isinstance(expr, SSymRef):
            return env.symbol_address(expr.name)
        if isinstance(expr, SSlot):
            return self._load_slot(t, env, expr.reg_name, expr.color)
        if isinstance(expr, SLoad):
            base = self._eval(t, env, expr.base)
            addr = (base + expr.offset) & _MASK32
            if expr.space is MemSpace.PARAM:
                # The base is SSymRef(param); symbol resolution already
                # produced the parameter's value.
                return base
            if expr.space is MemSpace.GLOBAL:
                return env.mem.global_mem.load(addr)
            if expr.space is MemSpace.SHARED:
                return env.shared.load(addr)
            if expr.space is MemSpace.CONST:
                return env.mem.const_mem.load(addr)
            if expr.space is MemSpace.LOCAL:
                return t.local.load(addr)
            raise UnrecoverableError(
                f"slice load from {expr.space}", cause="slice_failure"
            )
        if isinstance(expr, SOp):
            vals = [self._eval(t, env, s) for s in expr.srcs]
            try:
                return _alu_compute(expr.op, expr.dtype, vals)
            except UnrecoverableError:
                raise
            except SimulationError as exc:
                raise UnrecoverableError(
                    f"slice op {expr.op!r} failed: {exc}",
                    cause="slice_failure",
                )
        if isinstance(expr, SSetp):
            a = self._eval(t, env, expr.a)
            b = self._eval(t, env, expr.b)
            return 1 if _compare(expr.cmp, expr.dtype, a, b) else 0
        if isinstance(expr, SSelp):
            p = self._eval(t, env, expr.pred)
            return (
                self._eval(t, env, expr.a)
                if p
                else self._eval(t, env, expr.b)
            )
        raise UnrecoverableError(
            f"cannot evaluate slice node {expr!r}", cause="slice_failure"
        )
