"""Backend-selectable executor construction.

Every consumer of the simulator — the CLI, the fuzz oracle, the campaign
engine, the experiment scripts — used to construct
:class:`repro.gpusim.executor.Executor` directly.  This module is the
seam that lets a second engine slot in: a :class:`ExecutorBackend`
protocol naming the surface both engines implement, a registry keyed by
backend name, and the :func:`make_executor` factory everything now calls.

Backend resolution (:func:`resolve_backend`):

1. an explicit ``backend=`` argument wins ("scalar" / "vector"),
2. ``backend="auto"`` consults the ``REPRO_SIM_BACKEND`` environment
   variable if set,
3. otherwise "auto" picks the vectorized engine — the backends are
   bit-for-bit interchangeable (enforced by the differential A/B suite),
   so the default is simply the fast one.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.coding.parity import ParityCode
from repro.gpusim.executor import ExecutionResult, Executor, Launch
from repro.gpusim.memory import MemoryImage
from repro.ir.module import Kernel

#: environment variable consulted when ``backend="auto"``
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: valid values for every ``backend=`` argument in the public API
BACKEND_CHOICES = ("auto", "scalar", "vector")


@runtime_checkable
class ExecutorBackend(Protocol):
    """What every execution engine provides.

    Both engines are constructed with the same keyword surface (see
    :func:`make_executor`) and must produce bit-identical
    :class:`ExecutionResult`\\ s for the same kernel, launch, memory
    image, and fault plan — including fault-hook ordering, recovery
    behavior, and exception messages.  The scalar interpreter is the
    semantic oracle; the vector engine is the throughput engine.
    """

    backend_name: str
    kernel: Kernel
    fault_plan: object

    def run(self, launch: Launch, mem: MemoryImage) -> ExecutionResult:
        """Execute the kernel over the launch grid against ``mem``."""
        ...


def _make_vector(kernel: Kernel, **kwargs) -> ExecutorBackend:
    from repro.gpusim.vexec import VectorExecutor

    return VectorExecutor(kernel, **kwargs)


_BACKENDS: Dict[str, Callable[..., ExecutorBackend]] = {
    "scalar": Executor,
    "vector": _make_vector,
}


def resolve_backend(backend: str = "auto") -> str:
    """Normalize a backend request to a concrete engine name."""
    if backend is None:
        backend = "auto"
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or "vector"
        if backend == "auto":
            backend = "vector"
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r} "
            f"(choose from {', '.join(BACKEND_CHOICES)})"
        )
    return backend


def make_executor(
    kernel: Kernel,
    *,
    backend: str = "auto",
    rf_code_factory=ParityCode,
    max_instructions_per_thread: int = 2_000_000,
    max_recoveries_per_thread: int = 1000,
    fault_plan=None,
) -> ExecutorBackend:
    """Construct an execution engine for ``kernel``.

    The single construction point for simulators: callers select an
    engine by name (or leave ``backend="auto"``) instead of hard-coding a
    class, and all engine knobs are keyword-only so the two engines can
    never drift apart in constructor signature.
    """
    name = resolve_backend(backend)
    factory = _BACKENDS[name]
    return factory(
        kernel,
        rf_code_factory=rf_code_factory,
        max_instructions_per_thread=max_instructions_per_thread,
        max_recoveries_per_thread=max_recoveries_per_thread,
        fault_plan=fault_plan,
    )
