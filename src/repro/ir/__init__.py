"""PTX-subset compiler IR.

Penny operates on GPU kernels in PTX form (the paper performs register
allocation on PTX, CRAT-style, then applies its transformations and runs the
result on GPGPU-Sim).  This package defines the PTX subset our passes and
benchmarks use:

- 32-bit registers typed ``u32 / s32 / f32 / pred`` (predicates are stored in
  32-bit registers holding 0/1, so the whole register file is uniform —
  exactly what the parity-protected RF of the simulator needs),
- 32-bit byte addressing into ``global / shared / local / const / param``
  memory spaces,
- ALU, memory, comparison, select, branch, barrier, and atomic instructions,
  plus the ``cp`` checkpoint pseudo-instruction Penny introduces.

The IR is deliberately mutable: passes rewrite instruction lists and split
blocks in place, as a production compiler would.
"""

from repro.ir.types import DType, MemSpace, Reg, Imm, Special, SPECIAL_REGISTERS
from repro.ir.instructions import (
    Alu,
    Atom,
    Bar,
    Bra,
    Checkpoint,
    Instruction,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import BasicBlock, Kernel, KernelParam, Module
from repro.ir.builder import KernelBuilder
from repro.ir.parser import parse_kernel, parse_module, PtxParseError
from repro.ir.printer import print_kernel, print_module

__all__ = [
    "DType",
    "MemSpace",
    "Reg",
    "Imm",
    "Special",
    "SPECIAL_REGISTERS",
    "Instruction",
    "Alu",
    "Setp",
    "Selp",
    "Ld",
    "St",
    "Bra",
    "Bar",
    "Membar",
    "Atom",
    "Ret",
    "Checkpoint",
    "BasicBlock",
    "Kernel",
    "KernelParam",
    "Module",
    "KernelBuilder",
    "parse_kernel",
    "parse_module",
    "PtxParseError",
    "print_kernel",
    "print_module",
]
