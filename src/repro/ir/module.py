"""Kernels, basic blocks, and modules.

A :class:`Kernel` holds an ordered list of :class:`BasicBlock`; control falls
through from each block to the next unless the block ends in an unconditional
branch or ``ret``.  Blocks may additionally contain *guarded* branches, which
conditionally leave the block mid-stream — but by construction (the parser
and builder enforce it) guarded branches only appear as the last instruction,
so a block has at most two successors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.instructions import Bra, Instruction
from repro.ir.types import DType, MemSpace, Reg


@dataclass
class KernelParam:
    """A kernel parameter: a scalar or a pointer passed via param space."""

    name: str
    dtype: DType = DType.U32
    is_pointer: bool = False
    #: for pointers, the space the pointee lives in (always GLOBAL here)
    pointee_space: MemSpace = MemSpace.GLOBAL


@dataclass
class SharedDecl:
    """A statically-sized shared-memory array declared by the kernel."""

    name: str
    num_words: int  # size in 32-bit words


class BasicBlock:
    """A labelled straight-line instruction sequence."""

    def __init__(self, label: str, instructions: Optional[List[Instruction]] = None):
        self.label = label
        self.instructions: List[Instruction] = list(instructions or [])

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is an unconditional ``bra``/``ret``."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def branch_targets(self) -> List[str]:
        """Labels this block may branch to (conditionally or not)."""
        return [
            inst.target
            for inst in self.instructions
            if isinstance(inst, Bra)
        ]

    @property
    def falls_through(self) -> bool:
        """True when control can reach the lexically-next block."""
        term = self.terminator
        return term is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicBlock({self.label!r}, {len(self.instructions)} insts)"


class Kernel:
    """A GPU kernel: params, shared declarations, and an ordered block list."""

    def __init__(
        self,
        name: str,
        params: Optional[List[KernelParam]] = None,
        blocks: Optional[List[BasicBlock]] = None,
        shared: Optional[List[SharedDecl]] = None,
    ):
        self.name = name
        self.params: List[KernelParam] = list(params or [])
        self.blocks: List[BasicBlock] = list(blocks or [])
        self.shared: List[SharedDecl] = list(shared or [])
        self._label_counter = itertools.count()
        self._reg_counter = itertools.count()
        #: free-form metadata attached by passes (region info, checkpoint
        #: storage map, recovery table, ...)
        self.meta: Dict[str, object] = {}

    # -- lookups -------------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block labelled {label!r} in kernel {self.name!r}")

    def block_index(self, label: str) -> int:
        for i, blk in enumerate(self.blocks):
            if blk.label == label:
                return i
        raise KeyError(f"no block labelled {label!r} in kernel {self.name!r}")

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"kernel {self.name!r} has no blocks")
        return self.blocks[0]

    def param(self, name: str) -> KernelParam:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no param {name!r} in kernel {self.name!r}")

    def shared_decl(self, name: str) -> SharedDecl:
        for s in self.shared:
            if s.name == name:
                return s
        raise KeyError(f"no shared array {name!r} in kernel {self.name!r}")

    # -- iteration -----------------------------------------------------------

    def instructions(self) -> Iterable[Tuple[BasicBlock, int, Instruction]]:
        """Yield (block, index, instruction) over the whole kernel."""
        for blk in self.blocks:
            for i, inst in enumerate(blk.instructions):
                yield blk, i, inst

    def all_registers(self) -> List[Reg]:
        """All registers referenced anywhere, in first-appearance order."""
        seen: Dict[Reg, None] = {}
        for _, _, inst in self.instructions():
            for r in inst.defs():
                seen.setdefault(r, None)
            for r in inst.reg_uses():
                seen.setdefault(r, None)
        return list(seen)

    # -- mutation helpers ------------------------------------------------------

    def fresh_label(self, prefix: str = "L") -> str:
        existing = {blk.label for blk in self.blocks}
        while True:
            label = f"{prefix}_{next(self._label_counter)}"
            if label not in existing:
                return label

    def fresh_reg(self, dtype: DType = DType.U32, prefix: str = "%t") -> Reg:
        existing = {r.name for r in self.all_registers()}
        while True:
            name = f"{prefix}{next(self._reg_counter)}"
            if name not in existing:
                return Reg(name, dtype)

    def split_block(self, label: str, index: int, new_label: Optional[str] = None) -> BasicBlock:
        """Split the block at instruction ``index``: instructions from
        ``index`` onward move to a new fall-through block, which is returned.
        Splitting at 0 inserts an empty predecessor; splitting at
        ``len(instructions)`` creates an empty successor.

        Used by region formation to normalize every region boundary to a
        block entry.
        """
        blk = self.block(label)
        if index < 0 or index > len(blk.instructions):
            raise IndexError(
                f"split index {index} out of range for block {label!r}"
            )
        new_label = new_label or self.fresh_label(prefix=f"{label}_split")
        tail = BasicBlock(new_label, blk.instructions[index:])
        blk.instructions = blk.instructions[:index]
        self.blocks.insert(self.block_index(label) + 1, tail)
        return tail

    def insert_block_before(self, label: str, new_block: BasicBlock) -> None:
        self.blocks.insert(self.block_index(label), new_block)

    def validate(self) -> None:
        """Structural sanity checks; raises ValueError on malformed IR."""
        labels = [blk.label for blk in self.blocks]
        if len(labels) != len(set(labels)):
            raise ValueError(f"duplicate block labels in kernel {self.name!r}")
        label_set = set(labels)
        for blk in self.blocks:
            for i, inst in enumerate(blk.instructions):
                if isinstance(inst, Bra) and inst.target not in label_set:
                    raise ValueError(
                        f"branch to unknown label {inst.target!r} in {blk.label}"
                    )
                is_last = i == len(blk.instructions) - 1
                if (inst.is_terminator or isinstance(inst, Bra)) and not is_last:
                    raise ValueError(
                        f"branch/terminator mid-block in {blk.label!r} (index {i})"
                    )
        if self.blocks:
            last = self.blocks[-1]
            if last.falls_through:
                raise ValueError(
                    f"final block {last.label!r} falls through kernel end"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name!r}, {len(self.blocks)} blocks)"


@dataclass
class Module:
    """A compilation unit: a set of kernels."""

    kernels: List[Kernel] = field(default_factory=list)

    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel named {name!r}")
