"""Parser for the PTX-subset text syntax.

The accepted grammar is exactly what :mod:`repro.ir.printer` emits — see the
package docstring for the instruction forms.  The parser is line-oriented:
one instruction, label, or declaration per line; ``//`` starts a comment.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    ALU_OPS,
    ATOM_OPS,
    BINARY_OPS,
    CMP_OPS,
    TERNARY_OPS,
    Alu,
    Atom,
    Bar,
    Bra,
    Guard,
    Instruction,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import BasicBlock, Kernel, KernelParam, Module, SharedDecl
from repro.ir.types import (
    DType,
    Imm,
    MemSpace,
    Operand,
    Reg,
    SPECIAL_REGISTERS,
    Special,
    SrcLoc,
    SymRef,
)


class PtxParseError(ValueError):
    """Raised on malformed PTX-subset input, with line information."""

    def __init__(self, message: str, lineno: int, line: str):
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno
        self.line = line


_ENTRY_RE = re.compile(r"^\.entry\s+(\w+)\s*\((.*)\)\s*\{$")
_PARAM_RE = re.compile(r"^\.param\s+\.(\w+)\s+(\w+)$")
_SHARED_RE = re.compile(r"^\.shared\s+\.b32\s+(\w+)\[(\d+)\]\s*;$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*)\s*:$")
_GUARD_RE = re.compile(r"^@(!?)(%[\w.]+)\s+(.*)$")
_MEM_RE = re.compile(r"^\[([^\]]+)\]$")

_DTYPES = {d.value: d for d in DType}


class _KernelParser:
    """Parses the body of one kernel."""

    def __init__(self, name: str, params: List[KernelParam]):
        self.kernel = Kernel(name, params=params)
        self.kernel.blocks = []
        self._current: Optional[BasicBlock] = None
        self._regs: Dict[str, Reg] = {}
        self._auto_block = False
        self._symbols = {p.name for p in params}

    def _block(self) -> BasicBlock:
        if self._current is None:
            self._current = BasicBlock("ENTRY")
            self.kernel.blocks.append(self._current)
        return self._current

    def start_block(self, label: str) -> None:
        if (
            self._current is not None
            and self._auto_block
            and not self._current.instructions
        ):
            # The empty anonymous block opened after a guarded branch can be
            # renamed in place (its fresh label is never a branch target).
            self._current.label = label
        else:
            self._current = BasicBlock(label)
            self.kernel.blocks.append(self._current)
        self._auto_block = False

    def add_shared(self, name: str, words: int) -> None:
        self.kernel.shared.append(SharedDecl(name, words))
        self._symbols.add(name)

    def reg(self, name: str, dtype: DType) -> Reg:
        if name not in self._regs:
            self._regs[name] = Reg(name, dtype)
        return self._regs[name]

    def operand(self, token: str, dtype: DType) -> Operand:
        token = token.strip()
        if token in SPECIAL_REGISTERS:
            return Special(token)
        if token.startswith("%"):
            rdt = DType.PRED if token.startswith("%p") else dtype
            return self.reg(token, rdt)
        if token in self._symbols:
            return SymRef(token)
        try:
            if dtype.is_float or "." in token or "e" in token.lower():
                return Imm(float(token), DType.F32)
            return Imm(int(token, 0), dtype)
        except ValueError:
            raise ValueError(f"cannot parse operand {token!r}")

    def address(self, token: str, dtype: DType) -> Tuple[Operand, int]:
        """Parse a memory operand ``[base]`` / ``[base+off]``."""
        m = _MEM_RE.match(token.strip())
        if not m:
            raise ValueError(f"expected memory operand, got {token!r}")
        inner = m.group(1).strip()
        offset = 0
        if "+" in inner:
            base_tok, off_tok = inner.rsplit("+", 1)
            offset = int(off_tok.strip(), 0)
            inner = base_tok.strip()
        elif "-" in inner[1:]:
            base_tok, off_tok = inner.rsplit("-", 1)
            offset = -int(off_tok.strip(), 0)
            inner = base_tok.strip()
        base = self.operand(inner, DType.U32)
        return base, offset

    def parse_instruction(self, text: str) -> Instruction:
        guard: Optional[Guard] = None
        gm = _GUARD_RE.match(text)
        if gm:
            sense = gm.group(1) != "!"
            guard = (self.reg(gm.group(2), DType.PRED), sense)
            text = gm.group(3)
        if not text.endswith(";"):
            raise ValueError("missing trailing ';'")
        text = text[:-1].strip()

        head, _, rest = text.partition(" ")
        args = [a.strip() for a in _split_args(rest)] if rest else []
        parts = head.split(".")
        op = parts[0]

        if op == "ret":
            return Ret(guard=guard)
        if op == "bra":
            if len(args) != 1:
                raise ValueError("bra expects one label")
            return Bra(args[0], guard=guard)
        if op == "bar":
            return Bar(guard=guard)
        if op == "membar":
            level = parts[1] if len(parts) > 1 else "gl"
            return Membar(level, guard=guard)
        if op == "ld":
            space = MemSpace(parts[1])
            dtype = _DTYPES[parts[2]]
            dst = self.operand(args[0], dtype)
            base, off = self.address(args[1], dtype)
            return Ld(space, dtype, dst, base, off, guard=guard)
        if op == "st":
            space = MemSpace(parts[1])
            dtype = _DTYPES[parts[2]]
            base, off = self.address(args[0], dtype)
            src = self.operand(args[1], dtype)
            return St(space, dtype, base, src, off, guard=guard)
        if op == "atom":
            space = MemSpace(parts[1])
            aop = parts[2]
            dtype = _DTYPES[parts[3]]
            dst = self.operand(args[0], dtype)
            base, off = self.address(args[1], dtype)
            src = self.operand(args[2], dtype)
            src2 = self.operand(args[3], dtype) if len(args) > 3 else None
            return Atom(space, aop, dtype, dst, base, src, off, src2=src2, guard=guard)
        if op == "setp":
            cmp = parts[1]
            dtype = _DTYPES[parts[2]]
            dst = self.operand(args[0], DType.PRED)
            return Setp(
                cmp, dtype, dst, self.operand(args[1], dtype),
                self.operand(args[2], dtype), guard=guard,
            )
        if op == "selp":
            dtype = _DTYPES[parts[1]]
            dst = self.operand(args[0], dtype)
            pred = self.operand(args[3], DType.PRED)
            return Selp(
                dtype, dst, self.operand(args[1], dtype),
                self.operand(args[2], dtype), pred, guard=guard,
            )
        if op in ALU_OPS:
            dtype = _DTYPES[parts[1]]
            dst = self.operand(args[0], dtype)
            srcs = [self.operand(a, dtype) for a in args[1:]]
            return Alu(op, dtype, dst, srcs, guard=guard)
        raise ValueError(f"unknown instruction {op!r}")

    def emit(self, inst: Instruction) -> None:
        self._block().instructions.append(inst)
        if isinstance(inst, Bra) and inst.guard is not None:
            # Guarded branches must end their block; open an anonymous
            # fall-through block for whatever follows.
            self.start_block(self.kernel.fresh_label())
            self._auto_block = True

    def finish(self) -> Kernel:
        self.kernel.validate()
        return self.kernel


def _split_args(text: str) -> List[str]:
    """Split instruction arguments on top-level commas ( [] groups kept )."""
    args = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        args.append("".join(current))
    return [a.strip() for a in args if a.strip()]


def _parse_params(text: str, lineno: int, line: str) -> List[KernelParam]:
    params = []
    for chunk in _split_args(text):
        m = _PARAM_RE.match(chunk)
        if not m:
            raise PtxParseError(f"malformed parameter {chunk!r}", lineno, line)
        kind, name = m.group(1), m.group(2)
        if kind == "ptr":
            params.append(KernelParam(name, DType.U32, is_pointer=True))
        elif kind in _DTYPES:
            params.append(KernelParam(name, _DTYPES[kind]))
        else:
            raise PtxParseError(f"unknown param type .{kind}", lineno, line)
    return params


def parse_module(text: str) -> Module:
    """Parse PTX-subset text containing one or more kernels."""
    module = Module()
    parser: Optional[_KernelParser] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        if parser is None:
            m = _ENTRY_RE.match(line)
            if not m:
                raise PtxParseError("expected '.entry name (...) {'", lineno, raw)
            params = _parse_params(m.group(2), lineno, raw)
            parser = _KernelParser(m.group(1), params)
            continue
        if line == "}":
            module.kernels.append(parser.finish())
            parser = None
            continue
        sm = _SHARED_RE.match(line)
        if sm:
            parser.add_shared(sm.group(1), int(sm.group(2)))
            continue
        lm = _LABEL_RE.match(line)
        if lm:
            parser.start_block(lm.group(1))
            continue
        try:
            inst = parser.parse_instruction(line)
            code = raw.split("//", 1)[0]
            col = len(code) - len(code.lstrip()) + 1
            inst.loc = SrcLoc(lineno, col, len(code.rstrip()))
            parser.emit(inst)
        except PtxParseError:
            raise
        except ValueError as exc:
            raise PtxParseError(str(exc), lineno, raw) from exc
        except (KeyError, IndexError, AttributeError) as exc:
            # Table lookups and operand splitting fail with bare
            # KeyError/IndexError on malformed text; surface them with
            # the same line context instead of leaking internals.
            raise PtxParseError(
                f"malformed instruction ({type(exc).__name__}: {exc})",
                lineno,
                raw,
            ) from exc
    if parser is not None:
        raise PtxParseError("unterminated kernel (missing '}')", lineno, "")
    return module


def parse_kernel(text: str) -> Kernel:
    """Parse text containing exactly one kernel."""
    module = parse_module(text)
    if len(module.kernels) != 1:
        # Point at the offending line: the second kernel's .entry for a
        # multi-kernel module, or line 1 for an empty one.
        entries = [
            (lineno, raw)
            for lineno, raw in enumerate(text.splitlines(), start=1)
            if raw.split("//", 1)[0].strip().startswith(".entry")
        ]
        if len(module.kernels) > 1 and len(entries) > 1:
            lineno, line = entries[1]
        else:
            lineno, line = 1, text.splitlines()[0] if text.splitlines() else ""
        raise PtxParseError(
            f"expected exactly one kernel, got {len(module.kernels)}",
            lineno,
            line,
        )
    return module.kernels[0]
