"""Fluent construction of PTX-subset kernels.

The benchmark suite builds its 25 kernels with :class:`KernelBuilder`, which
is far less error-prone than hand-writing PTX text and keeps register dtypes
in one place.  Example::

    b = KernelBuilder("saxpy", params=[("X", "ptr"), ("Y", "ptr"),
                                       ("alpha", "f32"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    n = b.ld_param("n")
    p = b.setp("ge", tid, n)
    b.bra("DONE", pred=p)
    ...
    b.label("DONE")
    b.ret()
    kernel = b.finish()
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.ir.instructions import (
    Alu,
    Atom,
    Bar,
    Bra,
    Guard,
    Instruction,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import BasicBlock, Kernel, KernelParam, SharedDecl
from repro.ir.types import DType, Imm, MemSpace, Operand, Reg, Special, SymRef

_DTYPE_ALIASES = {
    "u32": DType.U32,
    "s32": DType.S32,
    "f32": DType.F32,
    "pred": DType.PRED,
}


def _dtype(d: Union[str, DType]) -> DType:
    if isinstance(d, DType):
        return d
    return _DTYPE_ALIASES[d]


def _as_operand(x, dtype: DType) -> Operand:
    """Coerce Python numbers to immediates of the instruction dtype."""
    if isinstance(x, (Reg, Imm, Special, SymRef)):
        return x
    if isinstance(x, bool):
        raise TypeError("bool operand is ambiguous; use an Imm")
    if isinstance(x, int):
        return Imm(x, dtype if not dtype.is_float else DType.U32)
    if isinstance(x, float):
        return Imm(x, DType.F32)
    raise TypeError(f"cannot use {x!r} as an operand")


class KernelBuilder:
    """Builds a :class:`Kernel` block by block."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, str]] = (),
        shared: Sequence[Tuple[str, int]] = (),
    ):
        kp = []
        for pname, kind in params:
            if kind == "ptr":
                kp.append(KernelParam(pname, DType.U32, is_pointer=True))
            else:
                kp.append(KernelParam(pname, _dtype(kind)))
        decls = [SharedDecl(sname, words) for sname, words in shared]
        self.kernel = Kernel(name, params=kp, shared=decls)
        self._current = BasicBlock("ENTRY")
        self.kernel.blocks.append(self._current)
        self._finished = False

    # -- registers and labels -------------------------------------------------

    def reg(self, dtype: Union[str, DType] = "u32", name: Optional[str] = None) -> Reg:
        """Create a fresh register (or a named one)."""
        dt = _dtype(dtype)
        if name is not None:
            return Reg(name, dt)
        return self.kernel.fresh_reg(dt, prefix="%p" if dt is DType.PRED else "%v")

    def label(self, name: str) -> None:
        """Start a new basic block labelled ``name``."""
        if not self._current.instructions and not self._is_branch_target(
            self._current.label
        ):
            # Current block is empty and nothing branches to it (e.g. the
            # anonymous block opened after a bra/ret): rename it in place.
            self._current.label = name
            return
        self._current = BasicBlock(name)
        self.kernel.blocks.append(self._current)

    def _is_branch_target(self, label: str) -> bool:
        return any(
            label in blk.branch_targets() for blk in self.kernel.blocks
        )

    def emit(self, inst: Instruction) -> Instruction:
        self._current.instructions.append(inst)
        return inst

    # -- ALU -------------------------------------------------------------------

    def _alu(self, op, dtype, srcs, dst=None, guard=None) -> Reg:
        dt = _dtype(dtype)
        dst = dst or self.reg(dt)
        ops = [_as_operand(s, dt) for s in srcs]
        self.emit(Alu(op, dt, dst, ops, guard=guard))
        return dst

    def add(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("add", dtype, [a, b], dst, guard)

    def sub(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("sub", dtype, [a, b], dst, guard)

    def mul(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("mul", dtype, [a, b], dst, guard)

    def div(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("div", dtype, [a, b], dst, guard)

    def rem(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("rem", dtype, [a, b], dst, guard)

    def mad(self, a, b, c, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("mad", dtype, [a, b, c], dst, guard)

    def fma(self, a, b, c, dst=None, guard=None) -> Reg:
        return self._alu("fma", "f32", [a, b, c], dst, guard)

    def min_(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("min", dtype, [a, b], dst, guard)

    def max_(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("max", dtype, [a, b], dst, guard)

    def and_(self, a, b, dst=None, guard=None) -> Reg:
        return self._alu("and", "u32", [a, b], dst, guard)

    def or_(self, a, b, dst=None, guard=None) -> Reg:
        return self._alu("or", "u32", [a, b], dst, guard)

    def xor(self, a, b, dst=None, guard=None) -> Reg:
        return self._alu("xor", "u32", [a, b], dst, guard)

    def shl(self, a, b, dst=None, guard=None) -> Reg:
        return self._alu("shl", "u32", [a, b], dst, guard)

    def shr(self, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("shr", dtype, [a, b], dst, guard)

    def neg(self, a, dtype="s32", dst=None, guard=None) -> Reg:
        return self._alu("neg", dtype, [a], dst, guard)

    def abs_(self, a, dtype="s32", dst=None, guard=None) -> Reg:
        return self._alu("abs", dtype, [a], dst, guard)

    def sqrt(self, a, dst=None, guard=None) -> Reg:
        return self._alu("sqrt", "f32", [a], dst, guard)

    def rcp(self, a, dst=None, guard=None) -> Reg:
        return self._alu("rcp", "f32", [a], dst, guard)

    def ex2(self, a, dst=None, guard=None) -> Reg:
        return self._alu("ex2", "f32", [a], dst, guard)

    def lg2(self, a, dst=None, guard=None) -> Reg:
        return self._alu("lg2", "f32", [a], dst, guard)

    def sin(self, a, dst=None, guard=None) -> Reg:
        return self._alu("sin", "f32", [a], dst, guard)

    def cos(self, a, dst=None, guard=None) -> Reg:
        return self._alu("cos", "f32", [a], dst, guard)

    def mov(self, src, dtype="u32", dst=None, guard=None) -> Reg:
        return self._alu("mov", dtype, [src], dst, guard)

    def cvt(self, src, dtype, dst=None, guard=None) -> Reg:
        """Convert ``src`` to ``dtype`` (s32<->f32, u32<->f32, ...)."""
        return self._alu("cvt", dtype, [src], dst, guard)

    def special_u32(self, name: str, dst=None) -> Reg:
        """Materialize a special register (e.g. ``%tid.x``) into a register."""
        return self._alu("mov", "u32", [Special(name)], dst)

    def addr_of(self, symbol: str, dst=None) -> Reg:
        """Materialize the base address of a shared array."""
        return self._alu("mov", "u32", [SymRef(symbol)], dst)

    # -- predicates and control flow --------------------------------------------

    def setp(self, cmp: str, a, b, dtype="u32", dst=None, guard=None) -> Reg:
        dt = _dtype(dtype)
        dst = dst or self.reg("pred")
        self.emit(Setp(cmp, dt, dst, _as_operand(a, dt), _as_operand(b, dt), guard=guard))
        return dst

    def selp(self, a, b, pred: Reg, dtype="u32", dst=None, guard=None) -> Reg:
        dt = _dtype(dtype)
        dst = dst or self.reg(dt)
        self.emit(Selp(dt, dst, _as_operand(a, dt), _as_operand(b, dt), pred, guard=guard))
        return dst

    def bra(self, target: str, pred: Optional[Reg] = None, sense: bool = True) -> None:
        guard: Optional[Guard] = (pred, sense) if pred is not None else None
        self.emit(Bra(target, guard=guard))
        # Any branch (guarded branches fall through) ends the block; start an
        # anonymous successor block.
        self._current = BasicBlock(self.kernel.fresh_label())
        self.kernel.blocks.append(self._current)

    def ret(self) -> None:
        self.emit(Ret())
        self._current = BasicBlock(self.kernel.fresh_label())
        self.kernel.blocks.append(self._current)

    def bar(self) -> None:
        self.emit(Bar())

    def membar(self, level: str = "gl") -> None:
        self.emit(Membar(level))

    # -- memory ------------------------------------------------------------------

    def ld_param(self, name: str, dst=None) -> Reg:
        param = self.kernel.param(name)
        dt = DType.U32 if param.is_pointer else param.dtype
        dst = dst or self.reg(dt)
        self.emit(Ld(MemSpace.PARAM, dt, dst, SymRef(name)))
        return dst

    def ld(self, space, base, offset=0, dtype="u32", dst=None, guard=None) -> Reg:
        dt = _dtype(dtype)
        space = MemSpace(space) if isinstance(space, str) else space
        dst = dst or self.reg(dt)
        self.emit(Ld(space, dt, dst, _as_operand(base, DType.U32), offset, guard=guard))
        return dst

    def st(self, space, base, src, offset=0, dtype="u32", guard=None) -> None:
        dt = _dtype(dtype)
        space = MemSpace(space) if isinstance(space, str) else space
        self.emit(
            St(
                space,
                dt,
                _as_operand(base, DType.U32),
                _as_operand(src, dt),
                offset,
                guard=guard,
            )
        )

    def atom(self, space, op, base, src, offset=0, dtype="u32", dst=None, src2=None, guard=None) -> Reg:
        dt = _dtype(dtype)
        space = MemSpace(space) if isinstance(space, str) else space
        dst = dst or self.reg(dt)
        self.emit(
            Atom(
                space,
                op,
                dt,
                dst,
                _as_operand(base, DType.U32),
                _as_operand(src, dt),
                offset,
                src2=_as_operand(src2, dt) if src2 is not None else None,
                guard=guard,
            )
        )
        return dst

    # -- finalization --------------------------------------------------------------

    def finish(self) -> Kernel:
        """Validate and return the kernel (drops a trailing empty block)."""
        if self._finished:
            return self.kernel
        if not self._current.instructions and len(self.kernel.blocks) > 1:
            # Drop the trailing empty block left after a final ret/bra —
            # unless something branches to it.
            targets = set()
            for blk in self.kernel.blocks:
                targets.update(blk.branch_targets())
            if self._current.label not in targets:
                self.kernel.blocks.remove(self._current)
        self.kernel.validate()
        self._finished = True
        return self.kernel
