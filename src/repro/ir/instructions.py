"""Instruction classes of the PTX-subset IR.

Every instruction knows its defined registers (:meth:`Instruction.defs`) and
used operands (:meth:`Instruction.uses`), which is all the dataflow analyses
need.  Instructions are mutable (fields may be rewritten by passes) but
operands themselves (:class:`Reg`, :class:`Imm`, ...) are immutable values.

An optional *guard* ``(pred_reg, sense)`` models PTX predication
(``@%p`` / ``@!%p`` prefixes); a guarded instruction additionally uses its
predicate register.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.ir.types import DType, Imm, MemSpace, Operand, Reg, SymRef

#: ALU opcodes with two register/immediate sources.
BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "mulhi",
        "div",
        "rem",
        "min",
        "max",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
    }
)

#: ALU opcodes with one source.
UNARY_OPS = frozenset(
    {"mov", "neg", "not", "abs", "cvt", "sqrt", "rcp", "ex2", "lg2", "sin", "cos"}
)

#: Three-source fused multiply-add.
TERNARY_OPS = frozenset({"mad", "fma"})

ALU_OPS = BINARY_OPS | UNARY_OPS | TERNARY_OPS

#: setp comparison predicates.
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

#: Atomic operations (treated as region boundaries by Penny).
ATOM_OPS = frozenset({"add", "exch", "max", "min", "cas"})

Guard = Tuple[Reg, bool]  # (predicate register, sense); sense False = @!%p


class Instruction:
    """Base class for all instructions."""

    __slots__ = ("guard", "loc")

    def __init__(self, guard: Optional[Guard] = None):
        self.guard = guard
        #: source span (:class:`repro.ir.types.SrcLoc`) when parsed from
        #: text; ``None`` for instructions built programmatically
        self.loc = None

    # -- dataflow interface --------------------------------------------------

    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction."""
        return ()

    def uses(self) -> Tuple[Operand, ...]:
        """Operands read by this instruction (guard predicate included)."""
        if self.guard is not None:
            return (self.guard[0],)
        return ()

    def reg_uses(self) -> Tuple[Reg, ...]:
        """Register operands read by this instruction."""
        return tuple(op for op in self.uses() if isinstance(op, Reg))

    # -- classification ------------------------------------------------------

    @property
    def is_memory_read(self) -> bool:
        return False

    @property
    def is_memory_write(self) -> bool:
        return False

    @property
    def is_barrier_like(self) -> bool:
        """True for synchronization instructions Penny treats as region
        boundaries (barriers, fences, atomics)."""
        return False

    @property
    def is_terminator(self) -> bool:
        return False

    def replace_uses(self, mapping) -> None:
        """Rewrite register uses via ``mapping`` (Reg -> Reg).  Subclasses
        with register sources override; the base handles the guard."""
        if self.guard is not None and self.guard[0] in mapping:
            self.guard = (mapping[self.guard[0]], self.guard[1])

    def replace_defs(self, mapping) -> None:
        """Rewrite register defs via ``mapping`` (Reg -> Reg)."""

    def _guard_prefix(self) -> str:
        if self.guard is None:
            return ""
        reg, sense = self.guard
        return f"@{'' if sense else '!'}{reg} "

    @staticmethod
    def _map_op(op: Operand, mapping) -> Operand:
        if isinstance(op, Reg) and op in mapping:
            return mapping[op]
        return op


class Alu(Instruction):
    """Arithmetic / logic / move / conversion: ``op.dtype dst, srcs...``."""

    __slots__ = ("op", "dtype", "dst", "srcs")

    def __init__(
        self,
        op: str,
        dtype: DType,
        dst: Reg,
        srcs: Sequence[Operand],
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        if op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {op!r}")
        expected = 3 if op in TERNARY_OPS else (2 if op in BINARY_OPS else 1)
        if len(srcs) != expected:
            raise ValueError(f"{op} expects {expected} sources, got {len(srcs)}")
        self.op = op
        self.dtype = dtype
        self.dst = dst
        self.srcs = list(srcs)

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Operand, ...]:
        return tuple(self.srcs) + super().uses()

    def replace_uses(self, mapping) -> None:
        self.srcs = [self._map_op(s, mapping) for s in self.srcs]
        super().replace_uses(mapping)

    def replace_defs(self, mapping) -> None:
        if self.dst in mapping:
            self.dst = mapping[self.dst]

    def __str__(self) -> str:
        srcs = ", ".join(str(s) for s in self.srcs)
        return f"{self._guard_prefix()}{self.op}.{self.dtype.value} {self.dst}, {srcs};"


class Setp(Instruction):
    """Predicate set: ``setp.cmp.dtype dst, a, b``."""

    __slots__ = ("cmp", "dtype", "dst", "srcs")

    def __init__(
        self,
        cmp: str,
        dtype: DType,
        dst: Reg,
        a: Operand,
        b: Operand,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        if cmp not in CMP_OPS:
            raise ValueError(f"unknown comparison {cmp!r}")
        self.cmp = cmp
        self.dtype = dtype
        self.dst = dst
        self.srcs = [a, b]

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Operand, ...]:
        return tuple(self.srcs) + super().uses()

    def replace_uses(self, mapping) -> None:
        self.srcs = [self._map_op(s, mapping) for s in self.srcs]
        super().replace_uses(mapping)

    def replace_defs(self, mapping) -> None:
        if self.dst in mapping:
            self.dst = mapping[self.dst]

    def __str__(self) -> str:
        return (
            f"{self._guard_prefix()}setp.{self.cmp}.{self.dtype.value} "
            f"{self.dst}, {self.srcs[0]}, {self.srcs[1]};"
        )


class Selp(Instruction):
    """Select: ``selp.dtype dst, a, b, pred`` — dst = pred ? a : b."""

    __slots__ = ("dtype", "dst", "srcs", "pred")

    def __init__(
        self,
        dtype: DType,
        dst: Reg,
        a: Operand,
        b: Operand,
        pred: Reg,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        self.dtype = dtype
        self.dst = dst
        self.srcs = [a, b]
        self.pred = pred

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Operand, ...]:
        return tuple(self.srcs) + (self.pred,) + super().uses()

    def replace_uses(self, mapping) -> None:
        self.srcs = [self._map_op(s, mapping) for s in self.srcs]
        if self.pred in mapping:
            self.pred = mapping[self.pred]
        super().replace_uses(mapping)

    def replace_defs(self, mapping) -> None:
        if self.dst in mapping:
            self.dst = mapping[self.dst]

    def __str__(self) -> str:
        return (
            f"{self._guard_prefix()}selp.{self.dtype.value} {self.dst}, "
            f"{self.srcs[0]}, {self.srcs[1]}, {self.pred};"
        )


class Ld(Instruction):
    """Load: ``ld.space.dtype dst, [base+offset]``.

    ``base`` may be a register, a :class:`SymRef` (named buffer), or an
    immediate absolute address.
    """

    __slots__ = ("space", "dtype", "dst", "base", "offset")

    def __init__(
        self,
        space: MemSpace,
        dtype: DType,
        dst: Reg,
        base: Operand,
        offset: int = 0,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        self.space = space
        self.dtype = dtype
        self.dst = dst
        self.base = base
        self.offset = offset

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Operand, ...]:
        return (self.base,) + super().uses()

    @property
    def is_memory_read(self) -> bool:
        return True

    def replace_uses(self, mapping) -> None:
        self.base = self._map_op(self.base, mapping)
        super().replace_uses(mapping)

    def replace_defs(self, mapping) -> None:
        if self.dst in mapping:
            self.dst = mapping[self.dst]

    def __str__(self) -> str:
        off = f"+{self.offset}" if self.offset else ""
        return (
            f"{self._guard_prefix()}ld.{self.space.value}.{self.dtype.value} "
            f"{self.dst}, [{self.base}{off}];"
        )


class St(Instruction):
    """Store: ``st.space.dtype [base+offset], src``."""

    __slots__ = ("space", "dtype", "base", "offset", "src")

    def __init__(
        self,
        space: MemSpace,
        dtype: DType,
        base: Operand,
        src: Operand,
        offset: int = 0,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        if space.read_only:
            raise ValueError(f"cannot store to read-only space {space}")
        self.space = space
        self.dtype = dtype
        self.base = base
        self.offset = offset
        self.src = src

    def uses(self) -> Tuple[Operand, ...]:
        return (self.base, self.src) + super().uses()

    @property
    def is_memory_write(self) -> bool:
        return True

    def replace_uses(self, mapping) -> None:
        self.base = self._map_op(self.base, mapping)
        self.src = self._map_op(self.src, mapping)
        super().replace_uses(mapping)

    def __str__(self) -> str:
        off = f"+{self.offset}" if self.offset else ""
        return (
            f"{self._guard_prefix()}st.{self.space.value}.{self.dtype.value} "
            f"[{self.base}{off}], {self.src};"
        )


class Bra(Instruction):
    """Branch to a label; conditional when guarded."""

    __slots__ = ("target",)

    def __init__(self, target: str, guard: Optional[Guard] = None):
        super().__init__(guard)
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return self.guard is None

    def __str__(self) -> str:
        return f"{self._guard_prefix()}bra {self.target};"


class Bar(Instruction):
    """Thread-block barrier (``bar.sync``) — a Penny region boundary."""

    __slots__ = ()

    @property
    def is_barrier_like(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self._guard_prefix()}bar.sync 0;"


class Membar(Instruction):
    """Memory fence — a Penny region boundary."""

    __slots__ = ("level",)

    def __init__(self, level: str = "gl", guard: Optional[Guard] = None):
        super().__init__(guard)
        self.level = level

    @property
    def is_barrier_like(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self._guard_prefix()}membar.{self.level};"


class Atom(Instruction):
    """Atomic read-modify-write: ``atom.space.op.dtype dst, [base+off], src``.

    Atomics are both memory reads and writes, and Penny treats them as
    region boundaries (inter-thread anti-dependences).
    """

    __slots__ = ("space", "op", "dtype", "dst", "base", "offset", "src", "src2")

    def __init__(
        self,
        space: MemSpace,
        op: str,
        dtype: DType,
        dst: Reg,
        base: Operand,
        src: Operand,
        offset: int = 0,
        src2: Optional[Operand] = None,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        if op not in ATOM_OPS:
            raise ValueError(f"unknown atomic op {op!r}")
        if op == "cas" and src2 is None:
            raise ValueError("atom.cas requires a second source")
        self.space = space
        self.op = op
        self.dtype = dtype
        self.dst = dst
        self.base = base
        self.offset = offset
        self.src = src
        self.src2 = src2

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Operand, ...]:
        ops = [self.base, self.src]
        if self.src2 is not None:
            ops.append(self.src2)
        return tuple(ops) + super().uses()

    @property
    def is_memory_read(self) -> bool:
        return True

    @property
    def is_memory_write(self) -> bool:
        return True

    @property
    def is_barrier_like(self) -> bool:
        return True

    def replace_uses(self, mapping) -> None:
        self.base = self._map_op(self.base, mapping)
        self.src = self._map_op(self.src, mapping)
        if self.src2 is not None:
            self.src2 = self._map_op(self.src2, mapping)
        super().replace_uses(mapping)

    def replace_defs(self, mapping) -> None:
        if self.dst in mapping:
            self.dst = mapping[self.dst]

    def __str__(self) -> str:
        off = f"+{self.offset}" if self.offset else ""
        extra = f", {self.src2}" if self.src2 is not None else ""
        return (
            f"{self._guard_prefix()}atom.{self.space.value}.{self.op}."
            f"{self.dtype.value} {self.dst}, [{self.base}{off}], {self.src}{extra};"
        )


class Ret(Instruction):
    """Kernel exit."""

    __slots__ = ()

    @property
    def is_terminator(self) -> bool:
        return self.guard is None

    def __str__(self) -> str:
        return f"{self._guard_prefix()}ret;"


class Checkpoint(Instruction):
    """Penny's ``cp`` pseudo-instruction: save a live-out register to its
    checkpoint storage slot.

    ``slot`` names the per-register checkpoint storage; ``color`` selects
    between the two alternating storages of the 2-coloring scheme;
    ``space`` is filled in by automatic storage assignment and ``dummy``
    marks adjustment-block checkpoints inserted to resolve coloring
    conflicts.  Codegen lowers ``cp`` to an ordinary store.
    """

    __slots__ = ("reg", "slot", "color", "space", "dummy", "lup_block")

    def __init__(
        self,
        reg: Reg,
        slot: Optional[str] = None,
        color: int = 0,
        space: Optional[MemSpace] = None,
        dummy: bool = False,
        guard: Optional[Guard] = None,
    ):
        super().__init__(guard)
        self.reg = reg
        self.slot = slot or f"ckpt_{reg.name.lstrip('%')}"
        self.color = color
        self.space = space
        self.dummy = dummy
        self.lup_block = None  # set by checkpoint placement for diagnostics

    def defs(self) -> Tuple[Reg, ...]:
        return ()

    def uses(self) -> Tuple[Operand, ...]:
        return (self.reg,) + super().uses()

    @property
    def is_memory_write(self) -> bool:
        return True

    def replace_uses(self, mapping) -> None:
        if self.reg in mapping:
            self.reg = mapping[self.reg]
        super().replace_uses(mapping)

    def __str__(self) -> str:
        space = f".{self.space.value}" if self.space else ""
        dummy = " (dummy)" if self.dummy else ""
        return (
            f"{self._guard_prefix()}cp{space} {self.reg}, "
            f"{self.slot}.K{self.color};{dummy}"
        )
