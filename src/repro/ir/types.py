"""Core value types of the PTX-subset IR: dtypes, memory spaces, operands."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class DType(enum.Enum):
    """Register data types.  All non-predicate registers are 32 bits wide;
    predicates are modelled as 32-bit registers holding 0 or 1 so the whole
    register file is uniformly parity-protectable."""

    U32 = "u32"
    S32 = "s32"
    F32 = "f32"
    PRED = "pred"

    @property
    def is_float(self) -> bool:
        return self is DType.F32

    @property
    def is_signed(self) -> bool:
        return self is DType.S32


class MemSpace(enum.Enum):
    """PTX state spaces our subset supports.

    ``PARAM`` and ``CONST`` are read-only during kernel execution, a fact
    Penny's checkpoint pruning exploits (values reloadable at recovery time
    are "safe" PDDG terminals).  ``SHARED`` and ``GLOBAL`` double as
    checkpoint storage since GPUs already protect them with ECC.
    """

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"
    CONST = "const"
    PARAM = "param"

    @property
    def read_only(self) -> bool:
        return self in (MemSpace.CONST, MemSpace.PARAM)


@dataclass(frozen=True, eq=False)
class Reg:
    """A register operand.  ``name`` is unique within a kernel (virtual
    before allocation, physical — ``%r0`` ... — after).

    Identity is the *name* alone: the declared dtype is advisory (the same
    physical register may be read as ``u32`` in one instruction and ``s32``
    in another, as in real PTX), and dataflow analyses must see one register
    either way.
    """

    name: str
    dtype: DType = DType.U32

    def __eq__(self, other) -> bool:
        return isinstance(other, Reg) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Reg", self.name))

    def __str__(self) -> str:
        return self.name

    def with_name(self, name: str) -> "Reg":
        return Reg(name, self.dtype)


@dataclass(frozen=True)
class Imm:
    """An immediate operand.  ``value`` is an int for integer dtypes and a
    float for ``F32``."""

    value: Union[int, float]
    dtype: DType = DType.U32

    def __str__(self) -> str:
        if self.dtype.is_float:
            return repr(float(self.value))
        return str(int(self.value))


#: Special (read-only, hardware-provided) registers our subset exposes.
SPECIAL_REGISTERS = (
    "%tid.x",
    "%tid.y",
    "%ntid.x",
    "%ntid.y",
    "%ctaid.x",
    "%ctaid.y",
    "%nctaid.x",
    "%nctaid.y",
)


@dataclass(frozen=True)
class Special:
    """A special register source (thread / block indices and extents).

    Special registers are hardware-generated on read, so they are always
    error-free and make safe PDDG terminals for checkpoint pruning.
    """

    name: str

    def __post_init__(self):
        if self.name not in SPECIAL_REGISTERS:
            raise ValueError(f"unknown special register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SymRef:
    """A reference to a named buffer (kernel parameter, shared array,
    constant bank).  Used as a ``mov`` source to materialize the buffer's
    base address, or directly as a load/store base.  The simulator resolves
    symbols to concrete addresses at launch time."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SrcLoc:
    """A source span in the PTX-subset text an instruction was parsed from.

    ``line`` and ``col`` are 1-based; ``end_col`` is the column of the last
    character (inclusive), so carets can underline the whole instruction.
    Instructions built programmatically (builder, passes) carry no location.
    """

    line: int
    col: int = 1
    end_col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


#: Any value-producing operand an instruction may read.
Operand = Union[Reg, Imm, Special, SymRef]


def is_operand(x) -> bool:
    return isinstance(x, (Reg, Imm, Special, SymRef))
