"""Emit PTX-subset text from the IR (the inverse of :mod:`repro.ir.parser`)."""

from __future__ import annotations

from typing import List

from repro.ir.module import Kernel, Module


def print_kernel(kernel: Kernel) -> str:
    """Render a kernel as parseable PTX-subset text."""
    lines: List[str] = []
    params = ", ".join(
        f".param .{'ptr' if p.is_pointer else p.dtype.value} {p.name}"
        for p in kernel.params
    )
    lines.append(f".entry {kernel.name} ({params}) {{")
    for decl in kernel.shared:
        lines.append(f"  .shared .b32 {decl.name}[{decl.num_words}];")
    for blk in kernel.blocks:
        lines.append(f"{blk.label}:")
        for inst in blk.instructions:
            lines.append(f"  {inst}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    return "\n\n".join(print_kernel(k) for k in module.kernels)
