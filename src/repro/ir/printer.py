"""Emit PTX-subset text from the IR (the inverse of :mod:`repro.ir.parser`)."""

from __future__ import annotations

from typing import List

from repro.ir.module import Kernel, Module


def print_kernel(kernel: Kernel, locs: bool = False) -> str:
    """Render a kernel as parseable PTX-subset text.

    With ``locs=True`` every instruction that carries a source span
    (:class:`repro.ir.types.SrcLoc`, attached by the parser) is suffixed
    with a ``// loc=line:col`` comment.  The comment is ignored on
    re-parse, so the round-trip stays lossless for the program text while
    preserving provenance for human readers and golden files.
    """
    lines: List[str] = []
    params = ", ".join(
        f".param .{'ptr' if p.is_pointer else p.dtype.value} {p.name}"
        for p in kernel.params
    )
    lines.append(f".entry {kernel.name} ({params}) {{")
    for decl in kernel.shared:
        lines.append(f"  .shared .b32 {decl.name}[{decl.num_words}];")
    for blk in kernel.blocks:
        lines.append(f"{blk.label}:")
        for inst in blk.instructions:
            text = f"  {inst}"
            if locs and getattr(inst, "loc", None) is not None:
                text += f"  // loc={inst.loc}"
            lines.append(text)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module, locs: bool = False) -> str:
    return "\n\n".join(print_kernel(k, locs=locs) for k in module.kernels)
