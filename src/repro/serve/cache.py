"""The two-tier content-addressed compile cache.

Tier 1 is an in-memory LRU with a byte budget: entries are the pickled
:class:`repro.core.pipeline.CompileResult` payloads, recency is update
order, and eviction walks the cold end until the budget holds.  Tier 2
is an optional on-disk store (one file per key digest) shared between
processes and sessions:

- **writes are atomic** — payloads land in a same-directory temp file
  first and are published with ``os.replace``, so a concurrent reader
  (or a killed writer) can never observe a half-written entry;
- **reads are corruption-tolerant** — any failure to read or unpickle
  an entry (truncation, bit rot, a stale format) is a *miss*, the bad
  file is unlinked best-effort, and a counter records it.

Results are stored pickled and unpickled fresh on every hit, so each
caller gets an isolated object graph — a hit can be mutated (kernels
are executed, stats annotated) without poisoning the cache.

A cache is installed for a dynamic scope the same way a tracer is::

    with CompileCache(directory="~/.cache/penny") as cache:
        PennyCompiler(cfg).compile(kernel)   # miss, stored
        PennyCompiler(cfg).compile(kernel)   # hit

:func:`active_cache` is the context-var lookup the compiler driver
performs; every lookup/store is an ``obs`` span with ``cache.hit`` /
``cache.miss`` / ``cache.evict`` counters.
"""

from __future__ import annotations

import errno
import io
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.serve.chaos import (
    SITE_CACHE_READ,
    SITE_CACHE_STORE,
    active_chaos,
)
from repro.serve.key import CacheKey

_ACTIVE: ContextVar[Optional["CompileCache"]] = ContextVar(
    "repro_serve_cache", default=None
)

#: default in-memory budget — roughly 10k pickled kernel results
DEFAULT_MEMORY_BYTES = 64 * 1024 * 1024

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def active_cache() -> Optional["CompileCache"]:
    """The cache installed for this context, or ``None`` (uncached)."""
    return _ACTIVE.get()


def default_cache_dir() -> str:
    """``$PENNY_CACHE_DIR`` or the conventional user cache location."""
    env = os.environ.get("PENNY_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "penny")


@dataclass
class CacheStats:
    """Counters for one cache instance (process-local, monotonic)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_errors: int = 0
    evictions: int = 0
    corrupt: int = 0
    memory_bytes: int = 0
    memory_entries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "memory_bytes": self.memory_bytes,
            "memory_entries": self.memory_entries,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompileCache:
    """Two-tier (memory LRU + optional disk) compile-result cache."""

    def __init__(
        self,
        max_memory_bytes: int = DEFAULT_MEMORY_BYTES,
        directory: Optional[str] = None,
    ):
        if max_memory_bytes < 0:
            raise ValueError("max_memory_bytes must be >= 0")
        self.max_memory_bytes = max_memory_bytes
        self.directory = (
            os.path.abspath(os.path.expanduser(directory))
            if directory
            else None
        )
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._token = None

    # -- installation (context-var scoped, like obs.Tracer) -------------------

    def __enter__(self) -> "CompileCache":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False

    # -- the lookup/store API --------------------------------------------------

    def get(self, key: CacheKey):
        """The cached :class:`CompileResult` for ``key`` (a fresh,
        isolated copy), or ``None``."""
        digest = key.digest
        with obs.span("cache.lookup", digest=digest[:12]) as sp:
            payload = self._memory_get(digest)
            tier = "memory"
            if payload is None and self.directory:
                payload = self._disk_get(digest)
                tier = "disk"
                if payload is not None:
                    # Promote: disk hits become memory-resident.
                    self._memory_put(digest, payload)
            if payload is None:
                self.stats.misses += 1
                obs.inc("cache.miss")
                sp.tag(hit=False)
                return None
            try:
                result = pickle.loads(payload)
            except Exception:
                # A poisoned memory entry (should be impossible) still
                # must not take the compile down with it.
                self._drop(digest)
                self.stats.corrupt += 1
                self.stats.misses += 1
                obs.inc("cache.corrupt")
                obs.inc("cache.miss")
                sp.tag(hit=False, corrupt=True)
                return None
            self.stats.hits += 1
            obs.inc("cache.hit")
            sp.tag(hit=True, tier=tier)
            return result

    def put(self, key: CacheKey, result) -> None:
        """Store one compile result under ``key`` in both tiers."""
        digest = key.digest
        payload = pickle.dumps(result, _PICKLE_PROTOCOL)
        with obs.span(
            "cache.store", digest=digest[:12], bytes=len(payload)
        ):
            self._memory_put(digest, payload)
            if self.directory:
                self._disk_put(digest, payload)
            self.stats.stores += 1
            obs.inc("cache.store")

    def clear(self) -> int:
        """Drop every entry in both tiers; returns entries removed."""
        removed = len(self._memory)
        self._memory.clear()
        self.stats.memory_bytes = 0
        self.stats.memory_entries = 0
        if self.directory:
            for name, path in self._disk_entries():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Reclaim disk entries: drop everything older than
        ``max_age_seconds``, then evict least-recently-used files until
        the tier fits ``max_bytes``.  Returns files removed."""
        if not self.directory:
            return 0
        now = time.time()
        removed = 0
        entries: List[Tuple[float, int, str]] = []  # (mtime, size, path)
        for name, path in self._disk_entries():
            try:
                st = os.stat(path)
            except OSError:
                continue
            if (
                max_age_seconds is not None
                and now - st.st_mtime > max_age_seconds
            ):
                removed += self._unlink(path)
                continue
            entries.append((st.st_mtime, st.st_size, path))
        if max_bytes is not None:
            entries.sort()  # oldest first
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= max_bytes:
                    break
                removed += self._unlink(path)
                total -= size
        return removed

    def disk_usage(self) -> Tuple[int, int]:
        """``(entries, bytes)`` currently in the disk tier."""
        entries = 0
        total = 0
        if self.directory:
            for name, path in self._disk_entries():
                try:
                    total += os.stat(path).st_size
                    entries += 1
                except OSError:
                    pass
        return entries, total

    def report(self) -> Dict[str, Any]:
        """Stats + tier shape (what ``penny cache stats`` prints)."""
        entries, total = self.disk_usage()
        return {
            "kind": "cache_stats",
            "directory": self.directory,
            "disk_entries": entries,
            "disk_bytes": total,
            "max_memory_bytes": self.max_memory_bytes,
            "stats": self.stats.to_dict(),
            "hit_rate": round(self.stats.hit_rate, 4),
        }

    # -- memory tier -----------------------------------------------------------

    def _memory_get(self, digest: str) -> Optional[bytes]:
        payload = self._memory.get(digest)
        if payload is not None:
            self._memory.move_to_end(digest)
        return payload

    def _memory_put(self, digest: str, payload: bytes) -> None:
        if len(payload) > self.max_memory_bytes:
            return  # would evict everything and still not fit
        old = self._memory.pop(digest, None)
        if old is not None:
            self.stats.memory_bytes -= len(old)
        self._memory[digest] = payload
        self.stats.memory_bytes += len(payload)
        while self.stats.memory_bytes > self.max_memory_bytes and self._memory:
            _, evicted = self._memory.popitem(last=False)
            self.stats.memory_bytes -= len(evicted)
            self.stats.evictions += 1
            obs.inc("cache.evict")
        self.stats.memory_entries = len(self._memory)

    def _drop(self, digest: str) -> None:
        old = self._memory.pop(digest, None)
        if old is not None:
            self.stats.memory_bytes -= len(old)
            self.stats.memory_entries = len(self._memory)
        if self.directory:
            self._unlink(self._path(digest))

    # -- disk tier -------------------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.pkl")

    def _disk_entries(self):
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if name.endswith(".pkl"):
                yield name, os.path.join(self.directory, name)

    def _disk_get(self, digest: str) -> Optional[bytes]:
        path = self._path(digest)
        chaos = active_chaos()
        # Only a read that has an entry to damage is a decision point:
        # that keeps the injected count equal to the faults that truly
        # happened (a corrupted nonexistent file is not a fault).
        if chaos is not None and os.path.exists(path):
            rule = chaos.decide(SITE_CACHE_READ, digest=digest[:12])
            if rule is not None:
                self._apply_read_chaos(rule, path)
        try:
            with open(path, "rb") as f:
                payload = f.read()
        except OSError:
            return None
        # Validate eagerly: a truncated/corrupted entry must behave as a
        # miss *here*, before the payload is promoted to the memory tier.
        try:
            pickle.loads(payload)
        except Exception:
            self.stats.corrupt += 1
            obs.inc("cache.corrupt")
            self._unlink(path)
            return None
        # Recency for gc's LRU ordering.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def _disk_put(self, digest: str, payload: bytes) -> None:
        path = self._path(digest)
        rule = None
        chaos = active_chaos()
        if chaos is not None:
            rule = chaos.decide(SITE_CACHE_STORE, digest=digest[:12])
            if rule is not None and rule.kind == "cache.slow_store":
                time.sleep(rule.delay_s)
        write_payload = payload
        if rule is not None and rule.kind == "cache.torn":
            # A filesystem that lied about atomicity: a truncated entry
            # lands under the real name.  The read path's eager pickle
            # validation is what catches (and unlinks) it.
            write_payload = payload[: max(1, len(payload) // 2)]
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with io.open(fd, "wb") as f:
                    f.write(write_payload)
                    f.flush()
                    if rule is not None and rule.kind == "cache.enospc":
                        raise OSError(
                            errno.ENOSPC, "no space left on device"
                        )
                # Paranoia against short writes the buffered layer did
                # not surface: never publish a file of the wrong size.
                if os.stat(tmp).st_size != len(write_payload):
                    raise OSError(errno.EIO, "short write to cache tier")
                os.replace(tmp, path)  # atomic publish
            except BaseException:
                self._unlink(tmp)
                raise
        except OSError:
            # A full or read-only disk degrades the cache, never the
            # compilation: the temp file is gone, the old entry (if any)
            # is untouched, and the failure is counted.
            self.stats.store_errors += 1
            obs.inc("cache.store_error")
            obs.event("cache.disk_write_failed", digest=digest[:12])

    @staticmethod
    def _apply_read_chaos(rule, path: str) -> None:
        """Damage the on-disk entry the way the rule prescribes, then
        let the *normal* read path discover it (that path — validate,
        count ``cache.corrupt``, unlink, miss — is what is under test)."""
        if rule.kind == "cache.slow_read":
            time.sleep(rule.delay_s)
            return
        try:
            if rule.kind == "cache.corrupt":
                size = os.path.getsize(path)
                with open(path, "r+b") as f:
                    f.write(b"\xde\xad\xbe\xef" * max(1, size // 8))
            elif rule.kind == "cache.truncate":
                size = os.path.getsize(path)
                with open(path, "r+b") as f:
                    f.truncate(max(0, size // 2))
        except OSError:
            pass  # nothing on disk to damage: the read will miss anyway

    @staticmethod
    def _unlink(path: str) -> int:
        try:
            os.unlink(path)
            return 1
        except OSError:
            return 0
