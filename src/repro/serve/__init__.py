"""``repro.serve`` — compilation-as-a-service.

Three layers turn the one-shot compiler into a serving subsystem:

- **Content-addressed compile cache** (:mod:`repro.serve.cache`,
  :mod:`repro.serve.key`): results keyed by SHA-256 of the canonical
  kernel text, the canonical :class:`~repro.core.pipeline.PennyConfig`
  serialization and a code-version fingerprint; an in-memory LRU with a
  byte budget over an atomic, corruption-tolerant disk store.
  Installing a cache (``with CompileCache(...):``) accelerates every
  existing entry point — :class:`~repro.core.pipeline.PennyCompiler`
  consults the context's cache on each ``compile()``.

- **Parallel batch driver** (:mod:`repro.serve.batch`):
  :func:`compile_batch` fans jobs over a process pool with
  deterministic result ordering, per-job typed error capture and cache
  consultation before dispatch.

- **Async server + client** (:mod:`repro.serve.server`,
  :mod:`repro.serve.client`): ``penny serve`` fronts the pool with a
  bounded queue (typed :class:`ServerBusy` backpressure), per-request
  timeouts, disconnect cancellation and graceful SIGTERM drain;
  ``penny client`` retries transient failures with exponential backoff
  plus jitter.

Quickstart::

    from repro.serve import CompileCache, compile_batch, jobs_from_source

    with CompileCache(directory="~/.cache/penny"):
        jobs = jobs_from_source(open("kernels.ptx").read(), config)
        report = compile_batch(jobs, workers=4)   # second run: all hits
"""

from repro.serve.batch import (
    BatchReport,
    CompileJob,
    JobResult,
    compile_batch,
    jobs_from_source,
)
from repro.serve.cache import (
    CacheStats,
    CompileCache,
    active_cache,
    default_cache_dir,
)
from repro.serve.client import (
    DEFAULT_PORT,
    CompileClient,
    RetryPolicy,
    wait_until_ready,
)
from repro.serve.errors import (
    ProtocolError,
    RemoteCompileError,
    RequestCancelled,
    RequestTimeout,
    ServeError,
    ServerBusy,
    ServerUnavailable,
    error_from_dict,
)
from repro.serve.key import (
    CacheKey,
    canonical_config_json,
    code_fingerprint,
    compile_cache_key,
)
from repro.serve.server import CompileServer, ServeConfig, ServerStats

__all__ = [
    # cache
    "CompileCache",
    "CacheStats",
    "active_cache",
    "default_cache_dir",
    "CacheKey",
    "compile_cache_key",
    "canonical_config_json",
    "code_fingerprint",
    # batch
    "CompileJob",
    "JobResult",
    "BatchReport",
    "compile_batch",
    "jobs_from_source",
    # server + client
    "CompileServer",
    "ServeConfig",
    "ServerStats",
    "CompileClient",
    "RetryPolicy",
    "DEFAULT_PORT",
    "wait_until_ready",
    # errors
    "ServeError",
    "ServerBusy",
    "RequestTimeout",
    "RequestCancelled",
    "ProtocolError",
    "ServerUnavailable",
    "RemoteCompileError",
    "error_from_dict",
]
