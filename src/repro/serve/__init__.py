"""``repro.serve`` — compilation-as-a-service.

Four layers turn the one-shot compiler into a serving subsystem:

- **Content-addressed compile cache** (:mod:`repro.serve.cache`,
  :mod:`repro.serve.key`): results keyed by SHA-256 of the canonical
  kernel text, the canonical :class:`~repro.core.pipeline.PennyConfig`
  serialization and a code-version fingerprint; an in-memory LRU with a
  byte budget over an atomic, corruption-tolerant, self-healing disk
  store (write faults counted, corrupt entries unlinked on read).
  Installing a cache (``with CompileCache(...):``) accelerates every
  existing entry point — :class:`~repro.core.pipeline.PennyCompiler`
  consults the context's cache on each ``compile()``.

- **Parallel batch driver** (:mod:`repro.serve.batch`):
  :func:`compile_batch` fans jobs over a process pool with
  deterministic result ordering, per-job typed error capture and cache
  consultation before dispatch.

- **Async server + supervised pool + client**
  (:mod:`repro.serve.server`, :mod:`repro.serve.pool`,
  :mod:`repro.serve.client`): ``penny serve`` fronts a *supervised*
  worker pool — crashed workers restart with backoff, hung workers are
  reclaimed, poison jobs are quarantined with a typed
  :class:`PoisonJobError` — behind a bounded queue (typed
  :class:`ServerBusy` backpressure), with per-cache-key request
  coalescing, per-request timeouts, disconnect cancellation, a
  ``health`` op and graceful SIGTERM drain; ``penny client`` retries
  transient failures with exponential backoff plus jitter under an
  optional wall-clock deadline, and an optional :class:`CircuitBreaker`
  fails fast while the server is down.

- **Chaos harness** (:mod:`repro.serve.chaos`): seeded, plan-driven
  service-level fault injection — worker kills and hangs, cache
  corruption/truncation/ENOSPC, connection drops — installable for a
  dynamic scope (``with ChaosEngine(plan):``) exactly like the cache
  and tracer, and inert (one context-var read) when absent.

Quickstart::

    from repro.serve import CompileCache, compile_batch, jobs_from_source

    with CompileCache(directory="~/.cache/penny"):
        jobs = jobs_from_source(open("kernels.ptx").read(), config)
        report = compile_batch(jobs, workers=4)   # second run: all hits
"""

from repro.serve.batch import (
    BatchReport,
    CompileJob,
    JobResult,
    compile_batch,
    jobs_from_source,
)
from repro.serve.cache import (
    CacheStats,
    CompileCache,
    active_cache,
    default_cache_dir,
)
from repro.serve.chaos import (
    ChaosEngine,
    ChaosEvent,
    ChaosPlan,
    ChaosRule,
    active_chaos,
)
from repro.serve.client import (
    DEFAULT_PORT,
    CircuitBreaker,
    CompileClient,
    RetryPolicy,
    wait_until_ready,
)
from repro.serve.errors import (
    CircuitOpen,
    PoisonJobError,
    ProtocolError,
    RemoteCompileError,
    RequestCancelled,
    RequestTimeout,
    ServeError,
    ServerBusy,
    ServerUnavailable,
    WorkerCrashError,
    error_from_dict,
)
from repro.serve.key import (
    CacheKey,
    canonical_config_json,
    code_fingerprint,
    compile_cache_key,
)
from repro.serve.pool import PoolConfig, PoolMetrics, WorkerPool
from repro.serve.server import CompileServer, ServeConfig, ServerStats

__all__ = [
    # cache
    "CompileCache",
    "CacheStats",
    "active_cache",
    "default_cache_dir",
    "CacheKey",
    "compile_cache_key",
    "canonical_config_json",
    "code_fingerprint",
    # batch
    "CompileJob",
    "JobResult",
    "BatchReport",
    "compile_batch",
    "jobs_from_source",
    # server + pool + client
    "CompileServer",
    "ServeConfig",
    "ServerStats",
    "WorkerPool",
    "PoolConfig",
    "PoolMetrics",
    "CompileClient",
    "RetryPolicy",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "wait_until_ready",
    # chaos
    "ChaosEngine",
    "ChaosPlan",
    "ChaosRule",
    "ChaosEvent",
    "active_chaos",
    # errors
    "ServeError",
    "ServerBusy",
    "RequestTimeout",
    "RequestCancelled",
    "ProtocolError",
    "ServerUnavailable",
    "RemoteCompileError",
    "WorkerCrashError",
    "PoisonJobError",
    "CircuitOpen",
    "error_from_dict",
]
