"""Typed errors of the serving subsystem.

Every failure mode a caller of :mod:`repro.serve` can hit is a distinct
exception type, mirroring the compiler's :mod:`repro.core.errors`
hierarchy: the batch driver captures per-job :class:`CompileError`\\ s
without dying, the server rejects with :class:`ServerBusy` under
backpressure instead of queuing unboundedly, and the client surfaces
exhausted retries as :class:`ServerUnavailable` with the attempt log.

All of them serialize with :meth:`to_dict` (and rebuild with
:func:`error_from_dict`) so the wire protocol and job records carry the
*type*, not just a message string.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.runtime.errors import PoisonJobError as _RuntimePoisonJobError
from repro.runtime.errors import WorkerCrashError as _RuntimeWorkerCrashError
from repro.runtime.errors import _plain


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""

    def __init__(self, message: str, **detail: Any):
        super().__init__(message)
        self.message = message
        self.detail: Dict[str, Any] = detail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "message": self.message,
            "detail": {k: _plain(v) for k, v in self.detail.items()},
        }


class ServerBusy(ServeError):
    """The server's bounded request queue is full (backpressure).

    Deliberately *not* retried by the server itself: the client owns the
    retry policy (exponential backoff + jitter) so a saturated server
    sheds load instead of accumulating it.
    """


class RequestTimeout(ServeError):
    """A request exceeded its per-request compile deadline."""


class RequestCancelled(ServeError):
    """The client disconnected (or the server drained) mid-request."""


class ProtocolError(ServeError):
    """A malformed frame on the JSONL wire protocol."""


class ServerUnavailable(ServeError):
    """The client exhausted its retry budget without a served response."""


class RemoteCompileError(ServeError):
    """A compile request failed on the server with a typed
    :class:`repro.core.errors.CompileError`; ``detail`` carries its
    serialized form (pass name, scheme, kernel snapshot)."""


class WorkerCrashError(_RuntimeWorkerCrashError, ServeError):
    """A pool worker died (crash, SIGKILL, or a supervisor hang-kill)
    while running the job and the retry budget did not absorb it.

    Subclasses both the runtime's generic
    :class:`repro.runtime.errors.WorkerCrashError` (so the shared pool
    and sweep engines catch it generically) and :class:`ServeError` (so
    it round-trips the wire like every serving failure)."""


class PoisonJobError(_RuntimePoisonJobError, ServeError):
    """A job killed enough consecutive workers to be quarantined.

    The supervised pool retries a job whose worker crashed; a job whose
    *every* attempt kills its worker would otherwise crash-loop the pool
    forever.  After ``poison_threshold`` consecutive worker deaths the
    job is failed with this error and its key is quarantined — later
    submissions of the same key fail fast without touching a worker.
    Dual-inherits like :class:`WorkerCrashError`.
    """


class CircuitOpen(ServeError):
    """The client's circuit breaker is open: recent attempts failed at
    the transport layer, so the client fails fast instead of hammering a
    dead server.  ``detail`` carries the breaker state and when the next
    probe is allowed."""


_ERROR_TYPES = {}


def _register(cls) -> None:
    _ERROR_TYPES[cls.__name__] = cls


for _cls in (
    ServeError,
    ServerBusy,
    RequestTimeout,
    RequestCancelled,
    ProtocolError,
    ServerUnavailable,
    RemoteCompileError,
    WorkerCrashError,
    PoisonJobError,
    CircuitOpen,
):
    _register(_cls)


def error_from_dict(payload: Optional[Dict[str, Any]]) -> ServeError:
    """Rebuild a typed serve error from its wire form (unknown types
    degrade to the :class:`ServeError` base, never raise)."""
    if not isinstance(payload, dict):
        return ServeError("malformed error payload")
    cls = _ERROR_TYPES.get(str(payload.get("type")), ServeError)
    detail = payload.get("detail")
    err = cls(str(payload.get("message", "unknown error")))
    if isinstance(detail, dict):
        err.detail = detail
    return err
