"""The parallel batch compile driver.

:func:`compile_batch` runs many independent compilations with the same
contract serial code gets, at process-pool throughput:

- **deterministic ordering** — results come back in job order no matter
  which worker finished first (the campaign/fuzz engines' idiom);
- **typed per-job error capture** — a failing job yields its serialized
  :class:`repro.core.errors.CompileError` in the :class:`JobResult`; it
  never kills the batch or another job;
- **cache consultation before dispatch** — jobs whose key is already in
  the installed (or passed) :class:`repro.serve.cache.CompileCache` skip
  the pool entirely, and every miss compiled by a worker is stored back
  by the parent, so the *next* batch is warm;
- a :class:`BatchReport` implementing the :class:`repro.obs.Reportable`
  protocol, with per-job timings for the metrics sink.

Workers are plain ``multiprocessing.Pool`` processes rebuilt from pure
data (``ptx`` text + ``PennyConfig.to_dict()``), mirroring
:mod:`repro.gpusim.campaign`; results cross the process boundary via
pickle, which is why :class:`CompileResult` pickle-safety is a tested
invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import repro.obs as obs
from repro.core.errors import CompileError
from repro.core.pipeline import (
    CompileResult,
    LaunchConfig,
    PennyCompiler,
    PennyConfig,
)
from repro.core.storage import StorageBudget
from repro.ir.parser import parse_module
from repro.ir.printer import print_kernel
from repro.serve.cache import CompileCache, active_cache
from repro.serve.key import compile_cache_key


@dataclass(frozen=True)
class CompileJob:
    """One unit of batch work: a single kernel's text plus its knobs."""

    ptx: str
    config: PennyConfig
    launch: LaunchConfig = field(default_factory=LaunchConfig)
    strict: bool = True
    name: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ptx": self.ptx,
            "config": self.config.to_dict(),
            "launch": {
                "threads_per_block": self.launch.threads_per_block,
                "num_blocks": self.launch.num_blocks,
            },
            "strict": self.strict,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CompileJob":
        return cls(
            ptx=d["ptx"],
            config=PennyConfig.from_dict(d["config"]),
            launch=LaunchConfig(**d.get("launch", {})),
            strict=bool(d.get("strict", True)),
            name=d.get("name"),
        )


def jobs_from_source(
    source: str,
    config: PennyConfig,
    launch: Optional[LaunchConfig] = None,
    strict: bool = True,
    name: Optional[str] = None,
) -> List[CompileJob]:
    """One job per kernel in a PTX-subset module (canonicalized text, so
    the jobs share cache entries with any equivalent spelling)."""
    launch = launch or LaunchConfig()
    return [
        CompileJob(
            ptx=print_kernel(kernel),
            config=config,
            launch=launch,
            strict=strict,
            name=name or kernel.name,
        )
        for kernel in parse_module(source).kernels
    ]


@dataclass
class JobResult:
    """One job's outcome: exactly one of ``result`` / ``error`` is set."""

    index: int
    name: str
    result: Optional[CompileResult] = None
    error: Optional[Dict[str, Any]] = None
    cached: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "name": self.name,
            "ok": self.ok,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class BatchReport:
    """A whole batch's outcome (:class:`repro.obs.Reportable`)."""

    results: List[JobResult]
    workers: int
    wall_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def compile_results(self) -> List[Optional[CompileResult]]:
        """Results in job order (``None`` where the job failed)."""
        return [r.result for r in self.results]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "batch_report",
            "jobs": len(self.results),
            "ok": sum(1 for r in self.results if r.ok),
            "failed": len(self.failures),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "results": [r.to_dict() for r in self.results],
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "jobs": len(self.results),
            "ok": sum(1 for r in self.results if r.ok),
            "failed": len(self.failures),
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
        }


def _compile_job(job: CompileJob) -> CompileResult:
    """Compile one job in-process (no cache — callers own that)."""
    module = parse_module(job.ptx)
    if len(module.kernels) != 1:
        raise CompileError(
            f"batch job {job.name!r} must contain exactly one kernel, "
            f"got {len(module.kernels)}",
            pass_name="batch",
        )
    compiler = PennyCompiler(job.config, strict=job.strict, cache=None)
    # The job's kernel is freshly parsed and private to this call.
    return compiler.compile(module.kernels[0], job.launch, copy=False)


def _worker_run(payload: Dict[str, Any]):
    """Pool worker: returns ``(index, ok, result_or_error_dict)``."""
    index = payload["index"]
    job = CompileJob.from_dict(payload["job"])
    start = time.perf_counter()
    try:
        result = _compile_job(job)
    except CompileError as exc:
        return index, False, exc.to_dict(), time.perf_counter() - start
    except Exception as exc:  # non-compiler crash: still just this job
        return (
            index,
            False,
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "pass": "batch",
                "scheme": None,
                "kernel": job.name,
                "kernel_ptx": job.ptx,
                "detail": {},
            },
            time.perf_counter() - start,
        )
    return index, True, result, time.perf_counter() - start


def compile_batch(
    jobs: Sequence[CompileJob],
    workers: int = 1,
    cache: Optional[CompileCache] = None,
    chunksize: int = 1,
) -> BatchReport:
    """Compile ``jobs`` on up to ``workers`` processes.

    ``cache=None`` uses the context-installed cache (if any); pass a
    :class:`CompileCache` to pin one explicitly.  Failed jobs yield
    their typed error payload in ``report.results[i].error``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    jobs = list(jobs)
    if cache is None:
        cache = active_cache()
    started = time.perf_counter()
    results: List[Optional[JobResult]] = [None] * len(jobs)
    hits = 0

    with obs.span("serve.batch", jobs=len(jobs), workers=workers):
        todo: List[int] = []
        keys = {}
        for i, job in enumerate(jobs):
            name = job.name or f"job{i}"
            if cache is not None:
                # A malformed job must fail *as that job* in the worker,
                # not abort the whole batch during key derivation.
                try:
                    module = parse_module(job.ptx)
                except Exception:
                    module = None
                if module is not None and len(module.kernels) == 1:
                    # Same key derivation as PennyCompiler.compile under
                    # an installed cache (workers use the default budget).
                    keys[i] = compile_cache_key(
                        module.kernels[0],
                        job.config,
                        launch=job.launch,
                        budget=StorageBudget(),
                        strict=job.strict,
                    )
                    hit = cache.get(keys[i])
                    if hit is not None:
                        hits += 1
                        results[i] = JobResult(
                            index=i, name=name, result=hit, cached=True
                        )
                        obs.event("batch.job", job=name, cached=True)
                        continue
            todo.append(i)

        for index, ok, payload, seconds in _execute(jobs, todo, workers, chunksize):
            name = jobs[index].name or f"job{index}"
            with obs.span(
                "batch.job", job=name, ok=ok, seconds=round(seconds, 6)
            ):
                if ok:
                    results[index] = JobResult(
                        index=index,
                        name=name,
                        result=payload,
                        seconds=seconds,
                    )
                    if cache is not None and index in keys:
                        cache.put(keys[index], payload)
                else:
                    obs.inc("batch.job_failures")
                    results[index] = JobResult(
                        index=index,
                        name=name,
                        error=payload,
                        seconds=seconds,
                    )

    report = BatchReport(
        results=[r for r in results if r is not None],
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(jobs) - hits,
    )
    obs.inc("batch.jobs", len(jobs))
    return report


def _execute(
    jobs: Sequence[CompileJob],
    todo: Sequence[int],
    workers: int,
    chunksize: int,
):
    """Yield ``(index, ok, payload, seconds)`` for every job in ``todo``
    (arrival order; the caller re-sorts by slot)."""
    if workers <= 1 or len(todo) <= 1:
        for i in todo:
            yield _worker_run({"index": i, "job": jobs[i].to_dict()})
        return
    import multiprocessing as mp

    ctx = mp.get_context()
    payloads = [{"index": i, "job": jobs[i].to_dict()} for i in todo]
    with ctx.Pool(processes=min(workers, len(todo))) as pool:
        for record in pool.imap_unordered(
            _worker_run, payloads, chunksize=chunksize
        ):
            yield record
