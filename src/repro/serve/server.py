"""The async compile server: ``penny serve``.

An asyncio TCP server speaking a line-delimited JSON protocol (one
request object per line, one response object per line, strictly
request/response per connection).  Operations:

``ping``
    liveness probe, echoes ``id``.
``stats``
    server counters + the cache's :meth:`CompileCache.report` — what CI
    asserts warm-path hit rates against.
``compile``
    ``{"op": "compile", "ptx": ..., "config": {...}, "launch": {...},
    "strict": true}`` — the config payload is
    :meth:`PennyConfig.to_dict` form (or ``"scheme": "Penny"`` to use a
    preset).  The response carries the protected kernel text, the
    result's ``to_dict()`` and a ``cached`` flag.
``shutdown``
    begin a graceful drain (the same path SIGTERM takes).

Scale and robustness properties:

- compilation runs on a worker pool (processes by default; threads with
  ``use_threads=True``, which tests use so they can monkeypatch the job
  runner) behind a **bounded queue**: when ``queue_limit`` requests are
  in flight, further compiles are rejected immediately with a typed
  :class:`ServerBusy` payload — the client owns retry policy, the
  server sheds load;
- every compile has a **per-request timeout** (:class:`RequestTimeout`)
  and is **cancelled** when its client disconnects mid-request (the
  handler watches the connection while the pool works);
- SIGTERM/SIGINT (or the ``shutdown`` op) **drain gracefully**: the
  listener closes, in-flight requests finish and are answered, new
  compiles are rejected as busy, then the process exits;
- the parent consults the :class:`CompileCache` before dispatching to
  the pool and stores every miss, so a repeated corpus is served from
  memory/disk without touching a worker.

Observability: ``serve.request`` spans, ``serve.requests`` /
``serve.busy_rejections`` / ``serve.timeouts`` / ``serve.cancelled``
counters and a ``serve.queue_depth`` gauge, all through
:mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import repro.obs as obs
from repro.core.pipeline import PennyConfig
from repro.ir.printer import print_kernel
from repro.serve.batch import CompileJob, _compile_job
from repro.serve.cache import DEFAULT_MEMORY_BYTES, CompileCache
from repro.serve.errors import (
    ProtocolError,
    RequestTimeout,
    ServeError,
    ServerBusy,
)
from repro.serve.key import compile_cache_key


@dataclass
class ServeConfig:
    """Everything ``penny serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral (the bound port is announced)
    workers: int = 2
    queue_limit: int = 8
    request_timeout: float = 120.0
    cache_dir: Optional[str] = None
    max_memory_bytes: int = DEFAULT_MEMORY_BYTES
    #: thread pool instead of process pool (tests; GIL-bound otherwise)
    use_threads: bool = False


@dataclass
class ServerStats:
    """Process-local request counters (reported by the ``stats`` op)."""

    requests: int = 0
    compiles: int = 0
    busy_rejections: int = 0
    timeouts: int = 0
    cancelled: int = 0
    errors: int = 0
    protocol_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "compiles": self.compiles,
            "busy_rejections": self.busy_rejections,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
        }


def _execute_request(payload: Dict[str, Any]) -> Tuple[str, Any]:
    """Pool entry point: compile one serialized job.

    Returns ``("ok", CompileResult)`` or ``("error", error_dict)`` —
    exceptions never cross the executor boundary untyped.  Module-level
    (not a method) so the process pool can pickle it and tests can
    monkeypatch it.
    """
    from repro.core.errors import CompileError

    job = CompileJob.from_dict(payload)
    try:
        return "ok", _compile_job(job)
    except CompileError as exc:
        return "error", exc.to_dict()
    except Exception as exc:
        return "error", {
            "type": type(exc).__name__,
            "message": str(exc),
            "pass": "serve",
            "scheme": None,
            "kernel": job.name,
            "kernel_ptx": job.ptx,
            "detail": {},
        }


class CompileServer:
    """One serving process: listener + bounded queue + worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.stats = ServerStats()
        self.cache = CompileCache(
            max_memory_bytes=self.config.max_memory_bytes,
            directory=self.config.cache_dir,
        )
        self.port: Optional[int] = None  #: bound port, set on start
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = None
        self._inflight = 0
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._ready = threading.Event()  #: for start_in_thread callers
        self._connections: set = set()
        self._handlers: set = set()

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> int:
        """Blocking entry point: serve until drained (SIGTERM/SIGINT or
        a ``shutdown`` op), then return 0."""
        asyncio.run(self.serve())
        return 0

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        cfg = self.config
        if cfg.use_threads:
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, cfg.workers)
            )
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=max(1, cfg.workers)
            )
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # not the main thread (tests) or unsupported
        self._server = await asyncio.start_server(
            self._handle, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.event("serve.listening", host=cfg.host, port=self.port)
        self._ready.set()
        try:
            await self._drained.wait()
        finally:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            # Push EOF to idle connections so their handlers exit before
            # the loop tears down (silences cancelled-task noise).
            for writer in list(self._connections):
                try:
                    writer.close()
                except Exception:
                    pass
            handlers = list(self._handlers)
            if handlers:
                await asyncio.wait(handlers, timeout=1.0)
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._ready.clear()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown: stop accepting, finish in-flight
        work, reject new compiles as busy, then let :meth:`serve` exit.
        Safe to call more than once; must run on the server's loop."""
        if self._draining:
            return
        self._draining = True
        obs.event("serve.draining", inflight=self._inflight)
        if self._server is not None:
            self._server.close()
        if self._inflight == 0 and self._drained is not None:
            self._drained.set()

    def request_shutdown(self) -> None:
        """Thread-safe drain trigger (what tests and signal-less
        embedders call)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.initiate_drain)
            except RuntimeError:
                pass  # loop already closed: the server has exited

    def start_in_thread(self, timeout: float = 10.0) -> threading.Thread:
        """Run the server on a daemon thread; returns once it is
        listening (``self.port`` is bound)."""
        thread = threading.Thread(target=self.run, daemon=True)
        thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start listening in time")
        return thread

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pending_line: Optional[bytes] = None
        task = asyncio.current_task()
        self._connections.add(writer)
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                if pending_line is not None:
                    line, pending_line = pending_line, None
                else:
                    line = await reader.readline()
                if not line:
                    break
                response, pending_line = await self._dispatch(
                    reader, line
                )
                if response is None:
                    break  # client went away mid-request
                await self._send(writer, response)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(
        self, reader: asyncio.StreamReader, line: bytes
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        """Handle one frame.  Returns ``(response, pipelined_line)``;
        a ``None`` response means the client disconnected."""
        self.stats.requests += 1
        obs.inc("serve.requests")
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ValueError("frame is not a JSON object")
        except Exception as exc:
            self.stats.protocol_errors += 1
            return (
                _error_response(
                    None, ProtocolError(f"bad frame: {exc}")
                ),
                None,
            )
        rid = req.get("id")
        op = req.get("op")
        if op == "ping":
            return {"id": rid, "ok": True, "op": "ping"}, None
        if op == "stats":
            return (
                {
                    "id": rid,
                    "ok": True,
                    "op": "stats",
                    "stats": {
                        "server": self.stats.to_dict(),
                        "cache": self.cache.report(),
                        "inflight": self._inflight,
                        "queue_limit": self.config.queue_limit,
                        "draining": self._draining,
                    },
                },
                None,
            )
        if op == "shutdown":
            self._loop.call_soon(self.initiate_drain)
            return {"id": rid, "ok": True, "op": "shutdown"}, None
        if op == "compile":
            return await self._compile_request(reader, req)
        self.stats.protocol_errors += 1
        return _error_response(rid, ProtocolError(f"unknown op {op!r}")), None

    async def _compile_request(
        self, reader: asyncio.StreamReader, req: Dict[str, Any]
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        rid = req.get("id")
        if self._draining or self._inflight >= self.config.queue_limit:
            self.stats.busy_rejections += 1
            obs.inc("serve.busy_rejections")
            return (
                _error_response(
                    rid,
                    ServerBusy(
                        "draining"
                        if self._draining
                        else "request queue is full",
                        inflight=self._inflight,
                        queue_limit=self.config.queue_limit,
                        draining=self._draining,
                    ),
                ),
                None,
            )
        try:
            job = _job_from_request(req)
        except Exception as exc:
            self.stats.protocol_errors += 1
            return (
                _error_response(rid, ProtocolError(f"bad request: {exc}")),
                None,
            )

        self._inflight += 1
        obs.gauge("serve.queue_depth", self._inflight)
        started = time.perf_counter()
        try:
            with obs.span("serve.request", op="compile", job=job.name):
                return await self._compile_inner(
                    reader, rid, job, started
                )
        finally:
            self._inflight -= 1
            if self._draining and self._inflight == 0:
                self._drained.set()

    async def _compile_inner(
        self,
        reader: asyncio.StreamReader,
        rid,
        job: CompileJob,
        started: float,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        # Cache first: a warm key never touches the pool.
        key = _key_for_job(job)
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.stats.compiles += 1
                return (
                    _ok_response(rid, hit, cached=True, started=started),
                    None,
                )

        compute = asyncio.ensure_future(
            asyncio.wait_for(
                self._loop.run_in_executor(
                    self._executor, _execute_request, job.to_dict()
                ),
                timeout=self.config.request_timeout,
            )
        )
        # Watch the connection while the pool works: EOF cancels the
        # request; a pipelined frame is kept for the handler loop.
        watcher = asyncio.ensure_future(reader.readline())
        pipelined: Optional[bytes] = None
        await asyncio.wait(
            {compute, watcher}, return_when=asyncio.FIRST_COMPLETED
        )
        if watcher.done():
            try:
                line = watcher.result()
            except Exception:
                line = b""  # connection error == disconnect
            if not line and not compute.done():
                # Disconnect mid-request: abandon the computation.
                compute.cancel()
                self.stats.cancelled += 1
                obs.inc("serve.cancelled")
                return None, None
            pipelined = line or None
            if not compute.done():
                await asyncio.wait({compute})
        else:
            # Cancellation must complete before the handler loop calls
            # readline() again, or the reader raises "already waiting".
            watcher.cancel()
            await asyncio.wait({watcher})

        try:
            status, payload = compute.result()
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            obs.inc("serve.timeouts")
            return (
                _error_response(
                    rid,
                    RequestTimeout(
                        f"compile exceeded {self.config.request_timeout}s",
                        timeout=self.config.request_timeout,
                    ),
                ),
                pipelined,
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pool infrastructure failure
            self.stats.errors += 1
            return (
                _error_response(
                    rid, ServeError(f"executor failure: {exc}")
                ),
                pipelined,
            )

        if status != "ok":
            self.stats.errors += 1
            obs.inc("serve.compile_errors")
            return (
                {
                    "id": rid,
                    "ok": False,
                    "error": {
                        "type": "RemoteCompileError",
                        "message": payload.get("message", "compile failed"),
                        "detail": payload,
                    },
                },
                pipelined,
            )
        self.stats.compiles += 1
        if key is not None:
            self.cache.put(key, payload)
        return (
            _ok_response(rid, payload, cached=False, started=started),
            pipelined,
        )

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
            + b"\n"
        )
        await writer.drain()


def _job_from_request(req: Dict[str, Any]) -> CompileJob:
    """Build the job from a compile frame (full config dict, or a
    ``scheme`` preset name, or server defaults)."""
    ptx = req.get("ptx")
    if not isinstance(ptx, str) or not ptx.strip():
        raise ValueError("missing 'ptx'")
    if "config" in req:
        config = PennyConfig.from_dict(req["config"])
    elif "scheme" in req:
        from repro.core.schemes import scheme_config

        config = scheme_config(req["scheme"])
    else:
        config = PennyConfig()
    from repro.core.pipeline import LaunchConfig

    launch = LaunchConfig(**req.get("launch", {}))
    return CompileJob(
        ptx=ptx,
        config=config,
        launch=launch,
        strict=bool(req.get("strict", True)),
        name=req.get("name"),
    )


def _key_for_job(job: CompileJob):
    from repro.core.storage import StorageBudget
    from repro.ir.parser import parse_module

    try:
        module = parse_module(job.ptx)
    except Exception:
        return None  # the worker will fail the job with a typed error
    if len(module.kernels) != 1:
        return None
    return compile_cache_key(
        module.kernels[0],
        job.config,
        launch=job.launch,
        budget=StorageBudget(),
        strict=job.strict,
    )


def _ok_response(
    rid, result, cached: bool, started: float
) -> Dict[str, Any]:
    return {
        "id": rid,
        "ok": True,
        "cached": cached,
        "kernel": print_kernel(result.kernel),
        "result": result.to_dict(),
        "summary": result.summary(),
        "seconds": round(time.perf_counter() - started, 6),
    }


def _error_response(rid, error: ServeError) -> Dict[str, Any]:
    return {"id": rid, "ok": False, "error": error.to_dict()}
