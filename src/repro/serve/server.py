"""The async compile server: ``penny serve``.

An asyncio TCP server speaking a line-delimited JSON protocol (one
request object per line, one response object per line, strictly
request/response per connection).  Operations:

``ping``
    liveness probe, echoes ``id``.
``health``
    readiness + supervision snapshot: ``ready`` (accepting work),
    draining flag, uptime and the worker pool's
    :meth:`~repro.serve.pool.WorkerPool.health` (alive/dead workers,
    restart/quarantine counters).  ``ready`` is an alias.
``stats``
    server counters + the cache's :meth:`CompileCache.report` — what CI
    asserts warm-path hit rates against.
``compile``
    ``{"op": "compile", "ptx": ..., "config": {...}, "launch": {...},
    "strict": true}`` — the config payload is
    :meth:`PennyConfig.to_dict` form (or ``"scheme": "Penny"`` to use a
    preset).  The response carries the protected kernel text, the
    result's ``to_dict()`` and a ``cached`` flag.
``shutdown``
    begin a graceful drain (the same path SIGTERM takes).

Scale and robustness properties:

- compilation runs on a **supervised** worker pool
  (:class:`repro.serve.pool.WorkerPool`; processes by default, threads
  with ``use_threads=True``, which tests use so they can monkeypatch the
  job runner) behind a **bounded queue**: when ``queue_limit`` requests
  are in flight, further compiles are rejected immediately with a typed
  :class:`ServerBusy` payload — the client owns retry policy, the
  server sheds load.  A crashed worker is restarted with backoff and its
  job retried; a job that keeps killing workers is quarantined with a
  typed :class:`PoisonJobError` instead of crash-looping the farm;
- concurrent cold requests for the same :class:`CacheKey` are
  **coalesced**: the first becomes the leader and compiles, the rest
  await the same in-flight computation (one ``cache.miss``, one worker
  dispatch, one ``cache.put`` — cache-stampede suppression).  The
  shared compile is abandoned only when its *last* waiter disconnects;
- every compile has a **per-request timeout** (:class:`RequestTimeout`)
  and is **cancelled** when its client disconnects mid-request (the
  handler watches the connection while the pool works);
- SIGTERM/SIGINT (or the ``shutdown`` op) **drain gracefully**: the
  listener closes, in-flight requests finish and are answered, new
  compiles are rejected as busy, then the process exits;
- the parent consults the :class:`CompileCache` before dispatching to
  the pool and stores every miss, so a repeated corpus is served from
  memory/disk without touching a worker.

Chaos: with a :class:`repro.serve.chaos.ChaosEngine` installed, the
response path consults the ``conn.drop`` site before writing (the
connection is closed instead — the client's retry path), the pool
consults ``worker.job`` at dispatch, and the cache consults
``cache.store``/``cache.read``.

Observability: ``serve.request`` spans, ``serve.requests`` /
``serve.busy_rejections`` / ``serve.timeouts`` / ``serve.cancelled`` /
``serve.coalesced`` counters and a ``serve.queue_depth`` gauge, all
through :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import repro.obs as obs
from repro.core.pipeline import PennyConfig
from repro.ir.printer import print_kernel
from repro.serve.batch import CompileJob, _compile_job
from repro.serve.cache import DEFAULT_MEMORY_BYTES, CompileCache
from repro.serve.chaos import SITE_CONN_SEND, active_chaos
from repro.serve.errors import (
    PoisonJobError,
    ProtocolError,
    RequestTimeout,
    ServeError,
    ServerBusy,
    WorkerCrashError,
)
from repro.serve.key import compile_cache_key
from repro.serve.pool import PoolConfig, WorkerPool


@dataclass
class ServeConfig:
    """Everything ``penny serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral (the bound port is announced)
    workers: int = 2
    queue_limit: int = 8
    request_timeout: float = 120.0
    cache_dir: Optional[str] = None
    max_memory_bytes: int = DEFAULT_MEMORY_BYTES
    #: thread pool instead of process pool (tests; GIL-bound otherwise)
    use_threads: bool = False
    #: consecutive worker deaths caused by one job before quarantine
    poison_threshold: int = 2
    #: extra slack the pool's hang detector grants beyond the request
    #: timeout (the request answers first; the pool then reclaims)
    job_timeout_grace: float = 5.0


@dataclass
class ServerStats:
    """Process-local request counters (reported by the ``stats`` op)."""

    requests: int = 0
    compiles: int = 0
    busy_rejections: int = 0
    timeouts: int = 0
    cancelled: int = 0
    errors: int = 0
    protocol_errors: int = 0
    coalesced: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "compiles": self.compiles,
            "busy_rejections": self.busy_rejections,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "coalesced": self.coalesced,
        }


def _execute_request(payload: Dict[str, Any]) -> Tuple[str, Any]:
    """Pool entry point: compile one serialized job.

    Returns ``("ok", CompileResult)`` or ``("error", error_dict)`` —
    exceptions never cross the worker boundary untyped.  Module-level
    (not a method) so worker processes can resolve it by path and tests
    can monkeypatch it.
    """
    from repro.core.errors import CompileError

    job = CompileJob.from_dict(payload)
    try:
        return "ok", _compile_job(job)
    except CompileError as exc:
        return "error", exc.to_dict()
    except Exception as exc:
        return "error", {
            "type": type(exc).__name__,
            "message": str(exc),
            "pass": "serve",
            "scheme": None,
            "kernel": job.name,
            "kernel_ptx": job.ptx,
            "detail": {},
        }


class _LiveCompile:
    """One in-flight compile shared by every coalesced request."""

    __slots__ = ("task", "waiters")

    def __init__(self, task: asyncio.Task):
        self.task = task
        self.waiters = 1


class CompileServer:
    """One serving process: listener + bounded queue + supervised pool."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.stats = ServerStats()
        self.cache = CompileCache(
            max_memory_bytes=self.config.max_memory_bytes,
            directory=self.config.cache_dir,
        )
        self.port: Optional[int] = None  #: bound port, set on start
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[WorkerPool] = None
        self._inflight = 0
        self._live: Dict[str, _LiveCompile] = {}  #: digest -> compile
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._ready = threading.Event()  #: for start_in_thread callers
        self._connections: set = set()
        self._handlers: set = set()
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> int:
        """Blocking entry point: serve until drained (SIGTERM/SIGINT or
        a ``shutdown`` op), then return 0."""
        asyncio.run(self.serve())
        return 0

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        cfg = self.config
        self._pool = WorkerPool(
            PoolConfig(
                workers=max(1, cfg.workers),
                use_threads=cfg.use_threads,
                job_timeout=cfg.request_timeout + cfg.job_timeout_grace,
                poison_threshold=cfg.poison_threshold,
            )
        ).start()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # not the main thread (tests) or unsupported
        self._server = await asyncio.start_server(
            self._handle, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        obs.event("serve.listening", host=cfg.host, port=self.port)
        self._ready.set()
        try:
            await self._drained.wait()
        finally:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            # Push EOF to idle connections so their handlers exit before
            # the loop tears down (silences cancelled-task noise).
            for writer in list(self._connections):
                try:
                    writer.close()
                except Exception:
                    pass
            handlers = list(self._handlers)
            if handlers:
                await asyncio.wait(handlers, timeout=1.0)
            self._pool.shutdown(wait=False)
            self._ready.clear()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown: stop accepting, finish in-flight
        work, reject new compiles as busy, then let :meth:`serve` exit.
        Safe to call more than once; must run on the server's loop."""
        if self._draining:
            return
        self._draining = True
        obs.event("serve.draining", inflight=self._inflight)
        if self._server is not None:
            self._server.close()
        if self._inflight == 0 and self._drained is not None:
            self._drained.set()

    def request_shutdown(self) -> None:
        """Thread-safe drain trigger (what tests and signal-less
        embedders call)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.initiate_drain)
            except RuntimeError:
                pass  # loop already closed: the server has exited

    def start_in_thread(self, timeout: float = 10.0) -> threading.Thread:
        """Run the server on a daemon thread; returns once it is
        listening (``self.port`` is bound).  The thread runs in a copy
        of the caller's context, so a tracer or chaos engine installed
        by the caller stays visible to the server and its pool."""
        ctx = contextvars.copy_context()
        thread = threading.Thread(
            target=ctx.run, args=(self.run,), daemon=True
        )
        thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start listening in time")
        return thread

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pending_line: Optional[bytes] = None
        task = asyncio.current_task()
        self._connections.add(writer)
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                if pending_line is not None:
                    line, pending_line = pending_line, None
                else:
                    line = await reader.readline()
                if not line:
                    break
                response, pending_line = await self._dispatch(
                    reader, line
                )
                if response is None:
                    break  # client went away mid-request
                if not await self._send(writer, response):
                    break  # chaos dropped the connection
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(
        self, reader: asyncio.StreamReader, line: bytes
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        """Handle one frame.  Returns ``(response, pipelined_line)``;
        a ``None`` response means the client disconnected."""
        self.stats.requests += 1
        obs.inc("serve.requests")
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ValueError("frame is not a JSON object")
        except Exception as exc:
            self.stats.protocol_errors += 1
            return (
                _error_response(
                    None, ProtocolError(f"bad frame: {exc}")
                ),
                None,
            )
        rid = req.get("id")
        op = req.get("op")
        if op == "ping":
            return {"id": rid, "ok": True, "op": "ping"}, None
        if op in ("health", "ready"):
            return self._health_response(rid), None
        if op == "stats":
            return (
                {
                    "id": rid,
                    "ok": True,
                    "op": "stats",
                    "stats": {
                        "server": self.stats.to_dict(),
                        "cache": self.cache.report(),
                        "pool": (
                            self._pool.health() if self._pool else {}
                        ),
                        "inflight": self._inflight,
                        "queue_limit": self.config.queue_limit,
                        "draining": self._draining,
                    },
                },
                None,
            )
        if op == "shutdown":
            self._loop.call_soon(self.initiate_drain)
            return {"id": rid, "ok": True, "op": "shutdown"}, None
        if op == "compile":
            return await self._compile_request(reader, req)
        self.stats.protocol_errors += 1
        return _error_response(rid, ProtocolError(f"unknown op {op!r}")), None

    def _health_response(self, rid) -> Dict[str, Any]:
        pool_health = self._pool.health() if self._pool else {}
        ready = (
            not self._draining
            and bool(pool_health.get("alive", 0))
        )
        return {
            "id": rid,
            "ok": True,
            "op": "health",
            "ready": ready,
            "draining": self._draining,
            "uptime": (
                round(time.monotonic() - self._started_at, 3)
                if self._started_at is not None
                else None
            ),
            "inflight": self._inflight,
            "live_compiles": len(self._live),
            "coalesced": self.stats.coalesced,
            "pool": pool_health,
        }

    async def _compile_request(
        self, reader: asyncio.StreamReader, req: Dict[str, Any]
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        rid = req.get("id")
        if self._draining or self._inflight >= self.config.queue_limit:
            self.stats.busy_rejections += 1
            obs.inc("serve.busy_rejections")
            return (
                _error_response(
                    rid,
                    ServerBusy(
                        "draining"
                        if self._draining
                        else "request queue is full",
                        inflight=self._inflight,
                        queue_limit=self.config.queue_limit,
                        draining=self._draining,
                    ),
                ),
                None,
            )
        try:
            job = _job_from_request(req)
        except Exception as exc:
            self.stats.protocol_errors += 1
            return (
                _error_response(rid, ProtocolError(f"bad request: {exc}")),
                None,
            )

        self._inflight += 1
        obs.gauge("serve.queue_depth", self._inflight)
        started = time.perf_counter()
        try:
            with obs.span("serve.request", op="compile", job=job.name):
                return await self._compile_inner(
                    reader, rid, job, started
                )
        finally:
            self._inflight -= 1
            if self._draining and self._inflight == 0:
                self._drained.set()

    async def _compile_inner(
        self,
        reader: asyncio.StreamReader,
        rid,
        job: CompileJob,
        started: float,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        key = _key_for_job(job)
        digest = key.digest if key is not None else None

        # Coalesce onto an identical in-flight compile *before* the
        # cache lookup — followers must not count an extra cache miss.
        live = self._live.get(digest) if digest is not None else None
        if live is not None:
            live.waiters += 1
            self.stats.coalesced += 1
            obs.inc("serve.coalesced")
        else:
            # Cache next: a warm key never touches the pool.
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    self.stats.compiles += 1
                    return (
                        _ok_response(
                            rid, hit, cached=True, started=started
                        ),
                        None,
                    )
            live = _LiveCompile(
                asyncio.ensure_future(self._run_pooled(job, key))
            )
            if digest is not None:
                self._live[digest] = live
                entry = live

                def _evict(_task, digest=digest, entry=entry):
                    if self._live.get(digest) is entry:
                        del self._live[digest]

                live.task.add_done_callback(_evict)

        return await self._await_compile(reader, rid, live, started)

    async def _run_pooled(
        self, job: CompileJob, key
    ) -> Tuple[str, Any]:
        """The shared computation behind one (possibly coalesced)
        compile: dispatch to the pool, await with the request timeout,
        store the result.  Runs exactly once per live digest."""
        digest = key.digest if key is not None else None
        future = self._pool.submit(job.to_dict(), key=digest)
        try:
            status, payload = await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.config.request_timeout,
            )
        finally:
            if not future.done():
                future.cancel()
        if status == "ok" and key is not None:
            self.cache.put(key, payload)
        return status, payload

    async def _await_compile(
        self,
        reader: asyncio.StreamReader,
        rid,
        live: _LiveCompile,
        started: float,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        # Each request shields the shared task: one waiter walking away
        # must not kill the compile its peers are still waiting on.
        waiter = asyncio.ensure_future(asyncio.shield(live.task))
        watcher = asyncio.ensure_future(reader.readline())
        pipelined: Optional[bytes] = None
        try:
            await asyncio.wait(
                {waiter, watcher}, return_when=asyncio.FIRST_COMPLETED
            )
            if watcher.done():
                try:
                    line = watcher.result()
                except Exception:
                    line = b""  # connection error == disconnect
                if not line and not waiter.done():
                    # Disconnect mid-request: leave the shared compile;
                    # the last waiter out turns off the lights.
                    waiter.cancel()
                    await asyncio.wait({waiter})
                    self.stats.cancelled += 1
                    obs.inc("serve.cancelled")
                    live.waiters -= 1
                    if live.waiters <= 0 and not live.task.done():
                        live.task.cancel()
                    return None, None
                pipelined = line or None
                if not waiter.done():
                    await asyncio.wait({waiter})
            else:
                # Cancellation must complete before the handler loop
                # calls readline() again, or the reader raises
                # "already waiting".
                watcher.cancel()
                await asyncio.wait({watcher})
        finally:
            if not watcher.done():
                watcher.cancel()
        live.waiters -= 1

        try:
            status, payload = waiter.result()
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            obs.inc("serve.timeouts")
            return (
                _error_response(
                    rid,
                    RequestTimeout(
                        f"compile exceeded {self.config.request_timeout}s",
                        timeout=self.config.request_timeout,
                    ),
                ),
                pipelined,
            )
        except asyncio.CancelledError:
            raise
        except (PoisonJobError, WorkerCrashError) as exc:
            self.stats.errors += 1
            obs.inc("serve.pool_failures")
            return _error_response(rid, exc), pipelined
        except ServeError as exc:
            self.stats.errors += 1
            return _error_response(rid, exc), pipelined
        except Exception as exc:  # pool infrastructure failure
            self.stats.errors += 1
            return (
                _error_response(
                    rid, ServeError(f"executor failure: {exc}")
                ),
                pipelined,
            )

        if status != "ok":
            self.stats.errors += 1
            obs.inc("serve.compile_errors")
            return (
                {
                    "id": rid,
                    "ok": False,
                    "error": {
                        "type": "RemoteCompileError",
                        "message": payload.get("message", "compile failed"),
                        "detail": payload,
                    },
                },
                pipelined,
            )
        self.stats.compiles += 1
        return (
            _ok_response(rid, payload, cached=False, started=started),
            pipelined,
        )

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> bool:
        """Write one response frame.  Returns False when a chaos rule
        dropped the connection instead (the client's retry path)."""
        chaos = active_chaos()
        if chaos is not None:
            rule = chaos.decide(
                SITE_CONN_SEND,
                op=str(payload.get("op", "compile")),
                ok=bool(payload.get("ok")),
            )
            if rule is not None:
                try:
                    writer.close()
                except Exception:
                    pass
                return False
        writer.write(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
            + b"\n"
        )
        await writer.drain()
        return True


def _job_from_request(req: Dict[str, Any]) -> CompileJob:
    """Build the job from a compile frame (full config dict, or a
    ``scheme`` preset name, or server defaults)."""
    ptx = req.get("ptx")
    if not isinstance(ptx, str) or not ptx.strip():
        raise ValueError("missing 'ptx'")
    if "config" in req:
        config = PennyConfig.from_dict(req["config"])
    elif "scheme" in req:
        from repro.core.schemes import scheme_config

        config = scheme_config(req["scheme"])
    else:
        config = PennyConfig()
    from repro.core.pipeline import LaunchConfig

    launch = LaunchConfig(**req.get("launch", {}))
    return CompileJob(
        ptx=ptx,
        config=config,
        launch=launch,
        strict=bool(req.get("strict", True)),
        name=req.get("name"),
    )


def _key_for_job(job: CompileJob):
    from repro.core.storage import StorageBudget
    from repro.ir.parser import parse_module

    try:
        module = parse_module(job.ptx)
    except Exception:
        return None  # the worker will fail the job with a typed error
    if len(module.kernels) != 1:
        return None
    return compile_cache_key(
        module.kernels[0],
        job.config,
        launch=job.launch,
        budget=StorageBudget(),
        strict=job.strict,
    )


def _ok_response(
    rid, result, cached: bool, started: float
) -> Dict[str, Any]:
    return {
        "id": rid,
        "ok": True,
        "cached": cached,
        "kernel": print_kernel(result.kernel),
        "result": result.to_dict(),
        "summary": result.summary(),
        "seconds": round(time.perf_counter() - started, 6),
    }


def _error_response(rid, error: ServeError) -> Dict[str, Any]:
    return {"id": rid, "ok": False, "error": error.to_dict()}
