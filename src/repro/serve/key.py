"""Content-addressed cache keys for compilations.

A compilation is a pure function of four inputs, and the key hashes
exactly those — nothing environmental:

1. the **canonical kernel text** (:func:`repro.ir.printer.print_kernel`
   of the input, so whitespace/comment variants of the same program
   share an entry);
2. the **canonical configuration** — ``PennyConfig.to_dict()`` plus the
   launch geometry, storage budget and strictness, JSON-serialized with
   sorted keys (two equal configs always serialize identically);
3. the **code-version fingerprint** — a SHA-256 over every ``repro``
   source file, so editing any compiler pass invalidates the whole
   cache rather than serving results from a different compiler;
4. a **key-schema version**, bumped when the key derivation itself
   changes.

The combined digest addresses both cache tiers (the disk tier's
filenames are the digest), which makes invalidation trivial: there is
none.  A stale entry is simply never looked up again, and ``penny cache
gc`` reclaims the bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.ir.printer import print_kernel

#: bump when the key derivation (not the compiler) changes shape
KEY_SCHEMA_VERSION = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; any edit to the compiler, simulator or
    serving code changes it, so cached results can never outlive the
    code that produced them.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            digest.update(rel.encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as f:
                digest.update(f.read())
            digest.update(b"\0")
    return digest.hexdigest()


def canonical_config_json(
    config,
    launch=None,
    budget=None,
    strict: bool = True,
) -> str:
    """The configuration half of the key: one sorted-key JSON document
    covering everything besides the kernel that steers compilation."""
    payload: Dict[str, Any] = {"config": config.to_dict(), "strict": bool(strict)}
    if launch is not None:
        payload["launch"] = {
            "threads_per_block": launch.threads_per_block,
            "num_blocks": launch.num_blocks,
        }
    if budget is not None:
        payload["budget"] = dataclasses.asdict(budget)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CacheKey:
    """The content address of one compilation."""

    ptx_sha: str
    config_sha: str
    code_sha: str
    schema: int = KEY_SCHEMA_VERSION

    @property
    def digest(self) -> str:
        """The combined address (disk filenames, memory-tier dict key)."""
        return _sha256(
            f"{self.schema}\0{self.ptx_sha}\0{self.config_sha}\0{self.code_sha}"
        )

    def to_dict(self) -> Dict[str, str]:
        return {
            "digest": self.digest,
            "ptx_sha": self.ptx_sha,
            "config_sha": self.config_sha,
            "code_sha": self.code_sha,
            "schema": str(self.schema),
        }


def compile_cache_key(
    kernel,
    config,
    launch=None,
    budget=None,
    strict: bool = True,
    code_sha: Optional[str] = None,
) -> CacheKey:
    """Derive the :class:`CacheKey` for compiling ``kernel`` under
    ``config`` (+ launch geometry, storage budget, strictness)."""
    return CacheKey(
        ptx_sha=_sha256(print_kernel(kernel)),
        config_sha=_sha256(
            canonical_config_json(
                config, launch=launch, budget=budget, strict=strict
            )
        ),
        code_sha=code_sha if code_sha is not None else code_fingerprint(),
    )
