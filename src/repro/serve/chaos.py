"""Service-level fault injection: seeded, plan-driven chaos for the farm.

The simulated register file gets systematic fault injection
(:mod:`repro.gpusim.faults` / :mod:`repro.gpusim.campaign`); the serving
stack that *hosts* those experiments historically did not.  This module
closes the gap with the same design vocabulary:

- a **plan** (:class:`ChaosPlan`) is pure data — a seed plus a list of
  :class:`ChaosRule`\\ s, each naming a fault *kind*, a probability, an
  optional injection budget and a warm-up count — serializable, parseable
  from a compact CLI spec, and reproducible;
- an **engine** (:class:`ChaosEngine`) is installed for a dynamic scope
  exactly like :func:`repro.serve.cache.active_cache` (a context var), and
  every instrumented *site* in the serving stack asks
  ``active_chaos()``/:meth:`ChaosEngine.decide` whether to inject;
- decisions are **deterministic**: each rule draws from its own
  ``random.Random`` seeded by SHA-256 of ``(plan seed, kind)`` and indexed
  by the site's decision counter, so the same plan replayed over the same
  sequence of site visits injects the identical fault sequence — the
  property the campaign engine's ``stable_seed`` provides per injection
  index;
- when **no engine is installed the stack is untouched**: every site is
  one ``ContextVar.get`` plus a ``None`` check (the :mod:`repro.obs`
  no-op discipline), and a no-chaos run is byte-identical to a plain run.

Fault kinds and the sites that honor them:

=====================  ==================  =====================================
kind                   site                effect
=====================  ==================  =====================================
``worker.kill``        ``worker.job``      worker process SIGKILLed mid-job
                                           (thread workers die silently)
``worker.hang``        ``worker.job``      the job blocks for ``delay_s``
                                           seconds (timeout/reclaim path)
``cache.enospc``       ``cache.store``     the disk tier raises ``ENOSPC``
                                           mid-write (temp-file cleanup path)
``cache.torn``         ``cache.store``     a truncated payload is published
                                           (simulated non-atomic filesystem)
``cache.slow_store``   ``cache.store``     the write stalls for ``delay_s``
``cache.corrupt``      ``cache.read``      the on-disk entry is garbled before
                                           the read (self-healing path)
``cache.truncate``     ``cache.read``      the on-disk entry is truncated
                                           before the read
``cache.slow_read``    ``cache.read``      the read stalls for ``delay_s``
``conn.drop``          ``conn.send``       the response is dropped and the
                                           connection closed (client retry)
=====================  ==================  =====================================

Campaign-side kinds (honored by the shared :mod:`repro.runtime.pool`
when driven by the injection campaign or the fuzz harness, and by the
campaign journal):

==========================  ===================  ============================
kind                        site                 effect
==========================  ===================  ============================
``campaign.worker.kill``    ``campaign.worker``  a sweep worker is SIGKILLed
                                                 mid-task (retry/quarantine)
``campaign.worker.hang``    ``campaign.worker``  the task stalls ``delay_s``
                                                 seconds (wall-clock reclaim)
``journal.torn``            ``journal.write``    a journal record is cut mid-
                                                 line (fsck / repair path)
``journal.enospc``          ``journal.write``    the journal write raises
                                                 ``ENOSPC`` (record kept
                                                 in memory, repaired at end)
==========================  ===================  ============================

Quickstart::

    from repro.serve.chaos import ChaosPlan, ChaosEngine

    plan = ChaosPlan.parse("worker.kill:p=0.25:max=3,cache.corrupt:p=0.5",
                           seed=7)
    with ChaosEngine(plan) as chaos:
        ...  # run the server / cache / pool under fault pressure
    print(chaos.report())   # what fired, where, in order

or from the shell: ``penny serve --chaos "worker.kill:p=0.25" --chaos-seed 7``.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro.obs as obs

_ACTIVE: ContextVar[Optional["ChaosEngine"]] = ContextVar(
    "repro_serve_chaos", default=None
)

# -- sites and kinds -------------------------------------------------------------

SITE_WORKER_JOB = "worker.job"
SITE_CACHE_STORE = "cache.store"
SITE_CACHE_READ = "cache.read"
SITE_CONN_SEND = "conn.send"
SITE_CAMPAIGN_WORKER = "campaign.worker"
SITE_JOURNAL_WRITE = "journal.write"

#: kind -> (site, worker-directive action or None)
KINDS: Dict[str, str] = {
    "worker.kill": SITE_WORKER_JOB,
    "worker.hang": SITE_WORKER_JOB,
    "cache.enospc": SITE_CACHE_STORE,
    "cache.torn": SITE_CACHE_STORE,
    "cache.slow_store": SITE_CACHE_STORE,
    "cache.corrupt": SITE_CACHE_READ,
    "cache.truncate": SITE_CACHE_READ,
    "cache.slow_read": SITE_CACHE_READ,
    "conn.drop": SITE_CONN_SEND,
    "campaign.worker.kill": SITE_CAMPAIGN_WORKER,
    "campaign.worker.hang": SITE_CAMPAIGN_WORKER,
    "journal.torn": SITE_JOURNAL_WRITE,
    "journal.enospc": SITE_JOURNAL_WRITE,
}

#: default stall for the hang/slow kinds (seconds)
DEFAULT_HANG_SECONDS = 30.0


def active_chaos() -> Optional["ChaosEngine"]:
    """The chaos engine installed for this context, or ``None`` (the
    fast path every instrumented site takes in production)."""
    return _ACTIVE.get()


@dataclass(frozen=True)
class ChaosRule:
    """One fault kind under pressure.

    ``probability`` is evaluated per *decision* (each visit to the kind's
    site), ``max_injections`` bounds how often the rule may fire over the
    engine's lifetime (``None`` = unbounded), ``after`` skips the first N
    decisions at the site (warm-up), and ``delay_s`` parameterizes the
    hang/slow kinds.
    """

    kind: str
    probability: float = 1.0
    max_injections: Optional[int] = None
    after: int = 0
    #: None -> action default: stall-shaped actions (hang, slow_*) get
    #: DEFAULT_HANG_SECONDS, everything else (kill, torn, ...) fires
    #: immediately.  A ``worker.kill:delay=5`` still dies mid-job.
    delay_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r} "
                f"(known: {', '.join(sorted(KINDS))})"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.max_injections is not None and self.max_injections < 0:
            raise ValueError("max_injections must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay_s is None:
            stalls = self.action in ("hang", "slow_store", "slow_read")
            object.__setattr__(
                self,
                "delay_s",
                DEFAULT_HANG_SECONDS if stalls else 0.0,
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    @property
    def site(self) -> str:
        return KINDS[self.kind]

    @property
    def action(self) -> str:
        """The site-local action name (the part after the *last* dot:
        ``campaign.worker.kill`` -> ``kill``, ``journal.torn`` ->
        ``torn``)."""
        return self.kind.rsplit(".", 1)[1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "probability": self.probability,
            "max_injections": self.max_injections,
            "after": self.after,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChaosRule":
        return cls(
            kind=d["kind"],
            probability=float(d.get("probability", 1.0)),
            max_injections=d.get("max_injections"),
            after=int(d.get("after", 0)),
            delay_s=(
                None
                if d.get("delay_s") is None
                else float(d["delay_s"])
            ),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A seed plus the rules — everything a chaos run is defined by."""

    rules: Tuple[ChaosRule, ...] = ()
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "chaos_plan",
            "seed": self.seed,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            rules=tuple(
                ChaosRule.from_dict(r) for r in d.get("rules", ())
            ),
            seed=int(d.get("seed", 0)),
        )

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        """Build a plan from the compact CLI form.

        ``spec`` is comma-separated rules; each rule is a kind followed by
        optional ``:key=value`` knobs (``p``/``probability``, ``max``,
        ``after``, ``delay``)::

            worker.kill:p=0.25:max=3,cache.corrupt:p=0.5,worker.hang:delay=2

        A spec starting with ``@`` names a JSON file holding the
        :meth:`to_dict` form (the seed argument still wins if the file
        omits one).
        """
        spec = spec.strip()
        if spec.startswith("@"):
            with open(spec[1:]) as f:
                d = json.load(f)
            d.setdefault("seed", seed)
            return cls.from_dict(d)
        rules: List[ChaosRule] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            kind = fields[0].strip()
            kwargs: Dict[str, Any] = {"kind": kind}
            for knob in fields[1:]:
                if "=" not in knob:
                    raise ValueError(
                        f"bad chaos knob {knob!r} in {part!r} "
                        "(expected key=value)"
                    )
                key, _, value = knob.partition("=")
                key = key.strip()
                if key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key == "max":
                    kwargs["max_injections"] = int(value)
                elif key == "after":
                    kwargs["after"] = int(value)
                elif key in ("delay", "delay_s"):
                    kwargs["delay_s"] = float(value)
                else:
                    raise ValueError(
                        f"unknown chaos knob {key!r} in {part!r}"
                    )
            rules.append(ChaosRule(**kwargs))
        if not rules:
            raise ValueError("empty chaos spec")
        return cls(rules=tuple(rules), seed=seed)


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault (the engine's append-only log)."""

    kind: str
    site: str
    index: int  #: the site's decision counter when this fired
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "site": self.site,
            "index": self.index,
            "context": dict(self.context),
        }


def _rule_seed(plan_seed: int, kind: str) -> int:
    """Deterministic per-rule RNG seed (mirrors ``campaign.stable_seed``:
    SHA-256, so it is stable across processes and ``PYTHONHASHSEED``)."""
    digest = hashlib.sha256(f"{plan_seed}:{kind}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class ChaosEngine:
    """Evaluates a :class:`ChaosPlan` at the serving stack's fault sites.

    Install it for a dynamic scope (``with ChaosEngine(plan):``) the same
    way a :class:`repro.serve.cache.CompileCache` or
    :class:`repro.obs.Tracer` is installed.  Thread-safe: the server's
    event loop, the pool supervisor and test drivers may all call
    :meth:`decide` concurrently; each *site's* decision sequence is
    deterministic in its own visit order.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.injected: List[ChaosEvent] = []
        self._lock = threading.Lock()
        self._site_counts: Dict[str, int] = {}
        self._fired: Dict[str, int] = {r.kind: 0 for r in plan.rules}
        self._rngs: Dict[str, random.Random] = {
            r.kind: random.Random(_rule_seed(plan.seed, r.kind))
            for r in plan.rules
        }
        self._by_site: Dict[str, List[ChaosRule]] = {}
        for rule in plan.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._token = None

    # -- installation ----------------------------------------------------------

    def __enter__(self) -> "ChaosEngine":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False

    # -- the decision point ----------------------------------------------------

    def decide(self, site: str, **context: Any) -> Optional[ChaosRule]:
        """One visit to ``site``: returns the rule to apply, or ``None``.

        At most one rule fires per visit (plan order wins); every rule
        matching the site consumes one draw from its own RNG either way,
        so a rule's fire/skip sequence depends only on the number of
        prior visits — never on which *other* rules exist or fired.
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            index = self._site_counts.get(site, 0)
            self._site_counts[site] = index + 1
            chosen: Optional[ChaosRule] = None
            for rule in rules:
                draw = self._rngs[rule.kind].random()
                if chosen is not None:
                    continue
                if index < rule.after:
                    continue
                if (
                    rule.max_injections is not None
                    and self._fired[rule.kind] >= rule.max_injections
                ):
                    continue
                if draw < rule.probability:
                    self._fired[rule.kind] += 1
                    chosen = rule
            if chosen is not None:
                self.injected.append(
                    ChaosEvent(
                        kind=chosen.kind,
                        site=site,
                        index=index,
                        context=context,
                    )
                )
        if chosen is not None:
            obs.inc("chaos.injected")
            obs.inc(f"chaos.injected.{chosen.kind}")
            obs.event("chaos.inject", kind=chosen.kind, site=site, **context)
        return chosen

    # -- reporting -------------------------------------------------------------

    def injected_counts(self) -> Dict[str, int]:
        """Injections so far, by kind (only kinds that fired)."""
        with self._lock:
            return {k: n for k, n in sorted(self._fired.items()) if n}

    def report(self) -> Dict[str, Any]:
        """The run's injection log + per-kind totals (``Reportable``
        shape, ``kind='chaos_report'``)."""
        with self._lock:
            events = [e.to_dict() for e in self.injected]
            fired = {k: n for k, n in sorted(self._fired.items()) if n}
            visits = dict(sorted(self._site_counts.items()))
        return {
            "kind": "chaos_report",
            "plan": self.plan.to_dict(),
            "injections": len(events),
            "by_kind": fired,
            "site_visits": visits,
            "events": events,
        }

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            total = len(self.injected)
            fired = {k: n for k, n in sorted(self._fired.items()) if n}
        return {"injections": total, "by_kind": fired}
