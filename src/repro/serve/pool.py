"""The serving layer's view of the supervised worker pool.

The pool itself — generation-tagged per-slot queues, heartbeat +
busy-deadline liveness, exponential-backoff restarts, per-key crash
strikes with quarantine — lives in :mod:`repro.runtime.pool`, where the
fault-injection campaign engine and the fuzz harness share it.  This
module binds it to the compile farm:

- the default ``runner`` is the server's request executor (resolved
  lazily inside the worker, so thread-mode tests can monkeypatch
  ``repro.serve.server._execute_request``);
- chaos dispatches consult the ``worker.job`` site
  (:data:`repro.serve.chaos.SITE_WORKER_JOB`), keeping the serving
  fault plan addressable separately from campaign-side chaos;
- crash and quarantine failures raise the serving layer's
  wire-serializable :class:`~repro.serve.errors.WorkerCrashError` /
  :class:`~repro.serve.errors.PoisonJobError` (which subclass the
  runtime's base types, so generic ``except`` clauses see both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.pool import PoolMetrics
from repro.runtime.pool import PoolConfig as _RuntimePoolConfig
from repro.runtime.pool import WorkerPool as _RuntimeWorkerPool
from repro.serve.chaos import SITE_WORKER_JOB
from repro.serve.errors import PoisonJobError, WorkerCrashError

#: default runner — resolved lazily inside the worker, so thread-mode
#: tests can monkeypatch ``repro.serve.server._execute_request``
DEFAULT_RUNNER = "repro.serve.server:_execute_request"

__all__ = ["DEFAULT_RUNNER", "PoolConfig", "PoolMetrics", "WorkerPool"]


@dataclass
class PoolConfig(_RuntimePoolConfig):
    """Supervision knobs for the compile farm's :class:`WorkerPool`."""

    runner: str = DEFAULT_RUNNER
    chaos_site: str = SITE_WORKER_JOB
    crash_error: type = WorkerCrashError
    poison_error: type = PoisonJobError


class WorkerPool(_RuntimeWorkerPool):
    """Supervised compile worker pool (serve-flavored defaults)."""

    def __init__(self, config: Optional[PoolConfig] = None):
        super().__init__(config or PoolConfig())
