"""The blocking compile client: ``penny client``.

A plain-socket JSONL client for :class:`repro.serve.server.CompileServer`
with the retry discipline a fleet client needs: transient failures
(connection refused/reset, and :class:`ServerBusy` backpressure
rejections) are retried with **exponential backoff plus jitter** —
``delay = min(cap, base * 2^attempt) * (1 + jitter * U[0,1))`` — so a
thundering herd of rejected clients decorrelates instead of
re-stampeding the queue.  Deterministic tests inject their own ``rng``
and ``sleep``.

Non-transient failures surface as typed exceptions immediately:
:class:`RemoteCompileError` for a typed compiler failure on the server
(its serialized :class:`~repro.core.errors.CompileError` rides in
``detail``), :class:`RequestTimeout`/:class:`ProtocolError` as
themselves, and :class:`ServerUnavailable` once the retry budget is
spent.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.serve.errors import (
    ProtocolError,
    ServeError,
    ServerBusy,
    ServerUnavailable,
    error_from_dict,
)

#: the default serving port (an arbitrary registered-range pick)
DEFAULT_PORT = 9779


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff discipline for transient failures."""

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    retry_busy: bool = True

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return backoff * (1.0 + self.jitter * rng.random())


class CompileClient:
    """One connection-per-request blocking client (context manager is
    optional; there is no persistent state beyond configuration)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._rng = rng or random.Random()
        self._sleep = sleep

    # -- the wire --------------------------------------------------------------

    def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange on a fresh connection."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(
                json.dumps(payload, default=str).encode("utf-8") + b"\n"
            )
            with sock.makefile("rb") as f:
                line = f.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ValueError("response is not a JSON object")
        except Exception as exc:
            raise ProtocolError(f"bad response frame: {exc}") from exc
        return response

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op with retry+backoff; returns the ``ok`` response
        object, raises a typed :class:`ServeError` otherwise."""
        payload = {"op": op, "id": fields.pop("id", None), **fields}
        failures = []
        for attempt in range(self.retry.attempts):
            if attempt:
                self._sleep(self.retry.delay(attempt - 1, self._rng))
            try:
                response = self._roundtrip(payload)
            except (ConnectionError, socket.timeout, OSError) as exc:
                failures.append(f"{type(exc).__name__}: {exc}")
                continue
            if response.get("ok"):
                return response
            error = error_from_dict(response.get("error"))
            if isinstance(error, ServerBusy) and self.retry.retry_busy:
                failures.append("ServerBusy")
                continue
            raise error
        raise ServerUnavailable(
            f"no response from {self.host}:{self.port} after "
            f"{self.retry.attempts} attempt(s)",
            attempts=failures,
        )

    # -- convenience ops -------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown(self) -> bool:
        return bool(self.request("shutdown").get("ok"))

    def compile(
        self,
        ptx: str,
        config=None,
        scheme: Optional[str] = None,
        launch: Optional[Dict[str, int]] = None,
        strict: bool = True,
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Compile one kernel's text remotely.  ``config`` is a
        :class:`~repro.core.pipeline.PennyConfig` (or its dict form);
        ``scheme`` names a preset instead.  Returns the response object
        (``kernel`` text, ``result`` dict, ``cached`` flag)."""
        fields: Dict[str, Any] = {
            "ptx": ptx,
            "strict": strict,
        }
        if config is not None:
            fields["config"] = (
                config if isinstance(config, dict) else config.to_dict()
            )
        elif scheme is not None:
            fields["scheme"] = scheme
        if launch is not None:
            fields["launch"] = launch
        if name is not None:
            fields["name"] = name
        return self.request("compile", **fields)


def wait_until_ready(
    host: str,
    port: int,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll ``ping`` until the server answers (startup helper for
    scripts and CI); returns whether it became ready in time."""
    client = CompileClient(
        host=host,
        port=port,
        timeout=min(timeout, 2.0),
        retry=RetryPolicy(attempts=1),
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.ping():
                return True
        except ServeError:
            pass
        time.sleep(interval)
    return False
