"""The blocking compile client: ``penny client``.

A plain-socket JSONL client for :class:`repro.serve.server.CompileServer`
with the retry discipline a fleet client needs: transient failures
(connection refused/reset, and :class:`ServerBusy` backpressure
rejections) are retried with **exponential backoff plus jitter** —
``delay = min(cap, base * 2^attempt) * (1 + jitter * U[0,1))`` — so a
thundering herd of rejected clients decorrelates instead of
re-stampeding the queue.  Deterministic tests inject their own ``rng``
and ``sleep``.

The retry budget is bounded two ways: by **attempts** and by a
wall-clock **deadline** (``RetryPolicy.deadline``) — a client under a
latency SLO stops retrying when another backoff sleep would blow the
budget, not after a fixed count whose worst case nobody computed.  The
final :class:`ServerUnavailable` carries the full post-mortem:
``attempts`` (per-attempt cause strings), structured ``causes``,
``elapsed``, and whether the deadline was the binding constraint.

Layered above retry sits an optional **circuit breaker**
(:class:`CircuitBreaker`): a shared-by-reference failure tracker that
trips open after ``failure_threshold`` consecutive *transport* failures,
fails calls fast with :class:`CircuitOpen` while open, and lets one
probe through after ``reset_timeout`` (half-open) to test recovery.
Only transport-level failures count — a typed compile error or a
``ServerBusy`` rejection proves the server is alive.

Non-transient failures surface as typed exceptions immediately:
:class:`RemoteCompileError` for a typed compiler failure on the server
(its serialized :class:`~repro.core.errors.CompileError` rides in
``detail``), :class:`RequestTimeout`/:class:`ProtocolError` as
themselves, and :class:`ServerUnavailable` once the retry budget is
spent.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.serve.errors import (
    CircuitOpen,
    ProtocolError,
    ServeError,
    ServerBusy,
    ServerUnavailable,
    error_from_dict,
)

#: the default serving port (an arbitrary registered-range pick)
DEFAULT_PORT = 9779


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff discipline for transient failures.

    ``attempts`` bounds the try count; ``deadline`` (seconds of total
    elapsed time, ``None`` = unbounded) bounds worst-case latency — the
    loop gives up *before* a backoff sleep that would cross it.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    retry_busy: bool = True
    deadline: Optional[float] = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return backoff * (1.0 + self.jitter * rng.random())


# -- the circuit breaker -----------------------------------------------------------

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-transport-failure breaker (share one per server
    endpoint across clients/threads).

    closed → open after ``failure_threshold`` consecutive transport
    failures; open → half-open after ``reset_timeout`` seconds (exactly
    one probe is let through); half-open → closed on success, back to
    open on failure.  Thread-safe; uses the monotonic clock.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  In half-open, admits exactly
        one probe at a time."""
        with self._lock:
            if self._state == _CLOSED:
                return True
            now = self._clock()
            if (
                self._state == _OPEN
                and self._opened_at is not None
                and now - self._opened_at >= self.reset_timeout
            ):
                self._state = _HALF_OPEN
                self._probing = False
            if self._state == _HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = _CLOSED
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == _HALF_OPEN or (
                self._failures >= self.failure_threshold
            ):
                self._state = _OPEN
                self._opened_at = self._clock()
                self._probing = False

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            retry_in = None
            if self._state == _OPEN and self._opened_at is not None:
                retry_in = max(
                    0.0,
                    self.reset_timeout - (self._clock() - self._opened_at),
                )
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "retry_in": retry_in,
            }


class CompileClient:
    """One connection-per-request blocking client (context manager is
    optional; there is no persistent state beyond configuration and the
    optionally shared :class:`CircuitBreaker`)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self._rng = rng or random.Random()
        self._sleep = sleep

    # -- the wire --------------------------------------------------------------

    def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange on a fresh connection."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(
                json.dumps(payload, default=str).encode("utf-8") + b"\n"
            )
            with sock.makefile("rb") as f:
                line = f.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ValueError("response is not a JSON object")
        except Exception as exc:
            raise ProtocolError(f"bad response frame: {exc}") from exc
        return response

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op with retry+backoff; returns the ``ok`` response
        object, raises a typed :class:`ServeError` otherwise."""
        payload = {"op": op, "id": fields.pop("id", None), **fields}
        failures: List[str] = []
        causes: List[Dict[str, Any]] = []
        started = time.monotonic()
        deadline = self.retry.deadline
        deadline_exceeded = False
        attempt = 0
        while attempt < self.retry.attempts:
            if attempt:
                pause = self.retry.delay(attempt - 1, self._rng)
                if (
                    deadline is not None
                    and time.monotonic() - started + pause > deadline
                ):
                    deadline_exceeded = True
                    break
                self._sleep(pause)
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpen(
                    f"circuit open for {self.host}:{self.port}",
                    breaker=self.breaker.snapshot(),
                    attempts=failures,
                )
            attempt += 1
            attempt_started = time.monotonic()
            try:
                response = self._roundtrip(payload)
            except (ConnectionError, socket.timeout, OSError) as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                failures.append(f"{type(exc).__name__}: {exc}")
                causes.append(
                    {
                        "attempt": attempt,
                        "kind": "transport",
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "seconds": round(
                            time.monotonic() - attempt_started, 6
                        ),
                    }
                )
                continue
            # Any parsed response proves the server is alive, whatever
            # it says: the breaker is about transport, not semantics.
            if self.breaker is not None:
                self.breaker.record_success()
            if response.get("ok"):
                return response
            error = error_from_dict(response.get("error"))
            if isinstance(error, ServerBusy) and self.retry.retry_busy:
                failures.append("ServerBusy")
                causes.append(
                    {
                        "attempt": attempt,
                        "kind": "busy",
                        "type": "ServerBusy",
                        "message": error.message,
                        "seconds": round(
                            time.monotonic() - attempt_started, 6
                        ),
                    }
                )
                continue
            raise error
        elapsed = time.monotonic() - started
        raise ServerUnavailable(
            f"no response from {self.host}:{self.port} after "
            f"{attempt} attempt(s)"
            + (
                f" ({elapsed:.2f}s elapsed, deadline {deadline}s)"
                if deadline_exceeded
                else ""
            ),
            attempts=failures,
            causes=causes,
            attempt_count=attempt,
            elapsed=round(elapsed, 6),
            deadline=deadline,
            deadline_exceeded=deadline_exceeded,
        )

    # -- convenience ops -------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("ok"))

    def health(self) -> Dict[str, Any]:
        """The server's readiness + supervision snapshot."""
        return self.request("health")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown(self) -> bool:
        return bool(self.request("shutdown").get("ok"))

    def compile(
        self,
        ptx: str,
        config=None,
        scheme: Optional[str] = None,
        launch: Optional[Dict[str, int]] = None,
        strict: bool = True,
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Compile one kernel's text remotely.  ``config`` is a
        :class:`~repro.core.pipeline.PennyConfig` (or its dict form);
        ``scheme`` names a preset instead.  Returns the response object
        (``kernel`` text, ``result`` dict, ``cached`` flag)."""
        fields: Dict[str, Any] = {
            "ptx": ptx,
            "strict": strict,
        }
        if config is not None:
            fields["config"] = (
                config if isinstance(config, dict) else config.to_dict()
            )
        elif scheme is not None:
            fields["scheme"] = scheme
        if launch is not None:
            fields["launch"] = launch
        if name is not None:
            fields["name"] = name
        return self.request("compile", **fields)


def wait_until_ready(
    host: str,
    port: int,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll ``ping`` until the server answers (startup helper for
    scripts and CI); returns whether it became ready in time."""
    client = CompileClient(
        host=host,
        port=port,
        timeout=min(timeout, 2.0),
        retry=RetryPolicy(attempts=1),
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.ping():
                return True
        except ServeError:
            pass
        time.sleep(interval)
    return False
