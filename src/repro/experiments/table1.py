"""Table 1: storage cost of conventional ECC vs Penny per error magnitude."""

from __future__ import annotations

from typing import List

from repro.coding.schemes import format_storage_cost_table, storage_cost_table

#: the paper's numbers, for EXPERIMENTS.md comparison
PAPER_TABLE1 = {
    1: ("SECDED", 39, 0.219, "Parity", 33, 0.031),
    2: ("DECTED", 55, 0.719, "Hamming", 38, 0.188),
    3: ("TECQED", 60, 0.875, "SECDED", 39, 0.219),
}


def run() -> List[dict]:
    return storage_cost_table()


def verify() -> bool:
    """True when every generated row matches the paper's."""
    for row in run():
        ecc_name, ecc_n, ecc_oh, p_name, p_n, p_oh = PAPER_TABLE1[
            row["error_bits"]
        ]
        if (
            row["ecc_coding"] != ecc_name
            or row["ecc_n"] != ecc_n
            or abs(row["ecc_overhead"] - ecc_oh) > 0.001
            or row["penny_coding"] != p_name
            or row["penny_n"] != p_n
            or abs(row["penny_overhead"] - p_oh) > 0.001
        ):
            return False
    return True


def main() -> None:
    print(format_storage_cost_table())
    print()
    print("matches paper:", verify())


if __name__ == "__main__":
    main()
