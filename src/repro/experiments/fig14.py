"""Figure 14: register-file energy, SECDED-ECC vs Penny (parity).

RF energy = RF accesses x per-access energy under the bank's coding.  The
ECC bar keeps the baseline access stream; Penny's bar uses the transformed
kernel's (slightly larger) access stream with the cheap parity bank.  Both
are normalized to the unprotected baseline.  The paper reports ECC ~22.4%
and Penny ~7.0% over baseline on average."""

from __future__ import annotations

from typing import List

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim.backend import make_executor
from repro.gpusim.energy import rf_energy


def run(benchmarks=None) -> List[dict]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    rows = []
    for bench in benches:
        wl = bench.workload()
        mem = wl.make_memory()
        base_exec = make_executor(
            bench.fresh_kernel(), rf_code_factory=lambda: None
        ).run(wl.launch, mem)
        base = rf_energy(base_exec, "None").total_pj
        ecc = rf_energy(base_exec, "SECDED").total_pj

        compiled = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), wl.launch_config
        )
        mem2 = wl.make_memory()
        penny_exec = make_executor(
            compiled.kernel, rf_code_factory=lambda: None
        ).run(wl.launch, mem2)
        penny = rf_energy(penny_exec, "Parity").total_pj

        rows.append(
            {
                "abbr": bench.abbr,
                "baseline_pj": base,
                "ecc_norm": ecc / base,
                "penny_norm": penny / base,
            }
        )
    return rows


def main() -> None:
    rows = run()
    print("Fig. 14 — RF energy normalized to unprotected baseline")
    print()
    print(f"{'bench':8}{'ECC':>10}{'Penny':>10}")
    for r in rows:
        print(f"{r['abbr']:8}{r['ecc_norm']:>10.3f}{r['penny_norm']:>10.3f}")
    avg_ecc = sum(r["ecc_norm"] for r in rows) / len(rows)
    avg_penny = sum(r["penny_norm"] for r in rows) / len(rows)
    print()
    print(
        f"avg: ECC {avg_ecc:.3f} (paper ~1.224), "
        f"Penny {avg_penny:.3f} (paper ~1.070)"
    )


if __name__ == "__main__":
    main()
