"""Figure 15: the Fig. 9 comparison on the Volta-class Titan V (§7.8).

The paper could only run 19 of the 25 applications on the experimental
Volta GPGPU-Sim; the same subset is used here.  The expected result is the
same ordering and similar magnitudes as Fermi (Penny ~3.6%)."""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.experiments.harness import (
    SCHEMES_FIG9,
    format_overhead_table,
    normalized_overheads,
)
from repro.gpusim.config import VOLTA_TITAN_V

#: the 19 applications shown in the paper's Fig. 15
VOLTA_APPS = (
    "CP", "NN", "NQU", "SGEMM", "SPMV", "TPACF", "BP", "BFS", "GAU",
    "HS", "PF", "SRAD", "SC", "BS", "BO", "CS", "FW", "SP", "MT",
)


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    if benchmarks is None:
        benchmarks = [ALL_BENCHMARKS[a] for a in VOLTA_APPS]
    return normalized_overheads(benchmarks, SCHEMES_FIG9, gpu=VOLTA_TITAN_V)


def main() -> None:
    table = run()
    print(
        format_overhead_table(
            table, "Fig. 15 — fault-free overhead on Titan V (Volta)"
        )
    )
    print()
    ordering = (
        table["Penny"]["gmean"]
        < table["Bolt/Auto_storage"]["gmean"]
        < table["Bolt/Global"]["gmean"]
    )
    print("same ordering as Fermi (paper's conclusion):", ordering)


if __name__ == "__main__":
    main()
