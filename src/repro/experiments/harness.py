"""Shared measurement machinery for the evaluation experiments.

A *measurement* of (benchmark, scheme) is: build the kernel, apply the
scheme's transformation, execute the workload functionally on the
simulator, and feed the dynamic counts + resource usage into the analytic
timing model.  Overheads are normalized against the unmodified baseline,
exactly like the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.bench.suite import Benchmark, Workload
from repro.core.pipeline import CompileResult, PennyCompiler, PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_IGPU,
    SCHEME_PENNY,
    igpu_transform,
    scheme_config,
)
from repro.gpusim.config import FERMI_C2050, GpuConfig
from repro.gpusim.backend import make_executor
from repro.gpusim.executor import ExecutionResult
from repro.gpusim.timing import TimingModel, TimingReport
from repro.ir.module import Kernel
from repro.regalloc import count_registers

#: the Fig. 9 / Fig. 15 comparison set, in plotting order
SCHEMES_FIG9 = (
    SCHEME_IGPU,
    SCHEME_BOLT_GLOBAL,
    SCHEME_BOLT_AUTO,
    SCHEME_PENNY,
)


def compile_cache(directory: Optional[str] = None):
    """A compile-cache context for experiment sweeps.

    Many artifacts re-compile the same (benchmark, scheme) pairs —
    fig9/fig15 share every variant, fig10–fig14 each re-derive the Penny
    configs — so installing one :class:`repro.serve.CompileCache` around
    a sweep turns all repeats into hits.  ``measure_scheme`` needs no
    changes: :class:`PennyCompiler` consults the context cache on every
    ``compile()``.

    ``directory=None`` honors ``$PENNY_CACHE_DIR`` when set (warm cache
    across runs, e.g. in CI) and otherwise stays memory-only so a plain
    ``python -m repro.experiments`` leaves no files behind.
    """
    import os

    from repro.serve.cache import CompileCache

    if directory is None:
        directory = os.environ.get("PENNY_CACHE_DIR") or None
    return CompileCache(directory=directory)


@dataclass
class BenchmarkMeasurement:
    """One (benchmark, scheme) data point."""

    abbr: str
    scheme: str
    cycles: float
    normalized: float  # vs the unprotected baseline
    timing: TimingReport
    execution: ExecutionResult
    compile_result: Optional[CompileResult] = None
    extra: Dict[str, float] = field(default_factory=dict)


def _kernel_shared_bytes(kernel: Kernel) -> int:
    return sum(4 * d.num_words for d in kernel.shared)


def _measure_kernel(
    kernel: Kernel,
    workload: Workload,
    gpu: GpuConfig,
    regs_override: Optional[int] = None,
) -> Tuple[float, TimingReport, ExecutionResult]:
    mem = workload.make_memory()
    execution = make_executor(kernel, rf_code_factory=lambda: None).run(
        workload.launch, mem
    )
    regs = regs_override if regs_override is not None else count_registers(kernel)
    timing = TimingModel(gpu).estimate(
        execution,
        threads_per_block=workload.block,
        num_blocks=workload.grid,
        regs_per_thread=regs,
        shared_per_block=_kernel_shared_bytes(kernel),
    )
    return timing.cycles, timing, execution


def measure_baseline(
    bench: Benchmark, gpu: GpuConfig = FERMI_C2050
) -> BenchmarkMeasurement:
    """The unmodified program ("original program with no modification")."""
    with obs.span("measure.baseline", benchmark=bench.abbr):
        workload = bench.workload()
        kernel = bench.fresh_kernel()
        cycles, timing, execution = _measure_kernel(kernel, workload, gpu)
    return BenchmarkMeasurement(
        abbr=bench.abbr,
        scheme="baseline",
        cycles=cycles,
        normalized=1.0,
        timing=timing,
        execution=execution,
    )


def measure_scheme(
    bench: Benchmark,
    scheme: str,
    gpu: GpuConfig = FERMI_C2050,
    baseline_cycles: Optional[float] = None,
    config_override: Optional[PennyConfig] = None,
) -> BenchmarkMeasurement:
    """Measure one of the paper's schemes (or a custom config) on a
    benchmark, normalized to the baseline."""
    workload = bench.workload()
    if baseline_cycles is None:
        baseline_cycles = measure_baseline(bench, gpu).cycles

    with obs.span("measure.scheme", benchmark=bench.abbr, scheme=scheme):
        if scheme == SCHEME_IGPU:
            kernel = bench.fresh_kernel()
            igpu_transform(kernel)
            cycles, timing, execution = _measure_kernel(
                kernel, workload, gpu
            )
            return BenchmarkMeasurement(
                abbr=bench.abbr,
                scheme=scheme,
                cycles=cycles,
                normalized=cycles / baseline_cycles,
                timing=timing,
                execution=execution,
            )

        config = config_override or scheme_config(scheme)
        compiler = PennyCompiler(config)
        result = compiler.compile(
            bench.fresh_kernel(), workload.launch_config
        )
        cycles, timing, execution = _measure_kernel(
            result.kernel,
            workload,
            gpu,
            regs_override=int(result.stats["registers"]),
        )
        return BenchmarkMeasurement(
            abbr=bench.abbr,
            scheme=scheme,
            cycles=cycles,
            normalized=cycles / baseline_cycles,
            timing=timing,
            execution=execution,
            compile_result=result,
        )


def normalized_overheads(
    benchmarks,
    schemes,
    gpu: GpuConfig = FERMI_C2050,
    configs: Optional[Dict[str, PennyConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Matrix of normalized execution times: scheme -> abbr -> factor,
    plus a 'gmean' entry per scheme."""
    table: Dict[str, Dict[str, float]] = {s: {} for s in schemes}
    for bench in benchmarks:
        base = measure_baseline(bench, gpu)
        for scheme in schemes:
            config = (configs or {}).get(scheme)
            m = measure_scheme(
                bench,
                scheme,
                gpu,
                baseline_cycles=base.cycles,
                config_override=config,
            )
            table[scheme][bench.abbr] = m.normalized
    for scheme in schemes:
        values = list(table[scheme].values())
        table[scheme]["gmean"] = geometric_mean(values)
    return table


def geometric_mean(values: List[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_overhead_table(
    table: Dict[str, Dict[str, float]], title: str
) -> str:
    """Render a scheme x benchmark normalized-time table."""
    schemes = list(table)
    abbrs = [k for k in next(iter(table.values())) if k != "gmean"]
    lines = [title, ""]
    header = f"{'bench':8}" + "".join(f"{s:>18}" for s in schemes)
    lines.append(header)
    for abbr in abbrs:
        row = f"{abbr:8}" + "".join(
            f"{table[s][abbr]:>18.3f}" for s in schemes
        )
        lines.append(row)
    lines.append(
        f"{'gmean':8}" + "".join(f"{table[s]['gmean']:>18.3f}" for s in schemes)
    )
    return "\n".join(lines)
