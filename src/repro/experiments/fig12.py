"""Figure 12: checkpoints removed by basic vs optimal pruning.

Per kernel, the total static checkpoints split into: pruned by Bolt's basic
random search ("Basic"), additionally pruned only by Penny's optimal
algorithm ("Additional"), and still committed after optimal pruning
("Committed").  The paper reports ~30% basic / ~75% optimal on average.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyCompiler, PennyConfig


def _counts(bench, pruning: str) -> Dict[str, int]:
    config = PennyConfig(
        name=f"fig12-{pruning}",
        placement="eager",
        pruning=pruning,
        storage_mode="auto",
        overwrite="sa",
        low_opts=True,
    )
    wl = bench.workload()
    result = PennyCompiler(config).compile(
        bench.fresh_kernel(), wl.launch_config
    )
    return {
        "total": len(result.plan.checkpoints),
        "pruned": len(result.plan.pruned()),
        "committed": len(result.plan.committed()),
    }


def run(benchmarks=None) -> List[dict]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    rows = []
    for bench in benches:
        basic = _counts(bench, "basic")
        optimal = _counts(bench, "optimal")
        total = optimal["total"]
        basic_pruned = basic["pruned"]
        optimal_pruned = optimal["pruned"]
        rows.append(
            {
                "abbr": bench.abbr,
                "total": total,
                "basic": basic_pruned,
                "additional": max(0, optimal_pruned - basic_pruned),
                "committed": optimal["committed"],
                "basic_frac": basic_pruned / total if total else 0.0,
                "optimal_frac": optimal_pruned / total if total else 0.0,
            }
        )
    return rows


def main() -> None:
    rows = run()
    print("Fig. 12 — checkpoints removed by basic/optimal pruning")
    print()
    print(
        f"{'bench':8}{'total':>7}{'basic':>7}{'extra':>7}{'commit':>8}"
        f"{'basic%':>9}{'opt%':>8}"
    )
    for r in rows:
        print(
            f"{r['abbr']:8}{r['total']:>7}{r['basic']:>7}"
            f"{r['additional']:>7}{r['committed']:>8}"
            f"{r['basic_frac'] * 100:>8.0f}%{r['optimal_frac'] * 100:>7.0f}%"
        )
    with_cps = [r for r in rows if r["total"]]
    if with_cps:
        avg_basic = sum(r["basic_frac"] for r in with_cps) / len(with_cps)
        avg_opt = sum(r["optimal_frac"] for r in with_cps) / len(with_cps)
        print()
        print(
            f"avg pruned: basic {avg_basic * 100:.0f}% "
            f"(paper ~30%), optimal {avg_opt * 100:.0f}% (paper ~75%)"
        )


if __name__ == "__main__":
    main()
