"""Figure 10: impact of Penny's optimizations, applied cumulatively.

No_opt -> +Auto_storage -> +BCP -> +Opt_pruning -> +Low_opts, where No_opt
corresponds to Bolt/Global (eager placement, basic pruning, global storage,
no low-level opts) and +Low_opts is fully-optimized Penny.
"""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyConfig
from repro.experiments.harness import (
    format_overhead_table,
    normalized_overheads,
)
from repro.gpusim.config import FERMI_C2050

#: cumulative configurations, in the paper's bar order
CUMULATIVE_CONFIGS = {
    "No_opt": PennyConfig(
        name="No_opt",
        placement="eager",
        pruning="basic",
        storage_mode="global",
        overwrite="sa",
        low_opts=False,
    ),
    "+Auto_storage": PennyConfig(
        name="+Auto_storage",
        placement="eager",
        pruning="basic",
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    ),
    "+BCP": PennyConfig(
        name="+BCP",
        placement="bimodal",
        pruning="basic",
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    ),
    "+Opt_pruning": PennyConfig(
        name="+Opt_pruning",
        placement="bimodal",
        pruning="optimal",
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    ),
    "+Low_opts": PennyConfig(
        name="+Low_opts",
        placement="bimodal",
        pruning="optimal",
        storage_mode="auto",
        overwrite="auto",
        low_opts=True,
    ),
}


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    return normalized_overheads(
        benches,
        list(CUMULATIVE_CONFIGS),
        gpu=FERMI_C2050,
        configs=CUMULATIVE_CONFIGS,
    )


def main() -> None:
    table = run()
    print(
        format_overhead_table(
            table, "Fig. 10 — accumulated optimization impact"
        )
    )
    gmeans = [table[name]["gmean"] for name in CUMULATIVE_CONFIGS]
    monotone = all(a >= b - 1e-9 for a, b in zip(gmeans, gmeans[1:]))
    print()
    print("gmean non-increasing as optimizations accumulate:", monotone)


if __name__ == "__main__":
    main()
