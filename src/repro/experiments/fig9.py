"""Figure 9: fault-free execution-time overhead of iGPU, Bolt/Global,
Bolt/Auto_storage, and Penny across the 25 benchmarks (Fermi target)."""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.experiments.harness import (
    SCHEMES_FIG9,
    format_overhead_table,
    normalized_overheads,
)
from repro.gpusim.config import FERMI_C2050

#: paper-reported geometric means (normalized execution time)
PAPER_GMEANS = {
    "iGPU": 1.023,
    "Bolt/Global": 1.665,
    "Bolt/Auto_storage": 1.385,
    "Penny": 1.033,
}


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    return normalized_overheads(benches, SCHEMES_FIG9, gpu=FERMI_C2050)


def main() -> None:
    table = run()
    print(format_overhead_table(table, "Fig. 9 — fault-free execution time "
                                       "(normalized to baseline, Fermi)"))
    print()
    print("paper gmeans:", PAPER_GMEANS)
    ordering_holds = (
        table["Penny"]["gmean"]
        < table["Bolt/Auto_storage"]["gmean"]
        < table["Bolt/Global"]["gmean"]
    )
    print("ordering Penny < Bolt/Auto < Bolt/Global holds:", ordering_holds)


if __name__ == "__main__":
    main()
