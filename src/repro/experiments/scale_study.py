"""Workload-scale study: why our Bolt factors are compressed.

EXPERIMENTS.md attributes the gap between our Bolt overheads (~1.17x) and
the paper's (~1.67x) to workload scale: real kernels keep *dozens* of
live-out registers per in-loop region where our miniatures keep ~5.  This
study makes that claim falsifiable with a synthetic kernel family whose
live-out count is a parameter:

- one loop-carried accumulator (never prunable — the STC effect),
- ``n_liveouts`` loop-resident temporaries that are live across the
  region boundary (Bolt must checkpoint each, every iteration; Penny's
  optimal pruning recomputes them),
- an in-place update forcing one region boundary per iteration.

Expected shape: Bolt's overhead grows with ``n_liveouts`` toward the
paper's factors, Penny's stays flat — magnitude compression is a property
of the miniature workloads, not of the schemes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.pipeline import LaunchConfig, PennyCompiler
from repro.core.schemes import (
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    scheme_config,
)
from repro.gpusim.config import FERMI_C2050
from repro.gpusim.backend import make_executor
from repro.gpusim.executor import Launch
from repro.gpusim.memory import MemoryImage
from repro.gpusim.timing import TimingModel
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel
from repro.regalloc import count_registers

LIVEOUT_SWEEP = (2, 6, 12, 20)


def build_kernel(n_liveouts: int, iters: int = 12) -> Kernel:
    """The synthetic family member with ``n_liveouts`` prunable live-outs."""
    b = KernelBuilder("scale", params=[("A", "ptr"), ("n", "u32")])
    tid = b.special_u32("%tid.x")
    a = b.ld_param("A")
    n = b.ld_param("n")
    acc = b.mov(0, dst=b.reg("u32", "%acc"))
    i = b.mov(tid, dst=b.reg("u32", "%i"))
    limit = b.mov(iters)
    b.label("HEAD")
    p = b.setp("ge", i, limit)
    b.bra("EXIT", pred=p)
    idx = b.rem(i, n)
    off = b.shl(idx, 2)
    addr = b.add(a, off)
    v = b.ld("global", addr, dtype="u32")
    b.mad(v, 3, acc, dst=acc)  # carried accumulator
    # per-iteration temporaries with in-loop LUPs, live across the region
    # boundary; their values derive from tid and constants alone, so
    # Penny's optimal pruning recomputes them (the shape unoptimized PTX
    # address/selector chains take), while Bolt must store each one every
    # iteration
    temps = [b.mad(tid, 3 + j, 7 * j + 1) for j in range(n_liveouts)]
    mixed = acc
    for t in temps:  # keep every temp live through the boundary
        mixed = b.xor(mixed, t)
    b.st("global", addr, mixed)  # in-place: boundary per iteration
    b.add(i, 1, dst=i)
    b.bra("HEAD")
    b.label("EXIT")
    out_off = b.shl(tid, 2)
    out = b.add(a, out_off)
    final = acc
    for t in temps:  # ... and past the loop
        final = b.add(final, t)
    b.st("global", out, final, offset=4096)
    b.ret()
    return b.finish()


def _measure(kernel: Kernel, threads=32, blocks=2) -> float:
    mem = MemoryImage()
    addr = mem.alloc_global(2048)
    mem.upload(addr, list(range(1, 65)))
    mem.set_param("A", addr)
    mem.set_param("n", threads)
    execution = make_executor(kernel, rf_code_factory=lambda: None).run(
        Launch(grid=blocks, block=threads), mem
    )
    shared = sum(4 * d.num_words for d in kernel.shared)
    return TimingModel(FERMI_C2050).estimate(
        execution,
        threads_per_block=threads,
        num_blocks=blocks,
        regs_per_thread=count_registers(kernel),
        shared_per_block=shared,
    ).cycles


def run(sweep=LIVEOUT_SWEEP) -> List[Dict]:
    launch = LaunchConfig(threads_per_block=32, num_blocks=2)
    rows = []
    for n_liveouts in sweep:
        base = _measure(build_kernel(n_liveouts))
        bolt = PennyCompiler(scheme_config(SCHEME_BOLT_GLOBAL)).compile(
            build_kernel(n_liveouts), launch
        )
        penny = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            build_kernel(n_liveouts), launch
        )
        rows.append(
            {
                "liveouts": n_liveouts,
                "bolt": _measure(bolt.kernel) / base,
                "penny": _measure(penny.kernel) / base,
                "bolt_committed": int(bolt.stats["checkpoints_committed"]),
                "penny_committed": int(penny.stats["checkpoints_committed"]),
            }
        )
    return rows


def main() -> None:
    rows = run()
    print("Scale study — Bolt vs Penny overhead as in-loop live-outs grow")
    print()
    print(
        f"{'live-outs':>10}{'Bolt/Global':>13}{'Penny':>8}"
        f"{'Bolt cps':>10}{'Penny cps':>11}"
    )
    for r in rows:
        print(
            f"{r['liveouts']:>10}{r['bolt']:>13.3f}{r['penny']:>8.3f}"
            f"{r['bolt_committed']:>10}{r['penny_committed']:>11}"
        )
    grew = rows[-1]["bolt"] - rows[0]["bolt"]
    flat = rows[-1]["penny"] - rows[0]["penny"]
    print(
        f"\nBolt grows {grew:+.3f} across the sweep while Penny moves "
        f"{flat:+.3f}:\nthe paper-scale Bolt factors reappear once kernels "
        "carry paper-scale live-out counts."
    )


if __name__ == "__main__":
    main()
