"""Appendix A as a runnable artifact: recovery correctness campaigns.

The paper proves that parity-based detection plus Penny's recovery is
correct *without* in-region detection.  This experiment validates the
theorem empirically: randomized register bit-flips across a structurally
diverse benchmark subset, classified into masked / recovered / SDC / DUE.
The theorem's signature is the last two columns staying zero for single-bit
faults under parity — and the Wilson upper bound on the SDC rate shrinking
with campaign size, which is what makes the zero statistically meaningful.

Campaigns run on the parallel engine (:mod:`repro.gpusim.campaign`), so
``injections_per_app`` can scale far beyond the original serial loop and
every DUE (there should be none on this surface) carries a taxonomy label.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gpusim.campaign import CampaignSpec, ParallelCampaign

#: diverse structures: loop-carried state, local-memory arrays, shared
#: butterflies, in-place matrices, DP rows, atomics
DEFAULT_APPS = ("STC", "BO", "FW", "GAU", "NW", "TPACF")


def run(
    apps=DEFAULT_APPS,
    injections_per_app: int = 40,
    seed: int = 2020,
    workers: int = 1,
) -> List[Dict]:
    rows = []
    for abbr in apps:
        spec = CampaignSpec(
            benchmark=abbr,
            scheme="Penny",
            rf_code="parity",
            num_injections=injections_per_app,
            seed=seed,
            surfaces=("rf",),
            bits_per_fault=1,
        )
        report = ParallelCampaign(spec, workers=workers).run()
        row: Dict = dict(report.summary())
        row["abbr"] = abbr
        row["due_taxonomy"] = report.due_taxonomy()
        row["sdc_ci"] = report.rates()["sdc"]
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Appendix A — single-bit fault campaigns on Penny-protected "
          "kernels (parity RF)")
    print()
    print(
        f"{'bench':8}{'masked':>8}{'recovered':>11}{'sdc':>6}{'due':>6}"
        f"{'sdc rate 95% CI':>20}"
    )
    total_bad = 0
    for r in rows:
        _, lo, hi = r["sdc_ci"]
        print(
            f"{r['abbr']:8}{r['masked']:>8}{r['recovered']:>11}"
            f"{r['sdc']:>6}{r['due']:>6}"
            f"{f'[{lo:.3f}, {hi:.3f}]':>20}"
        )
        total_bad += r["sdc"] + r["due"]
        if r["due_taxonomy"]:
            print(f"{'':8}DUE taxonomy: {r['due_taxonomy']}")
    print()
    print(
        "theorem holds (no SDC, no DUE):", total_bad == 0
    )


if __name__ == "__main__":
    main()
