"""Appendix A as a runnable artifact: recovery correctness campaigns.

The paper proves that parity-based detection plus Penny's recovery is
correct *without* in-region detection.  This experiment validates the
theorem empirically: randomized register bit-flips across a structurally
diverse benchmark subset, classified into masked / recovered / SDC / DUE.
The theorem's signature is the last two columns staying zero for single-bit
faults under parity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench import get_benchmark
from repro.coding import SecdedCode
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim import FaultCampaign

#: diverse structures: loop-carried state, local-memory arrays, shared
#: butterflies, in-place matrices, DP rows, atomics
DEFAULT_APPS = ("STC", "BO", "FW", "GAU", "NW", "TPACF")


def run(
    apps=DEFAULT_APPS,
    injections_per_app: int = 40,
    seed: int = 2020,
) -> List[Dict]:
    rows = []
    for abbr in apps:
        bench = get_benchmark(abbr)
        wl = bench.workload()
        result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
            bench.fresh_kernel(), wl.launch_config
        )
        campaign = FaultCampaign(
            result.kernel, wl.launch, wl.make_memory, wl.output_region()
        )
        summary = campaign.run_random(
            injections_per_app, seed=seed, bits_per_fault=1
        ).summary()
        summary["abbr"] = abbr
        rows.append(summary)
    return rows


def main() -> None:
    rows = run()
    print("Appendix A — single-bit fault campaigns on Penny-protected "
          "kernels (parity RF)")
    print()
    print(f"{'bench':8}{'masked':>8}{'recovered':>11}{'sdc':>6}{'due':>6}")
    total_bad = 0
    for r in rows:
        print(
            f"{r['abbr']:8}{r['masked']:>8}{r['recovered']:>11}"
            f"{r['sdc']:>6}{r['due']:>6}"
        )
        total_bad += r["sdc"] + r["due"]
    print()
    print(
        "theorem holds (no SDC, no DUE):", total_bad == 0
    )


if __name__ == "__main__":
    main()
