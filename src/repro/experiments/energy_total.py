"""§9.1 exploration: whole-GPU energy (the paper's declared future work).

The paper claims RF energy savings (Fig. 14) but explicitly *defers* any
claim about total GPU energy, because the RF is 10–20% of the chip budget
and Penny's few-percent slowdown taxes everything else.  This experiment
quantifies that trade with a two-term model
(:func:`repro.gpusim.energy.total_gpu_energy_norm`): Penny's total-energy
impact vs a SECDED-ECC GPU across RF-budget fractions.
"""

from __future__ import annotations

from typing import List

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY
from repro.experiments.harness import (
    geometric_mean,
    measure_baseline,
    measure_scheme,
)
from repro.gpusim.energy import rf_energy, total_gpu_energy_norm
from repro.gpusim.executor import Executor

RF_FRACTIONS = (0.10, 0.15, 0.20)


def run(benchmarks=None) -> List[dict]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    rows = []
    for bench in benches:
        wl = bench.workload()
        base = measure_baseline(bench)
        base_rf = rf_energy(base.execution, "None").total_pj
        ecc_rf_norm = (
            rf_energy(base.execution, "SECDED").total_pj / base_rf
        )

        penny = measure_scheme(
            bench, SCHEME_PENNY, baseline_cycles=base.cycles
        )
        penny_rf_norm = (
            rf_energy(penny.execution, "Parity").total_pj / base_rf
        )
        row = {"abbr": bench.abbr}
        for frac in RF_FRACTIONS:
            row[f"ecc@{frac:.2f}"] = total_gpu_energy_norm(
                ecc_rf_norm, 1.0, frac
            )
            row[f"penny@{frac:.2f}"] = total_gpu_energy_norm(
                penny_rf_norm, penny.normalized, frac
            )
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("§9.1 — total GPU energy, normalized to unprotected baseline")
    print()
    header = f"{'bench':8}"
    for frac in RF_FRACTIONS:
        header += f"{'ECC@' + format(frac, '.2f'):>11}"
        header += f"{'Pny@' + format(frac, '.2f'):>11}"
    print(header)
    for r in rows:
        line = f"{r['abbr']:8}"
        for frac in RF_FRACTIONS:
            line += f"{r[f'ecc@{frac:.2f}']:>11.3f}"
            line += f"{r[f'penny@{frac:.2f}']:>11.3f}"
        print(line)
    for frac in RF_FRACTIONS:
        ecc = geometric_mean([r[f"ecc@{frac:.2f}"] for r in rows])
        penny = geometric_mean([r[f"penny@{frac:.2f}"] for r in rows])
        print(
            f"\nRF = {frac:.0%} of GPU energy: ECC total {ecc:.3f}, "
            f"Penny total {penny:.3f} "
            f"({'Penny wins' if penny < ecc else 'ECC wins'})"
        )
    print(
        "\nAs §9.1 anticipates, the total-energy verdict is marginal — the "
        "run-time\ntax eats most of the RF savings at small RF fractions."
    )


if __name__ == "__main__":
    main()
