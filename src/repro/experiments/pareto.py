"""Protection-policy Pareto study: coverage vs overhead.

Penny's full scheme checkpoints every region live-in; the policy layer
(:mod:`repro.policy`) lets the compiler protect only the registers that
matter most — address-feeding chains (PRESAGE-style), the most
vulnerable registers by ACE-weighted live-interval exposure, or nothing
at all.  This experiment sweeps the policy axis over the benchmark
suite and reports, per policy:

* **instruction overhead** — dynamic instructions of the compiled
  kernel normalized to the unprotected baseline (geometric mean and
  per-bench), plus the timing model's normalized execution time;
* **storage overhead** — checkpoint bytes per block from the storage
  model, plus the parity-protected register count;
* **coverage** — a seeded fault-injection campaign per (policy, bench)
  classifies outcomes into masked / recovered / SDC / DUE; coverage is
  ``1 - SDC rate`` with Wilson 95% confidence bounds.

The output table is the coverage-vs-overhead Pareto frontier the paper
family (Penny, PRESAGE, ACE analyses) argues about: ``full`` buys the
highest coverage at the highest overhead, ``address-only`` keeps SDC
close to full for a fraction of the checkpoints, ``none`` is the bare
register file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.experiments.harness import (
    compile_cache,
    geometric_mean,
    measure_baseline,
    measure_scheme,
)
from repro.gpusim.campaign import CampaignSpec, ParallelCampaign

#: the policy axis, cheapest-protection-last
DEFAULT_POLICIES = (
    "full",
    "address-only",
    "top-k-vulnerable:0.5",
    "detection-only",
    "none",
)

#: structurally diverse default subset (loops, shared memory, atomics)
DEFAULT_APPS = ("STC", "BO", "FW", "NW")


def _policy_config(policy: str):
    return dataclasses.replace(scheme_config(SCHEME_PENNY), policy=policy)


def measure_policy_overhead(bench, policy: str, baseline) -> Dict:
    """Compile ``bench`` under ``policy`` and measure dynamic
    instruction / cycle overhead plus the storage model's stats."""
    m = measure_scheme(
        bench,
        SCHEME_PENNY,
        baseline_cycles=baseline.cycles,
        config_override=_policy_config(policy),
    )
    stats = m.compile_result.stats
    base_insts = baseline.execution.instructions
    return {
        "instructions": m.execution.instructions,
        "inst_overhead": (
            m.execution.instructions / base_insts if base_insts else 1.0
        ),
        "normalized_time": m.normalized,
        "ckpt_bytes_per_block": stats.get("shared_ckpt_bytes", 0.0),
        "emitted_checkpoints": stats.get("emitted_checkpoints", 0.0),
        "protected_registers": stats.get("protected_registers", 0.0),
        "registers": stats.get("registers", 0.0),
    }


def measure_policy_coverage(
    abbr: str,
    policy: str,
    injections: int,
    seed: int,
    workers: int = 1,
) -> Dict:
    """Run a seeded RF fault campaign under ``policy`` and return the
    outcome rates with Wilson 95% bounds."""
    spec = CampaignSpec(
        benchmark=abbr,
        scheme=SCHEME_PENNY,
        rf_code="parity",
        num_injections=injections,
        seed=seed,
        surfaces=("rf",),
        bits_per_fault=1,
        policy=policy,
    )
    report = ParallelCampaign(spec, workers=workers).run()
    rates = report.rates()
    sdc_rate, sdc_lo, sdc_hi = rates["sdc"]
    due_rate, due_lo, due_hi = rates["due"]
    return {
        "outcomes": report.summary(),
        "sdc_rate": sdc_rate,
        "sdc_ci": (sdc_lo, sdc_hi),
        "due_rate": due_rate,
        "due_ci": (due_lo, due_hi),
        # coverage = faults that did NOT silently corrupt the output;
        # the CI mirrors the SDC interval (coverage = 1 - SDC rate).
        "coverage": 1.0 - sdc_rate,
        "coverage_ci": (1.0 - sdc_hi, 1.0 - sdc_lo),
    }


def run(
    apps: Sequence[str] = DEFAULT_APPS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    injections_per_app: int = 60,
    seed: int = 2020,
    workers: int = 1,
) -> List[Dict]:
    """The full sweep: one row per (policy, benchmark)."""
    rows: List[Dict] = []
    with compile_cache():
        for abbr in apps:
            bench = get_benchmark(abbr)
            baseline = measure_baseline(bench)
            for policy in policies:
                row: Dict = {"abbr": abbr, "policy": policy}
                row.update(
                    measure_policy_overhead(bench, policy, baseline)
                )
                row.update(
                    measure_policy_coverage(
                        abbr,
                        policy,
                        injections=injections_per_app,
                        seed=seed,
                        workers=workers,
                    )
                )
                rows.append(row)
    return rows


def aggregate(rows: List[Dict]) -> List[Dict]:
    """Collapse per-bench rows into one summary row per policy:
    geometric-mean overheads and pooled coverage."""
    from repro.gpusim.campaign import wilson_interval

    policies: List[str] = []
    for r in rows:
        if r["policy"] not in policies:
            policies.append(r["policy"])
    out = []
    for policy in policies:
        sub = [r for r in rows if r["policy"] == policy]
        sdc = sum(r["outcomes"]["sdc"] for r in sub)
        due = sum(r["outcomes"]["due"] for r in sub)
        injected = sum(
            sum(
                v
                for k, v in r["outcomes"].items()
                if k != "not_injected"
            )
            for r in sub
        )
        rate, lo, hi = wilson_interval(sdc, injected)
        out.append(
            {
                "policy": policy,
                "inst_overhead": geometric_mean(
                    [r["inst_overhead"] for r in sub]
                ),
                "normalized_time": geometric_mean(
                    [r["normalized_time"] for r in sub]
                ),
                "ckpt_bytes_per_block": sum(
                    r["ckpt_bytes_per_block"] for r in sub
                )
                / len(sub),
                "coverage": 1.0 - rate,
                "coverage_ci": (1.0 - hi, 1.0 - lo),
                "sdc": sdc,
                "due": due,
                "due_rate": due / injected if injected else 0.0,
                "injected": injected,
            }
        )
    return out


def pareto_frontier(summary: List[Dict]) -> List[str]:
    """Policies not dominated on (instruction overhead, coverage,
    DUE rate): a policy is dominated when another is at least as good
    on all three axes and strictly better on one.  The DUE axis keeps
    ``detection-only`` from spuriously dominating ``full`` — it trades
    silent corruption for unavailability, not for free."""
    frontier = []
    for a in summary:
        dominated = any(
            b["coverage"] >= a["coverage"]
            and b["inst_overhead"] <= a["inst_overhead"]
            and b["due_rate"] <= a["due_rate"]
            and (
                b["coverage"] > a["coverage"]
                or b["inst_overhead"] < a["inst_overhead"]
                or b["due_rate"] < a["due_rate"]
            )
            for b in summary
            if b is not a
        )
        if not dominated:
            frontier.append(a["policy"])
    return frontier


def format_table(rows: List[Dict], summary: List[Dict]) -> str:
    lines = [
        "Protection-policy Pareto study "
        "(coverage vs instruction/storage overhead)",
        "",
        f"{'bench':7}{'policy':24}{'inst ovh':>10}{'time ovh':>10}"
        f"{'ckpt B/blk':>12}{'prot regs':>11}"
        f"{'coverage (95% CI)':>24}{'sdc':>5}{'due':>5}",
    ]
    for r in rows:
        lo, hi = r["coverage_ci"]
        lines.append(
            f"{r['abbr']:7}{r['policy']:24}"
            f"{r['inst_overhead']:>10.3f}{r['normalized_time']:>10.3f}"
            f"{r['ckpt_bytes_per_block']:>12.0f}"
            f"{int(r['protected_registers']):>5}/"
            f"{int(r['registers']):<5}"
            f"{r['coverage']:.3f} [{lo:.3f}, {hi:.3f}]".rjust(24)
            + f"{r['outcomes']['sdc']:>5}{r['outcomes']['due']:>5}"
        )
    lines.append("")
    lines.append("per-policy aggregate (gmean overheads, pooled coverage):")
    lines.append(
        f"{'policy':24}{'inst ovh':>10}{'time ovh':>10}"
        f"{'coverage (95% CI)':>24}{'due rate':>10}{'frontier':>10}"
    )
    frontier = set(pareto_frontier(summary))
    for s in summary:
        lo, hi = s["coverage_ci"]
        lines.append(
            f"{s['policy']:24}{s['inst_overhead']:>10.3f}"
            f"{s['normalized_time']:>10.3f}"
            + f"{s['coverage']:.3f} [{lo:.3f}, {hi:.3f}]".rjust(24)
            + f"{s['due_rate']:>10.3f}"
            + f"{'yes' if s['policy'] in frontier else '-':>10}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.pareto",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--benches",
        default=",".join(DEFAULT_APPS),
        help="comma-separated benchmark abbreviations, or 'all'",
    )
    parser.add_argument(
        "--policies",
        default=",".join(DEFAULT_POLICIES),
        help="comma-separated protection policies to sweep",
    )
    parser.add_argument(
        "-n",
        "--injections",
        type=int,
        default=60,
        help="fault injections per (policy, bench) campaign",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--workers", type=int, default=1, help="campaign worker processes"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable rows instead of the text table",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write output to FILE"
    )
    # The ``python -m repro.experiments`` driver calls ``main()`` with
    # artifact names still in sys.argv — default to no flags there.
    args = parser.parse_args(argv if argv is not None else [])

    if args.benches.strip().lower() == "all":
        apps = ALL_BENCHMARKS.abbrs()
    else:
        apps = [a.strip() for a in args.benches.split(",") if a.strip()]
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]

    rows = run(
        apps=apps,
        policies=policies,
        injections_per_app=args.injections,
        seed=args.seed,
        workers=args.workers,
    )
    summary = aggregate(rows)
    if args.json:
        rendered = json.dumps(
            {
                "rows": rows,
                "summary": summary,
                "frontier": pareto_frontier(summary),
            },
            indent=2,
            default=list,
        )
    else:
        rendered = format_table(rows, summary)
    if args.out:
        with open(args.out, "w") as f:
            f.write(rendered + "\n")
        print(f"pareto study written to {args.out}")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
