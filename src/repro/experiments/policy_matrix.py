"""Policy-matrix gate: the selective-protection invariants, as a check.

CI runs this module (job ``policy-matrix``) to hold the policy layer to
its contract on every push:

1. **Compile matrix** — every benchmark kernel compiles under ``full``,
   ``address-only`` and ``none``, and the post-compile lint gate stays
   clean; in particular the ``policy-uncovered-addr`` rule reports zero
   violations under ``address-only`` (every register feeding a memory
   address, branch predicate or barrier condition is parity-protected).
2. **Overhead monotonicity** — ``address-only`` never executes more
   instructions than ``full``, and executes strictly fewer on every
   kernel where ``full`` checkpoints a register the criticality
   analysis does not require (i.e. wherever a saving is possible).
3. **Coverage ordering** — a small seeded fault campaign per policy
   must order the measured coverage ``full >= address-only >= none``.

Exit status 0 means all invariants hold; violations are printed and
exit status is 1.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.cfg import CFG
from repro.analysis.vuln import address_critical_registers
from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.experiments.harness import compile_cache, measure_baseline
from repro.experiments.pareto import (
    measure_policy_coverage,
    measure_policy_overhead,
)
from repro.lint import Severity, lint_compiled

MATRIX_POLICIES = ("full", "address-only", "none")

#: campaign subset: small, structurally diverse, fast to simulate
CAMPAIGN_APPS = ("STC", "BO", "FW")


def _compile_matrix(abbrs: Sequence[str]) -> List[str]:
    """Invariants 1 + 2 over the compile matrix.  Returns violations."""
    from repro.core.pipeline import PennyCompiler

    violations: List[str] = []
    for abbr in abbrs:
        bench = get_benchmark(abbr)
        baseline = measure_baseline(bench)
        insts: Dict[str, int] = {}
        reducible = False
        for policy in MATRIX_POLICIES:
            config = dataclasses.replace(
                scheme_config(SCHEME_PENNY), policy=policy
            )
            result = PennyCompiler(config).compile(
                bench.fresh_kernel(), bench.workload().launch_config
            )
            report = lint_compiled(result.kernel)
            errors = [
                d
                for d in report.diagnostics
                if d.severity == Severity.ERROR
            ]
            uncovered = [
                d for d in errors if d.rule == "policy-uncovered-addr"
            ]
            if uncovered:
                violations.append(
                    f"{abbr}/{policy}: {len(uncovered)} "
                    f"policy-uncovered-addr violation(s): "
                    + "; ".join(d.message for d in uncovered[:3])
                )
            elif errors:
                violations.append(
                    f"{abbr}/{policy}: lint errors: "
                    + "; ".join(
                        f"{d.rule}: {d.message}" for d in errors[:3]
                    )
                )
            m = measure_policy_overhead(bench, policy, baseline)
            insts[policy] = int(m["instructions"])
            if policy == "full" and m["emitted_checkpoints"]:
                # is there anything address-only is allowed to drop?
                kernel = bench.fresh_kernel()
                critical = address_critical_registers(CFG(kernel))
                stored = {
                    action.reg_name
                    for rr in result.recovery.regions.values()
                    for action in rr.restores
                    if action.slot_color is not None
                }
                reducible = bool(stored - critical)
        if insts["address-only"] > insts["full"]:
            violations.append(
                f"{abbr}: address-only executes MORE instructions than "
                f"full ({insts['address-only']} > {insts['full']})"
            )
        elif reducible and insts["address-only"] >= insts["full"]:
            violations.append(
                f"{abbr}: address-only should be strictly cheaper than "
                f"full (non-critical registers are checkpointed) but "
                f"ties at {insts['full']} instructions"
            )
        if insts["none"] > insts["address-only"]:
            violations.append(
                f"{abbr}: none executes more instructions than "
                f"address-only"
            )
        print(
            f"  {abbr:8} full={insts['full']:>9} "
            f"addr={insts['address-only']:>9} none={insts['none']:>9} "
            f"{'(reducible)' if reducible else ''}"
        )
    return violations


def _coverage_ordering(
    abbrs: Sequence[str], injections: int, seed: int, workers: int
) -> List[str]:
    """Invariant 3: pooled coverage full >= address-only >= none."""
    totals = {p: {"sdc": 0, "n": 0} for p in MATRIX_POLICIES}
    for abbr in abbrs:
        for policy in MATRIX_POLICIES:
            cov = measure_policy_coverage(
                abbr, policy, injections=injections, seed=seed,
                workers=workers,
            )
            injected = sum(
                v
                for k, v in cov["outcomes"].items()
                if k != "not_injected"
            )
            totals[policy]["sdc"] += cov["outcomes"]["sdc"]
            totals[policy]["n"] += injected
            print(
                f"  {abbr:8}{policy:14} coverage={cov['coverage']:.3f} "
                f"sdc={cov['outcomes']['sdc']} "
                f"due={cov['outcomes']['due']}"
            )
    coverage = {
        p: 1.0 - (t["sdc"] / t["n"] if t["n"] else 0.0)
        for p, t in totals.items()
    }
    print(
        "  pooled coverage: "
        + "  ".join(f"{p}={coverage[p]:.3f}" for p in MATRIX_POLICIES)
    )
    violations = []
    if not (
        coverage["full"]
        >= coverage["address-only"]
        >= coverage["none"]
    ):
        violations.append(
            "coverage ordering violated: expected full >= address-only "
            f">= none, measured {coverage}"
        )
    return violations


def run(
    abbrs: Optional[Sequence[str]] = None,
    campaign_apps: Sequence[str] = CAMPAIGN_APPS,
    injections: int = 40,
    seed: int = 2020,
    workers: int = 1,
) -> List[str]:
    if abbrs is None:
        abbrs = ALL_BENCHMARKS.abbrs()
    violations: List[str] = []
    print(f"compile matrix over {len(abbrs)} benchmark(s):")
    with compile_cache():
        violations += _compile_matrix(abbrs)
        print(
            f"coverage campaigns ({injections} injections x "
            f"{len(campaign_apps)} bench(es) x "
            f"{len(MATRIX_POLICIES)} policies):"
        )
        violations += _coverage_ordering(
            campaign_apps, injections, seed, workers
        )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.policy_matrix",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--benches", default="all",
        help="comma-separated abbreviations for the compile matrix",
    )
    parser.add_argument(
        "--campaign-benches", default=",".join(CAMPAIGN_APPS),
        help="comma-separated abbreviations for the coverage campaigns",
    )
    parser.add_argument("-n", "--injections", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv if argv is not None else [])

    abbrs = (
        None
        if args.benches.strip().lower() == "all"
        else [a.strip() for a in args.benches.split(",") if a.strip()]
    )
    campaign_apps = [
        a.strip() for a in args.campaign_benches.split(",") if a.strip()
    ]
    violations = run(
        abbrs=abbrs,
        campaign_apps=campaign_apps,
        injections=args.injections,
        seed=args.seed,
        workers=args.workers,
    )
    print()
    if violations:
        for v in violations:
            print("FAIL:", v)
        return 1
    print("policy matrix: all invariants hold")
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
