"""Figure 13: performance impact of basic vs optimal checkpoint pruning.

No_pruning commits everything (paper: 56.2% average overhead, 3.8x worst);
Basic_pruning is Bolt's random search (29.5%); Opt_pruning is Penny's
(5.7%).  Following Fig. 10's cumulative order, pruning is evaluated in the
pre-low-opts regime (bimodal placement + auto storage, inline checkpoint
address computation) so the deltas isolate pruning itself."""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyConfig
from repro.experiments.harness import (
    format_overhead_table,
    normalized_overheads,
)
from repro.gpusim.config import FERMI_C2050


def _cfg(name: str, pruning: str) -> PennyConfig:
    return PennyConfig(
        name=name,
        placement="bimodal",
        pruning=pruning,
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    )


VARIANTS = {
    "No_pruning": _cfg("No_pruning", "none"),
    "Basic_pruning": _cfg("Basic_pruning", "basic"),
    "Opt_pruning": _cfg("Opt_pruning", "optimal"),
}


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    return normalized_overheads(
        benches, list(VARIANTS), gpu=FERMI_C2050, configs=VARIANTS
    )


def main() -> None:
    table = run()
    print(format_overhead_table(table, "Fig. 13 — pruning performance impact"))
    print()
    ordering = (
        table["Opt_pruning"]["gmean"]
        <= table["Basic_pruning"]["gmean"]
        <= table["No_pruning"]["gmean"]
    )
    print("ordering Opt <= Basic <= None holds:", ordering)


if __name__ == "__main__":
    main()
