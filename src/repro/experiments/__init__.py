"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> rows`` returning the table's data and a
``main()`` that pretty-prints it; ``python -m repro.experiments.fig9`` etc.
regenerate the paper's artifacts.  EXPERIMENTS.md records paper-vs-measured
for each.
"""

from repro.experiments.harness import (
    SCHEMES_FIG9,
    BenchmarkMeasurement,
    measure_baseline,
    measure_scheme,
    normalized_overheads,
)

__all__ = [
    "SCHEMES_FIG9",
    "BenchmarkMeasurement",
    "measure_baseline",
    "measure_scheme",
    "normalized_overheads",
]
