"""Table 2: per-bank hardware overheads (area / latency / energy / leakage)
for the RF coding schemes, from the analytic CACTI/synthesis stand-in."""

from __future__ import annotations

from typing import List

from repro.coding.hwcost import (
    RegisterFileBankModel,
    format_hardware_cost_table,
    hardware_cost_table,
)

#: paper values: scheme -> (area, latency, energy, leakage) overheads
PAPER_TABLE2 = {
    "SECDED": (0.219, 0.256, 0.211, 0.207),
    "DECTED": (0.406, 0.492, 0.392, 0.384),
    "TECQED": (0.875, 0.743, 0.845, 0.827),
    "Parity": (0.031, 0.035, 0.030, 0.030),
    "Hamming": (0.188, 0.218, 0.181, 0.177),
}

#: paper-reported baseline bank synthesis results
PAPER_BASELINE = {
    "area_mm2": 0.105,
    "access_latency_ns": 1.01,
    "access_energy_pj": 9.64,
    "leakage_nw": 4.7,
}


def run() -> List[dict]:
    return hardware_cost_table()


def max_deviation() -> float:
    """Largest |model - paper| across all overhead cells."""
    model = RegisterFileBankModel()
    worst = 0.0
    for name, (area, lat, energy, leak) in PAPER_TABLE2.items():
        oh = model.overhead(name)
        worst = max(
            worst,
            abs(oh.area - area),
            abs(oh.access_latency - lat),
            abs(oh.access_energy - energy),
            abs(oh.leakage - leak),
        )
    return worst


def main() -> None:
    print(format_hardware_cost_table())
    print()
    print(f"max deviation from paper: {max_deviation() * 100:.2f} pp")


if __name__ == "__main__":
    main()
