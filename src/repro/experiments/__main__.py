"""Regenerate every paper artifact in one go:

    python -m repro.experiments            # everything (several minutes)
    python -m repro.experiments fig9 fig13 # a selection
"""

from __future__ import annotations

import importlib
import sys
import time

ARTIFACTS = (
    "table1",
    "table2",
    "table3",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "appendix_a",
    "detectors",
    "energy_total",
    "fault_rate",
    "scale_study",
    "pareto",
)


def main(argv=None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or ARTIFACTS
    for name in names:
        if name not in ARTIFACTS:
            print(f"unknown artifact {name!r}; choose from {ARTIFACTS}")
            return 2
    # One compile cache across all artifacts: fig9-fig15 revisit the
    # same (benchmark, scheme) variants, so later figures run warm.
    from repro.experiments.harness import compile_cache

    with compile_cache() as cache:
        for name in names:
            module = importlib.import_module(f"repro.experiments.{name}")
            print("=" * 72)
            print(f"### {name}")
            print("=" * 72)
            start = time.time()
            module.main()
            print(f"\n[{name}: {time.time() - start:.1f}s]\n")
        stats = cache.stats
        if stats.hits or stats.misses:
            print(
                f"[compile cache: {stats.hits} hit(s), "
                f"{stats.misses} miss(es), "
                f"hit rate {stats.hit_rate:.1%}]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
