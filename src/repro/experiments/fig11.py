"""Figure 11: checkpoint storage assignment x overwrite-prevention scheme.

Bars: Shared/RR, Shared/SA, Global/RR, Global/SA, Auto_storage/Auto_select,
and Auto_storage/No_protection (overwrite prevention disabled — unsafe, but
it bounds the cost of the protection machinery)."""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.core.pipeline import PennyConfig
from repro.experiments.harness import (
    format_overhead_table,
    normalized_overheads,
)
from repro.gpusim.config import FERMI_C2050


def _cfg(name: str, storage: str, overwrite: str) -> PennyConfig:
    return PennyConfig(
        name=name,
        placement="bimodal",
        pruning="optimal",
        storage_mode=storage,
        overwrite=overwrite,
        low_opts=True,
    )


VARIANTS = {
    "Shared/RR": _cfg("Shared/RR", "shared", "rr"),
    "Shared/SA": _cfg("Shared/SA", "shared", "sa"),
    "Global/RR": _cfg("Global/RR", "global", "rr"),
    "Global/SA": _cfg("Global/SA", "global", "sa"),
    "Auto/Auto_select": _cfg("Auto/Auto_select", "auto", "auto"),
    "Auto/No_protection": _cfg("Auto/No_protection", "auto", "none"),
}


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    return normalized_overheads(
        benches, list(VARIANTS), gpu=FERMI_C2050, configs=VARIANTS
    )


def main() -> None:
    table = run()
    print(
        format_overhead_table(
            table,
            "Fig. 11 — storage assignment and overwrite prevention",
        )
    )
    print()
    protect = table["Auto/Auto_select"]["gmean"]
    unprotected = table["Auto/No_protection"]["gmean"]
    print(
        f"overwrite-prevention cost (Auto vs No_protection): "
        f"{(protect - unprotected) * 100:.1f} pp"
    )


if __name__ == "__main__":
    main()
