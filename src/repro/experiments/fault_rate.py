"""Recovery cost vs fault rate: §3.1's Amdahl argument, quantified.

The paper dismisses the recovery procedure's contribution to run time
because soft errors are rare (~1/day at 16nm), so Penny only optimizes the
fault-free path.  This experiment dials the fault rate far beyond reality —
one single-bit flip per N dynamic instructions per thread — and measures
the re-execution inflation (instructions executed / fault-free
instructions) on a Penny-protected kernel.  The expected shape: inflation
indistinguishable from 1.0 until the interval approaches region lengths,
then growing — and correctness (golden output) holding throughout.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench import get_benchmark
from repro.core.pipeline import PennyCompiler
from repro.core.schemes import SCHEME_PENNY, scheme_config
from repro.gpusim.backend import make_executor
from repro.gpusim.executor import SimulationError
from repro.gpusim.faults import RateFaultPlan, classify_due
from repro.gpusim.memory import MemoryError32

INTERVALS = (10_000, 1_000, 200, 50)


def run(
    abbr: str = "STC",
    intervals=INTERVALS,
    seed: int = 99,
    repeats: int = 1,
) -> List[Dict]:
    """One row per interval.  ``repeats > 1`` reruns each interval with the
    *same plan object* — the executor re-arms it at run start, so repeated
    runs are identical; any divergence would mean injection state leaked
    across runs (the bug the ``reset()`` contract exists to prevent).

    A run that dies (only possible at absurd fault pressure) is reported
    with its DUE-taxonomy label in ``due`` instead of aborting the sweep.
    """
    bench = get_benchmark(abbr)
    wl = bench.workload()
    result = PennyCompiler(scheme_config(SCHEME_PENNY)).compile(
        bench.fresh_kernel(), wl.launch_config
    )

    mem, _, out = wl.make()
    golden_exec = make_executor(result.kernel).run(wl.launch, mem)
    golden = mem.download(*out)
    base_insts = golden_exec.instructions

    rows = []
    for interval in intervals:
        plan = RateFaultPlan(interval=interval, seed=seed)
        row = None
        for _ in range(max(1, repeats)):
            mem2 = wl.make_memory()
            executor = make_executor(
                result.kernel,
                fault_plan=plan,
                max_recoveries_per_thread=100_000,
                max_instructions_per_thread=20_000_000,
            )
            try:
                stats = executor.run(wl.launch, mem2)
            except (SimulationError, MemoryError32) as exc:
                this = {
                    "interval": interval,
                    "injections": plan.injections,
                    "recoveries": -1,
                    "inflation": float("inf"),
                    "correct": False,
                    "due": classify_due(exc).value,
                }
            else:
                output = mem2.download(*out)
                this = {
                    "interval": interval,
                    "injections": plan.injections,
                    "recoveries": stats.recoveries,
                    "inflation": stats.instructions / base_insts,
                    "correct": output == golden,
                    "due": None,
                }
            if row is not None and this != row:
                raise AssertionError(
                    f"plan reuse diverged at interval {interval}: "
                    f"{this} != {row} (reset() contract violated)"
                )
            row = this
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Recovery cost vs fault rate (STC, Penny-protected, parity RF)")
    print()
    print(
        f"{'flip every':>12}{'injections':>12}{'recoveries':>12}"
        f"{'inflation':>11}{'correct':>9}"
    )
    for r in rows:
        print(
            f"{r['interval']:>12}{r['injections']:>12}{r['recoveries']:>12}"
            f"{r['inflation']:>11.3f}{str(r['correct']):>9}"
        )
    print(
        "\nAt realistic rates (one flip per day, i.e. >> 1e12 instructions) "
        "the\ninflation column is exactly 1.0 — recovery cost is free, and "
        "the fault-free\npath is the only thing worth optimizing (§3.1)."
    )


if __name__ == "__main__":
    main()
