"""Table 3: the benchmark applications used for evaluation."""

from __future__ import annotations

from typing import List

from repro.bench import ALL_BENCHMARKS

#: (abbr, suite) pairs exactly as the paper's Table 3 lists them
PAPER_TABLE3 = {
    "CP": "GPGPU-Sim bench",
    "LIB": "GPGPU-Sim bench",
    "LPS": "GPGPU-Sim bench",
    "NN": "GPGPU-Sim bench",
    "NQU": "GPGPU-Sim bench",
    "BO": "CUDA toolkit samples",
    "BS": "CUDA toolkit samples",
    "CS": "CUDA toolkit samples",
    "SP": "CUDA toolkit samples",
    "SQ": "CUDA toolkit samples",
    "FW": "CUDA toolkit samples",
    "MT": "CUDA toolkit samples",
    "SPMV": "Parboil",
    "STC": "Parboil",
    "TPACF": "Parboil",
    "SGEMM": "Parboil",
    "BP": "Rodinia",
    "BFS": "Rodinia",
    "GAU": "Rodinia",
    "HS": "Rodinia",
    "MD": "Rodinia",
    "NW": "Rodinia",
    "PF": "Rodinia",
    "SRAD": "Rodinia",
    "SC": "Rodinia",
}


def run() -> List[dict]:
    return [
        {"abbr": b.abbr, "name": b.name, "suite": b.suite}
        for b in ALL_BENCHMARKS
    ]


def verify() -> bool:
    rows = run()
    if len(rows) != 25:
        return False
    return all(PAPER_TABLE3.get(r["abbr"]) == r["suite"] for r in rows)


def main() -> None:
    for row in run():
        print(f"{row['abbr']:7} {row['name']:40} {row['suite']}")
    print()
    print("matches paper (25 apps, same suites):", verify())


if __name__ == "__main__":
    main()
