"""Detector-cost ablation (the motivation behind §4).

Prior idempotent schemes need *in-region* error detection, which in
software means instruction duplication (SW-DMR).  Penny's parity checking
detects at register-read time for free.  This experiment compares the
fault-free cost of the two detectors across the suite:

- ``SW-DMR``       — instruction duplication + externalization checks,
  no checkpointing (detection cost alone),
- ``Penny``        — the full scheme (whose detection adds no
  instructions; its cost is checkpointing, already a few percent).

Not a paper figure — an ablation supporting the §4 claim that dropping the
in-region-detection requirement is what makes lightweight protection
possible.
"""

from __future__ import annotations

from typing import Dict

from repro.bench import ALL_BENCHMARKS
from repro.core.schemes import SCHEME_PENNY
from repro.core.swdmr import apply_swdmr
from repro.experiments.harness import (
    _measure_kernel,
    geometric_mean,
    measure_baseline,
    measure_scheme,
)
from repro.gpusim.config import FERMI_C2050


def run(benchmarks=None) -> Dict[str, Dict[str, float]]:
    benches = benchmarks if benchmarks is not None else list(ALL_BENCHMARKS)
    table: Dict[str, Dict[str, float]] = {"SW-DMR": {}, "Penny": {}}
    for bench in benches:
        wl = bench.workload()
        base = measure_baseline(bench, FERMI_C2050)

        kernel = bench.fresh_kernel()
        apply_swdmr(kernel)
        cycles, _, _ = _measure_kernel(kernel, wl, FERMI_C2050)
        table["SW-DMR"][bench.abbr] = cycles / base.cycles

        penny = measure_scheme(
            bench, SCHEME_PENNY, FERMI_C2050, baseline_cycles=base.cycles
        )
        table["Penny"][bench.abbr] = penny.normalized
    for scheme in table:
        table[scheme]["gmean"] = geometric_mean(
            [v for k, v in table[scheme].items() if k != "gmean"]
        )
    return table


def main() -> None:
    from repro.experiments.harness import format_overhead_table

    table = run()
    print(
        format_overhead_table(
            table,
            "Detector ablation — SW-DMR (in-region detection) vs Penny "
            "(parity + idempotent recovery)",
        )
    )
    factor = table["SW-DMR"]["gmean"] / table["Penny"]["gmean"]
    print(f"\nSW-DMR costs {factor:.2f}x more than full Penny protection")


if __name__ == "__main__":
    main()
