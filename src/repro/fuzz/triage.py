"""Failure fingerprinting and the JSONL finding corpus.

A *fingerprint* buckets failures by what broke, not where the RNG was:
``stage : exception type : pass : normalized message``.  Normalization
strips the parts that vary between kernels hitting the same bug —
register names, labels, numbers — so one compiler defect found by 40
different seeds lands in one bucket, and the reducer only has to shrink
one representative per bucket.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.generator import FuzzCase

_REG_RE = re.compile(r"%[A-Za-z_][\w.]*")
_HEX_RE = re.compile(r"0x[0-9a-fA-F]+")
_LABEL_RE = re.compile(r"\b[A-Z][A-Z_]*\d+(?:_split_\d+)?\b")
_NUM_RE = re.compile(r"\b\d+\b")


def normalize_message(message: str) -> str:
    """Strip kernel-specific identifiers out of an error message."""
    msg = _REG_RE.sub("%R", message)
    msg = _HEX_RE.sub("0xN", msg)
    msg = _LABEL_RE.sub("L", msg)
    msg = _NUM_RE.sub("N", msg)
    return msg.strip()


def fingerprint(
    stage: str, exc_type: str, pass_name: str, message: str
) -> str:
    """The bucket key: exception type + pass + normalized message."""
    return f"{stage}:{exc_type}:{pass_name}:{normalize_message(message)}"


@dataclass
class Finding:
    """One triaged fuzz failure (JSONL-serializable)."""

    iteration: int
    seed: int
    stage: str  # compile | verify | run_zero_fault | diff_zero_fault | fault
    exc_type: str
    pass_name: str
    message: str
    fingerprint: str
    case: Dict = field(default_factory=dict)
    reduced_kernel: Optional[str] = None
    reduced_instructions: Optional[int] = None
    original_instructions: Optional[int] = None
    error: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "kind": "finding",
            "iteration": self.iteration,
            "seed": self.seed,
            "stage": self.stage,
            "exc_type": self.exc_type,
            "pass": self.pass_name,
            "fingerprint": self.fingerprint,
            "message": self.message,
            "reduced_instructions": self.reduced_instructions,
            "original_instructions": self.original_instructions,
        }

    def summary(self) -> Dict:
        return {
            "stage": self.stage,
            "exc_type": self.exc_type,
            "pass": self.pass_name,
            "fingerprint": self.fingerprint,
        }

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Finding":
        return cls(**json.loads(line))

    def fuzz_case(self) -> FuzzCase:
        return FuzzCase.from_dict(self.case)


class TriageCorpus:
    """An append-only JSONL corpus of findings, bucketed by fingerprint.

    With a ``path`` every appended finding is flushed to disk
    immediately (crash-safe, like the campaign journal); without one the
    corpus is purely in-memory.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.findings: List[Finding] = []
        self._f = open(path, "w") if path else None

    def append(self, finding: Finding) -> None:
        self.findings.append(finding)
        if self._f is not None:
            self._f.write(finding.to_json() + "\n")
            self._f.flush()
            os.fsync(self._f.fileno())

    def buckets(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for f in self.findings:
            out.setdefault(f.fingerprint, []).append(f)
        return out

    def summary(self) -> Dict[str, int]:
        return {fp: len(fs) for fp, fs in sorted(self.buckets().items())}

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    @classmethod
    def load(cls, path: str) -> "TriageCorpus":
        corpus = cls()
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    corpus.findings.append(Finding.from_json(line))
                except (json.JSONDecodeError, TypeError):
                    continue  # torn tail of a killed run
        return corpus
