"""Differential IR fuzzing for the Penny compiler + simulator pair.

The subsystem stress-tests the compiler on kernels nobody hand-wrote:

- :mod:`repro.fuzz.generator` — seeded grammar-based kernel generation
  (same seed, same kernel, on every platform);
- :mod:`repro.fuzz.mutators` — seeded IR mutations over generated cases;
- :mod:`repro.fuzz.oracle` — the differential oracle: the protected
  kernel must match the unprotected baseline under zero faults and must
  not silently corrupt under injected faults;
- :mod:`repro.fuzz.reducer` — delta-debugging shrinker that preserves a
  failure's triage fingerprint;
- :mod:`repro.fuzz.triage` — fingerprinting + JSONL finding corpus;
- :mod:`repro.fuzz.harness` — the (optionally parallel) campaign driver
  behind ``python -m repro.cli fuzz``.
"""

from repro.fuzz.generator import FuzzCase, GeneratorConfig, generate_case
from repro.fuzz.harness import FuzzReport, FuzzRunner, FuzzSpec
from repro.fuzz.mutators import mutate_case
from repro.fuzz.oracle import CaseResult, run_case
from repro.fuzz.reducer import reduce_case
from repro.fuzz.triage import Finding, TriageCorpus, fingerprint

__all__ = [
    "CaseResult",
    "Finding",
    "FuzzCase",
    "FuzzReport",
    "FuzzRunner",
    "FuzzSpec",
    "GeneratorConfig",
    "TriageCorpus",
    "fingerprint",
    "generate_case",
    "mutate_case",
    "reduce_case",
    "run_case",
]
