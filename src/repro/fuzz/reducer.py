"""Delta-debugging reduction of failing fuzz cases.

Classic ddmin over the kernel's flat instruction list: try to delete
chunks of instructions, keep a deletion when the shrunk case still fails
*with the same triage fingerprint*, halve the chunk size when a whole
pass makes no progress.  Control-flow instructions participate too — a
candidate that breaks structural validity simply fails the repro check
(``Kernel.validate`` rejects it inside the oracle) and is discarded, so
no special-casing of branches is needed beyond skipping terminators that
validation forces us to keep.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Callable, List, Optional, Sequence

from repro.fuzz.generator import FuzzCase
from repro.ir.parser import parse_kernel
from repro.ir.printer import print_kernel


def instruction_count(kernel_text: str) -> int:
    kernel = parse_kernel(kernel_text)
    return sum(len(blk.instructions) for blk in kernel.blocks)


def _drop_positions(
    kernel_text: str, positions: Sequence[int]
) -> Optional[str]:
    """Kernel text with the flat instruction ``positions`` removed, or
    ``None`` when the result is not even structurally valid."""
    kernel = parse_kernel(kernel_text)
    drop = set(positions)
    flat = 0
    for blk in kernel.blocks:
        kept = []
        for inst in blk.instructions:
            if flat not in drop:
                kept.append(inst)
            flat += 1
        blk.instructions = kept
    # Blocks may now be empty; that is fine (fall-through) except for a
    # final falling-through block, which validate() rejects below.
    try:
        kernel.validate()
    except ValueError:
        return None
    return print_kernel(kernel)


def reduce_case(
    case: FuzzCase,
    check: Callable[[FuzzCase], bool],
    max_checks: int = 400,
) -> FuzzCase:
    """Shrink ``case`` while ``check`` (same-fingerprint repro) holds.

    ``check`` receives a candidate case and must return True iff the
    original failure reproduces with an identical fingerprint.  The
    returned case is the smallest reproducer found within ``max_checks``
    oracle invocations (the original case if nothing could be removed).
    """
    current = case
    checks = 0

    def try_candidate(text: str) -> Optional[FuzzCase]:
        nonlocal checks
        if checks >= max_checks:
            return None
        candidate = _dc_replace(current, kernel_text=text)
        checks += 1
        return candidate if check(candidate) else None

    n = 2
    while True:
        count = instruction_count(current.kernel_text)
        if count <= 1:
            break
        n = min(n, count)
        chunk = max(1, count // n)
        progress = False
        start = 0
        while start < count:
            positions = list(range(start, min(start + chunk, count)))
            text = _drop_positions(current.kernel_text, positions)
            if text is not None and text != current.kernel_text:
                candidate = try_candidate(text)
                if candidate is not None:
                    current = candidate
                    progress = True
                    break  # counts shifted; restart the scan
            start += chunk
        if checks >= max_checks:
            break
        if progress:
            n = max(2, n - 1)
            continue
        if chunk == 1:
            break  # single-instruction granularity exhausted
        n = min(count, n * 2)
    return current
