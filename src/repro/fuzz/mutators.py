"""Seeded IR mutations over fuzz cases.

Mutators work on the *structural* IR (parse → mutate → print), so a
mutant is always syntactically well-formed PTX text; what a mutation may
break is kernel-level validity (``Kernel.validate``) or memory safety at
runtime.  Both are expected fuzz outcomes, not bugs: the oracle records
them as ``invalid_case`` / ``baseline_skip`` and moves on.  What mutation
buys is coverage the generator's safe-by-construction grammar cannot
reach — dead stores, duplicated defs, perturbed immediates, flipped
guards — each of which reshapes liveness, hazards, and slices.

The one invariant mutators must *preserve* is the generator's race-free
memory layout: a mutation that changes which address an instruction
touches (or how often an address-feeding register is bumped) can make
two threads share a word, and a racy kernel fails the differential
oracle for scheduling reasons, not compiler bugs.  So every mutator
skips instructions whose destination transitively feeds a memory
address (:func:`_address_taint`), and barriers are never dropped.
"""

from __future__ import annotations

import random
from dataclasses import replace as _dc_replace
from typing import FrozenSet, List, Optional, Tuple

from repro.fuzz.generator import FuzzCase
from repro.ir.instructions import Alu, Bar, Bra, Instruction, Ld, Ret, St
from repro.ir.module import Kernel
from repro.ir.parser import parse_kernel
from repro.ir.printer import print_kernel
from repro.ir.types import Imm, Reg

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "min", "max"})
_SWAPPABLE = ("add", "sub", "mul", "min", "max", "and", "or", "xor")
_INTERESTING = (0, 1, 2, 3, 4, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF)


def _flat(kernel: Kernel) -> List[Tuple[int, int, Instruction]]:
    out = []
    for bi, blk in enumerate(kernel.blocks):
        for ii, inst in enumerate(blk.instructions):
            out.append((bi, ii, inst))
    return out


def _address_taint(kernel: Kernel) -> FrozenSet[str]:
    """Names of registers that transitively feed a memory address."""
    tainted = set()
    insts = [inst for _, _, inst in _flat(kernel)]
    for inst in insts:
        if isinstance(inst, (Ld, St)) and isinstance(inst.base, Reg):
            tainted.add(inst.base.name)
    changed = True
    while changed:
        changed = False
        for inst in insts:
            if any(r.name in tainted for r in inst.defs()):
                for r in inst.reg_uses():
                    if r.name not in tainted:
                        tainted.add(r.name)
                        changed = True
    return frozenset(tainted)


def _untainted(inst: Instruction, taint: FrozenSet[str]) -> bool:
    return not any(r.name in taint for r in inst.defs())


def _mut_tweak_immediate(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    candidates = []
    for bi, ii, inst in _flat(kernel):
        if isinstance(inst, Alu) and _untainted(inst, taint):
            for si, src in enumerate(inst.srcs):
                if isinstance(src, Imm) and not src.dtype.is_float:
                    candidates.append((inst, si, src))
    if not candidates:
        return None
    inst, si, src = candidates[rng.randrange(len(candidates))]
    if rng.random() < 0.5:
        value = rng.choice(_INTERESTING)
    else:
        value = (int(src.value) + rng.choice((-2, -1, 1, 2))) & 0xFFFFFFFF
    inst.srcs[si] = Imm(value, src.dtype)
    return f"imm:{value:#x}"


def _mut_swap_operands(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    candidates = [
        inst
        for _, _, inst in _flat(kernel)
        if isinstance(inst, Alu)
        and len(inst.srcs) >= 2
        and _untainted(inst, taint)
    ]
    if not candidates:
        return None
    inst = candidates[rng.randrange(len(candidates))]
    inst.srcs[0], inst.srcs[1] = inst.srcs[1], inst.srcs[0]
    sem = "commutes" if inst.op in _COMMUTATIVE else "changes"
    return f"swap:{inst.op}:{sem}"


def _mut_change_op(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    candidates = [
        inst
        for _, _, inst in _flat(kernel)
        if isinstance(inst, Alu)
        and inst.op in _SWAPPABLE
        and not inst.dtype.is_float
        and len(inst.srcs) == 2
        and _untainted(inst, taint)
    ]
    if not candidates:
        return None
    inst = candidates[rng.randrange(len(candidates))]
    old = inst.op
    inst.op = rng.choice([op for op in _SWAPPABLE if op != old])
    return f"op:{old}->{inst.op}"


def _mut_dup_inst(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    # duplicating an address-feeding def is NOT idempotent (a counter
    # bump twice per trip shifts every address it derives), hence the
    # taint filter even though the copy computes "the same thing"
    candidates = [
        (bi, ii, inst)
        for bi, ii, inst in _flat(kernel)
        if isinstance(inst, (Alu, Ld, St)) and _untainted(inst, taint)
    ]
    if not candidates:
        return None
    bi, ii, inst = candidates[rng.randrange(len(candidates))]
    # Re-parsing yields a structurally fresh copy sharing no operands.
    kernel.blocks[bi].instructions.insert(ii, inst)
    return f"dup:{type(inst).__name__.lower()}"


def _mut_drop_inst(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    # barriers stay: dropping one un-synchronizes the shared-memory
    # neighbour exchange and the diff oracle would see the race, not a bug
    candidates = [
        (bi, ii, inst)
        for bi, ii, inst in _flat(kernel)
        if not isinstance(inst, (Bra, Ret, Bar))
        and _untainted(inst, taint)
    ]
    if not candidates:
        return None
    bi, ii, inst = candidates[rng.randrange(len(candidates))]
    del kernel.blocks[bi].instructions[ii]
    return f"drop:{type(inst).__name__.lower()}"


def _mut_flip_guard(
    kernel: Kernel, rng: random.Random, taint: FrozenSet[str]
) -> Optional[str]:
    candidates = [
        inst for _, _, inst in _flat(kernel) if inst.guard is not None
    ]
    if not candidates:
        return None
    inst = candidates[rng.randrange(len(candidates))]
    reg, sense = inst.guard
    inst.guard = (reg, not sense)
    return f"guard:!{reg.name}"


_MUTATORS = (
    _mut_tweak_immediate,
    _mut_swap_operands,
    _mut_change_op,
    _mut_dup_inst,
    _mut_drop_inst,
    _mut_flip_guard,
)


def mutate_case(
    case: FuzzCase, seed: int, rounds: int = 2
) -> FuzzCase:
    """Apply ``rounds`` seeded mutations to ``case``'s kernel.

    Always returns a *new* case (the input is never touched) whose
    ``mutations`` log records what was applied.  Individual mutators can
    decline (no candidate sites); declined rounds are skipped.
    """
    rng = random.Random(seed)
    kernel = parse_kernel(case.kernel_text)
    taint = _address_taint(kernel)
    applied: List[str] = []
    for _ in range(rounds):
        mut = _MUTATORS[rng.randrange(len(_MUTATORS))]
        tag = mut(kernel, rng, taint)
        if tag is not None:
            applied.append(tag)
    text = print_kernel(kernel)
    return _dc_replace(
        case,
        kernel_text=text,
        mutations=list(case.mutations) + applied,
    )
