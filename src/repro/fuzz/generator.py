"""Seeded grammar-based kernel generation.

:func:`generate_case` derives everything — kernel structure, launch
geometry, buffer contents — from one integer seed through
``random.Random``, so a case reproduces bit-identically from its seed on
any platform (the property the resumable corpus and the reducer rely on).

Generated kernels are *safe by construction*:

- every memory access lands inside a parameter buffer (global thread ids
  are bounded by the launch, offsets by the buffer size);
- global memory is race-free: each buffer is split into per-thread *home*
  words ``[0, T)``, per-thread *scratch* words ``[T, 2T)`` (``T`` = total
  threads; thread ``g`` only ever stores words ``g`` and ``T+g``) and a
  read-only tail ``[2T, buffer_words)`` that loop loads target — so no
  word is written by one thread and touched by another, and re-executing
  a region after fault recovery cannot observe a different interleaving
  (Penny's contract only covers race-free kernels);
- every loop has an immediate trip count (2–4) on a dedicated counter
  register no other instruction overwrites;
- barriers are only emitted while control flow is still uniform (before
  the first tid-dependent branch);
- registers are always defined before use on every path.

Within those constraints the generator aims squarely at the compiler's
hard parts: registers are *redefined* across region boundaries (overwrite
hazards → renaming/coloring), accumulators are loop-carried (live-ins at
loop headers), and loads feed address arithmetic (slice-based pruning).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpusim.memory import MemoryImage
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel
from repro.ir.parser import parse_kernel
from repro.ir.printer import print_kernel

#: ops safe on arbitrary u32 values (div/rem handle 0 in the simulator,
#: but we keep them off the random pool to avoid trivially-masked lanes)
_MIX_OPS = ("add", "sub", "mul", "and", "or", "xor", "min", "max")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs bounding the generated kernels."""

    #: must cover 2 * (max_block * max_grid) private words + the loop
    #: read-only tail (see the race-freedom notes in the module docstring)
    buffer_words: int = 160
    max_buffers: int = 3
    min_segments: int = 3
    max_segments: int = 6
    max_block: int = 32
    max_grid: int = 2
    allow_shared: bool = True
    allow_float: bool = True


@dataclass
class FuzzCase:
    """One self-contained fuzz input: kernel text + launch + memory plan.

    ``buffers`` maps pointer-param name to its initial words; scalars map
    name to value.  :meth:`make_memory` rebuilds identical memory images
    for the baseline and the protected run.
    """

    seed: int
    kernel_text: str
    block: int
    grid: int
    buffers: Dict[str, List[int]] = field(default_factory=dict)
    scalars: Dict[str, int] = field(default_factory=dict)
    mutations: List[str] = field(default_factory=list)

    def kernel(self) -> Kernel:
        return parse_kernel(self.kernel_text)

    @property
    def total_threads(self) -> int:
        return self.block * self.grid

    def make_memory(self) -> Tuple[MemoryImage, Dict[str, Tuple[int, int]]]:
        """Fresh memory image + ``{buffer: (addr, words)}`` output map.

        Allocation order is the sorted buffer-name order, so addresses are
        identical across rebuilds of the same case.
        """
        mem = MemoryImage()
        out: Dict[str, Tuple[int, int]] = {}
        for name in sorted(self.buffers):
            words = self.buffers[name]
            addr = mem.alloc_global(len(words))
            mem.upload(addr, words)
            mem.set_param(name, addr)
            out[name] = (addr, len(words))
        for name, value in sorted(self.scalars.items()):
            mem.set_param(name, value)
        return mem, out

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "kernel_text": self.kernel_text,
            "block": self.block,
            "grid": self.grid,
            "buffers": self.buffers,
            "scalars": self.scalars,
            "mutations": self.mutations,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "FuzzCase":
        return cls(
            seed=d["seed"],
            kernel_text=d["kernel_text"],
            block=d["block"],
            grid=d["grid"],
            buffers={k: list(v) for k, v in d.get("buffers", {}).items()},
            scalars=dict(d.get("scalars", {})),
            mutations=list(d.get("mutations", [])),
        )


class _Gen:
    """One generation run (all state threaded through ``self.rng``)."""

    def __init__(self, seed: int, config: GeneratorConfig):
        self.seed = seed
        self.cfg = config
        self.rng = random.Random(seed)
        self.uniform = True  # no tid-dependent branch emitted yet
        self.pool: List = []  # overwritable u32 value registers
        self.protected: List = []  # never overwritten (bases, gtid, ...)
        self.label_n = 0
        self.total_threads = 0  # set by build(); the T of the layout

    def _label(self, stem: str) -> str:
        self.label_n += 1
        return f"{stem}{self.label_n}"

    def _pick(self):
        return self.pool[self.rng.randrange(len(self.pool))]

    def _any_value(self):
        regs = self.pool + self.protected
        return regs[self.rng.randrange(len(regs))]

    def _dst(self):
        """Half the time overwrite an existing pool register (hazard
        pressure), otherwise define a fresh one."""
        if self.pool and self.rng.random() < 0.5:
            return self._pick()
        return None

    def build(self) -> FuzzCase:
        rng, cfg = self.rng, self.cfg
        block = rng.choice([4, 8, 16, min(32, cfg.max_block)])
        grid = rng.randint(1, cfg.max_grid)
        self.total_threads = block * grid
        if cfg.buffer_words < 2 * self.total_threads + 4:
            raise ValueError(
                f"buffer_words={cfg.buffer_words} too small for "
                f"{self.total_threads} threads (race-free layout needs "
                f"2*T+4 words)"
            )
        nbuf = rng.randint(1, cfg.max_buffers)
        buf_names = [chr(ord("A") + i) for i in range(nbuf)]
        params = [(n, "ptr") for n in buf_names] + [("k", "u32")]
        shared = []
        use_shared = cfg.allow_shared and rng.random() < 0.5
        if use_shared:
            shared = [("smem", block)]

        b = KernelBuilder(f"fz_{self.seed & 0xFFFFFF:06x}", params=params,
                          shared=shared)
        tid = b.special_u32("%tid.x")
        ctaid = b.special_u32("%ctaid.x")
        ntid = b.special_u32("%ntid.x")
        gtid = b.mad(ctaid, ntid, tid)
        bases = {n: b.ld_param(n) for n in buf_names}
        kreg = b.ld_param("k")
        self.protected = [gtid, tid, kreg] + list(bases.values())

        # Seed the value pool with per-thread data from each buffer.
        addr0 = {}
        for n in buf_names:
            addr0[n] = b.mad(gtid, 4, bases[n])
            self.protected.append(addr0[n])
            self.pool.append(b.ld("global", addr0[n], dtype="u32"))
        self.pool.append(b.mov(rng.randrange(1, 64)))

        segments = rng.randint(cfg.min_segments, cfg.max_segments)
        emitters = [self._seg_straight, self._seg_loop, self._seg_memop]
        if use_shared:
            emitters.append(self._seg_shared)
        emitters.append(self._seg_cond)
        if cfg.allow_float:
            emitters.append(self._seg_float)
        for _ in range(segments):
            emit = emitters[rng.randrange(len(emitters))]
            emit(b, buf_names, bases, addr0, block, gtid)

        # Final result store: fold the pool into buffer 0 at the thread's
        # home slot, so every surviving computation is observable.
        acc = self.pool[0]
        for v in self.pool[1:3]:
            acc = b.xor(acc, v)
        b.st("global", addr0[buf_names[0]], acc)
        b.ret()
        kernel = b.finish()

        buffers = {
            n: [rng.getrandbits(32) for _ in range(cfg.buffer_words)]
            for n in buf_names
        }
        return FuzzCase(
            seed=self.seed,
            kernel_text=print_kernel(kernel),
            block=block,
            grid=grid,
            buffers=buffers,
            scalars={"k": rng.randrange(1, 17)},
        )

    # -- segments ---------------------------------------------------------------

    def _seg_straight(self, b, bufs, bases, addr0, block, gtid) -> None:
        for _ in range(self.rng.randint(3, 8)):
            op = self.rng.choice(_MIX_OPS)
            a, c = self._pick(), self._any_value()
            if self.rng.random() < 0.3:
                c = self.rng.randrange(0, 1 << 16)
            dst = b._alu(op, "u32", [a, c], self._dst())
            if dst not in self.pool:
                self.pool.append(dst)
        if self.rng.random() < 0.5:
            sh = b.shl(self._pick(), self.rng.randrange(0, 5))
            self.pool.append(sh)

    def _seg_loop(self, b, bufs, bases, addr0, block, gtid) -> None:
        trip = self.rng.randint(2, 4)
        i = b.mov(0, dst=b.reg("u32"))
        head, exit_ = self._label("LOOP"), self._label("LEXIT")
        acc = self._pick()
        b.label(head)
        p = b.setp("ge", i, trip)
        b.bra(exit_, pred=p)
        for _ in range(self.rng.randint(1, 3)):
            op = self.rng.choice(_MIX_OPS)
            b._alu(op, "u32", [acc, self._any_value()], acc)
        if self.rng.random() < 0.5:
            # loop-carried load from the read-only tail: word 2T+i is
            # never stored by any thread, so the value is schedule- and
            # rollback-independent
            n = bufs[self.rng.randrange(len(bufs))]
            off = b.shl(i, 2)
            la = b.add(bases[n], off)
            v = b.ld("global", la, offset=8 * self.total_threads,
                     dtype="u32")
            b._alu("add", "u32", [acc, v], acc)
        b.add(i, 1, dst=i)
        b.bra(head)
        b.label(exit_)

    def _seg_cond(self, b, bufs, bases, addr0, block, gtid) -> None:
        skip = self._label("SKIP")
        bound = self.rng.randrange(1, block * 2)
        p = b.setp("ge", gtid, bound)
        b.bra(skip, pred=p)
        for _ in range(self.rng.randint(2, 4)):
            op = self.rng.choice(_MIX_OPS)
            # Only overwrite already-initialized registers here: a fresh
            # register defined under the guard would be read-before-write
            # for every thread that branches around this block, and a
            # register without a dominating write cannot be protected
            # (there is nothing to checkpoint, so recovery can never
            # clear a fault landing in it).
            b._alu(op, "u32", [self._pick(), self._any_value()],
                   self._pick())
        b.label(skip)
        self.uniform = False

    def _seg_memop(self, b, bufs, bases, addr0, block, gtid) -> None:
        # store/reload through one of the thread's two private words:
        # home (word gtid, offset 0) or scratch (word T+gtid)
        n = bufs[self.rng.randrange(len(bufs))]
        off = self.rng.choice([0, 4 * self.total_threads])
        b.st("global", addr0[n], self._pick(), offset=off)
        v = b.ld("global", addr0[n], offset=off, dtype="u32")
        self.pool.append(v)

    def _seg_shared(self, b, bufs, bases, addr0, block, gtid) -> None:
        if not self.uniform:
            return  # a barrier after divergence could livelock
        smem = b.addr_of("smem")
        sa = b.mad(b.special_u32("%tid.x"), 4, smem)
        b.st("shared", sa, self._pick())
        b.bar()
        # neighbour read: (tid + 1) mod block stays in the array
        t1 = b.add(b.special_u32("%tid.x"), 1)
        tm = b.rem(t1, block)
        na = b.mad(tm, 4, smem)
        v = b.ld("shared", na, dtype="u32")
        b.bar()
        self.pool.append(v)

    def _seg_float(self, b, bufs, bases, addr0, block, gtid) -> None:
        f = b.cvt(self._pick(), "f32")
        g = b.cvt(gtid, "f32")
        h = b.fma(f, 0.5, g)
        if self.rng.random() < 0.5:
            h = b._alu(self.rng.choice(("add", "mul", "max")), "f32", [h, g])
        back = b.cvt(h, "u32")
        self.pool.append(b.and_(back, 0xFFFF))


def generate_case(
    seed: int, config: Optional[GeneratorConfig] = None
) -> FuzzCase:
    """Generate the (deterministic) fuzz case for ``seed``."""
    return _Gen(seed, config or GeneratorConfig()).build()
