"""The fuzz campaign driver.

Mirrors the fault-injection campaign engine's architecture
(:mod:`repro.gpusim.campaign`): a pure-data :class:`FuzzSpec` from which
worker processes rebuild everything, deterministic per-iteration SHA-256
seeding (iteration ``i`` of a campaign produces the same case and the
same oracle verdict no matter which worker runs it, or whether any
worker runs it twice), and an optional crash-safe JSONL finding corpus.

Reduction runs in the parent after the sweep: one representative per
triage bucket is shrunk with the ddmin reducer under a same-fingerprint
repro check.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import repro.obs as obs
from repro.fuzz.generator import FuzzCase, GeneratorConfig, generate_case
from repro.fuzz.mutators import mutate_case
from repro.fuzz.oracle import run_case
from repro.fuzz.reducer import instruction_count, reduce_case
from repro.fuzz.triage import Finding, TriageCorpus, fingerprint
from repro.gpusim.campaign import stable_seed
from repro.runtime.errors import TaskRuntimeError
from repro.runtime.pool import PoolConfig, WorkerPool

#: per-iteration outcome labels (findings carry their stage separately)
OUTCOME_OK = "ok"
OUTCOME_INVALID = "invalid_case"
OUTCOME_BASELINE_SKIP = "baseline_skip"
OUTCOME_FINDING = "finding"
#: the worker running the iteration died (segfault, OOM-kill, hang):
#: recorded as a Finding with the generating seed instead of vanishing
OUTCOME_HARNESS_CRASH = "harness_crash"


@dataclass(frozen=True)
class FuzzSpec:
    """Everything a worker needs to run any iteration of a campaign."""

    iterations: int = 100
    seed: int = 2020
    scheme: str = "Penny"
    strict: bool = False
    fault: bool = True
    mutate_rate: float = 0.3
    mutate_rounds: int = 2
    buffer_words: int = 160
    backend: str = "auto"  # executor engine: auto | scalar | vector
    cross_check: bool = False  # re-run zero-fault on the other backend

    def __post_init__(self):
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if not 0.0 <= self.mutate_rate <= 1.0:
            raise ValueError("mutate_rate must be in [0, 1]")
        if self.backend not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown executor backend {self.backend!r}")

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "FuzzSpec":
        return cls(**d)

    def generator_config(self) -> GeneratorConfig:
        return GeneratorConfig(buffer_words=self.buffer_words)

    def case_for_iteration(self, index: int) -> FuzzCase:
        """Deterministically build iteration ``index``'s case."""
        import random

        case_seed = stable_seed(self.seed, index)
        case = generate_case(case_seed, self.generator_config())
        rng = random.Random(stable_seed(self.seed, index) ^ 0x5EED)
        if rng.random() < self.mutate_rate:
            case = mutate_case(
                case, rng.getrandbits(32), rounds=self.mutate_rounds
            )
        return case


@dataclass
class FuzzReport:
    """Aggregated sweep results."""

    spec: Optional[FuzzSpec] = None
    outcomes: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def iterations_run(self) -> int:
        return sum(self.outcomes.values())

    def buckets(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for f in self.findings:
            out.setdefault(f.fingerprint, []).append(f)
        return out

    def summary(self) -> Dict[str, Any]:
        return {
            "iterations": self.iterations_run,
            "findings": len(self.findings),
            "buckets": len(self.buckets()),
            **{
                f"outcome.{k}": v for k, v in sorted(self.outcomes.items())
            },
        }

    def to_dict(self) -> Dict:
        return {
            "kind": "fuzz_report",
            "spec": self.spec.to_dict() if self.spec else None,
            "outcomes": dict(sorted(self.outcomes.items())),
            "buckets": {
                fp: {
                    "count": len(fs),
                    "stage": fs[0].stage,
                    "pass": fs[0].pass_name,
                    "exc_type": fs[0].exc_type,
                    "example_seed": fs[0].seed,
                    "reduced_instructions": fs[0].reduced_instructions,
                    "original_instructions": fs[0].original_instructions,
                }
                for fp, fs in sorted(self.buckets().items())
            },
        }


def _run_iteration(spec: FuzzSpec, index: int) -> Dict:
    """One iteration → a plain-data record (process-boundary safe)."""
    case_seed = stable_seed(spec.seed, index)
    with obs.span(
        "fuzz.iteration",
        iteration=index,
        seed=case_seed,
        scheme=spec.scheme,
    ) as it_span:
        case = spec.case_for_iteration(index)
        result = run_case(
            case,
            scheme=spec.scheme,
            strict=spec.strict,
            fault=spec.fault,
            iteration=index,
            backend=spec.backend,
            cross_check=spec.cross_check,
        )
        it_span.tag(outcome=result.status)
    obs.inc(f"fuzz.outcome.{result.status}")
    record: Dict = {"index": index, "outcome": result.status}
    if result.finding is not None:
        obs.inc("fuzz.findings")
        record["finding"] = dataclasses.asdict(result.finding)
    return record


_WORKER_SPEC: Optional[FuzzSpec] = None


def _pool_runner(payload: Dict) -> Dict:
    """The supervised pool's task runner: one fuzz iteration per call
    (the spec is cached per worker process)."""
    global _WORKER_SPEC
    spec = FuzzSpec.from_dict(payload["spec"])
    if _WORKER_SPEC != spec:
        _WORKER_SPEC = spec
    return _run_iteration(_WORKER_SPEC, int(payload["index"]))


def _crash_finding(
    spec: FuzzSpec, index: int, exc: TaskRuntimeError
) -> Finding:
    """A worker death mid-iteration, triaged like any other failure.

    ``case`` is empty — the worker died before the case could be
    serialized back — but ``seed`` is the generating seed, so
    ``spec.case_for_iteration(index)`` (or ``penny fuzz --seed``)
    rebuilds the exact input that killed the worker.
    """
    exc_type = type(exc).__name__
    message = getattr(exc, "message", str(exc))
    return Finding(
        iteration=index,
        seed=stable_seed(spec.seed, index),
        stage=OUTCOME_HARNESS_CRASH,
        exc_type=exc_type,
        pass_name="harness",
        message=message,
        fingerprint=fingerprint(
            OUTCOME_HARNESS_CRASH, exc_type, "harness", message
        ),
        case={},
        error=exc.to_dict() if hasattr(exc, "to_dict") else {},
    )


class FuzzRunner:
    """Runs a :class:`FuzzSpec`, optionally in parallel on the
    supervised worker pool, then triages (and optionally reduces) the
    findings.

    A worker that dies mid-iteration (previously: the iteration silently
    vanished from a ``multiprocessing.Pool`` sweep, or aborted it) is
    retried; past ``poison_threshold`` consecutive deaths the iteration
    is recorded as a :class:`Finding` with stage ``harness_crash`` and
    the generating seed — crash opacity was itself a finding-shaped bug.
    """

    def __init__(
        self,
        spec: FuzzSpec,
        workers: int = 1,
        journal_path: Optional[str] = None,
        *,
        use_threads: bool = False,
        wall_timeout: Optional[float] = None,
        poison_threshold: int = 2,
    ):
        self.spec = spec
        self.workers = max(1, workers)
        self.journal_path = journal_path
        self.use_threads = use_threads
        self.wall_timeout = wall_timeout
        self.poison_threshold = poison_threshold

    def run(self, reduce: bool = False) -> FuzzReport:
        with obs.span(
            "fuzz.run",
            iterations=self.spec.iterations,
            seed=self.spec.seed,
            scheme=self.spec.scheme,
            workers=self.workers,
        ) as run_span:
            report = self._run(reduce)
            run_span.tag(findings=len(report.findings))
        return report

    def _run(self, reduce: bool) -> FuzzReport:
        report = FuzzReport(spec=self.spec)
        corpus = TriageCorpus(self.journal_path)
        try:
            for record in self._execute(range(self.spec.iterations)):
                outcome = record["outcome"]
                report.outcomes[outcome] = (
                    report.outcomes.get(outcome, 0) + 1
                )
                if "finding" in record:
                    finding = Finding(**record["finding"])
                    report.findings.append(finding)
            if reduce and report.findings:
                self._reduce_buckets(report)
            # Corpus entries are written once, post-reduction, so the
            # journal carries the shrunk reproducers.
            for finding in report.findings:
                corpus.append(finding)
        finally:
            corpus.close()
        return report

    def _execute(self, todo: Sequence[int]) -> Iterable[Dict]:
        if self.workers <= 1 or len(todo) <= 1:
            for i in todo:
                yield _run_iteration(self.spec, i)
            return
        config = PoolConfig(
            workers=self.workers,
            use_threads=self.use_threads,
            runner="repro.fuzz.harness:_pool_runner",
            job_timeout=self.wall_timeout,
            poison_threshold=self.poison_threshold,
            chaos_site="campaign.worker",
            tick=0.005,
        )
        spec_dict = self.spec.to_dict()
        jobs = ((str(i), {"spec": spec_dict, "index": i}) for i in todo)
        with WorkerPool(config) as pool:
            for key, outcome in pool.imap_supervised(jobs):
                index = int(key)
                if isinstance(outcome, TaskRuntimeError):
                    obs.inc("fuzz.harness_crashes")
                    finding = _crash_finding(self.spec, index, outcome)
                    yield {
                        "index": index,
                        "outcome": OUTCOME_HARNESS_CRASH,
                        "finding": dataclasses.asdict(finding),
                    }
                else:
                    yield outcome

    # -- reduction ----------------------------------------------------------------

    def _reduce_buckets(self, report: FuzzReport) -> None:
        """ddmin the first finding of every bucket in-place."""
        for fp, findings in report.buckets().items():
            rep = findings[0]
            if not rep.case:
                continue  # harness_crash: no case to shrink (seed only)
            case = rep.fuzz_case()
            original = instruction_count(case.kernel_text)

            def reproduces(candidate: FuzzCase) -> bool:
                result = run_case(
                    candidate,
                    scheme=self.spec.scheme,
                    strict=self.spec.strict,
                    fault=self.spec.fault,
                    iteration=rep.iteration,
                    backend=self.spec.backend,
                    cross_check=self.spec.cross_check,
                )
                return (
                    result.finding is not None
                    and result.finding.fingerprint == fp
                )

            reduced = reduce_case(case, reproduces)
            rep.original_instructions = original
            rep.reduced_instructions = instruction_count(
                reduced.kernel_text
            )
            rep.reduced_kernel = reduced.kernel_text


def run_fuzz(
    spec: FuzzSpec,
    workers: int = 1,
    journal_path: Optional[str] = None,
    reduce: bool = False,
    **kwargs: Any,
) -> FuzzReport:
    """Convenience wrapper mirroring :func:`repro.gpusim.campaign.run_campaign`
    (``kwargs`` pass through to :class:`FuzzRunner` — ``use_threads``,
    ``wall_timeout``, ``poison_threshold``)."""
    return FuzzRunner(
        spec, workers=workers, journal_path=journal_path, **kwargs
    ).run(reduce=reduce)
