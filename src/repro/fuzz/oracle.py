"""The differential oracle.

For one :class:`FuzzCase` the oracle checks, in order:

1. **Validity** — the kernel parses and validates (mutants may not;
   that is an ``invalid_case`` outcome, not a finding).  The static
   analyzer then runs as its own subject under test: a rule crash is a
   finding on any case, and an error-severity diagnostic on a
   pure-generated (unmutated) kernel is a *false-error* finding.
2. **Baseline** — the *unprotected* kernel runs to completion on the
   functional simulator.  A baseline crash means the case itself is bad
   (``baseline_skip``), again not a compiler bug.
3. **Compilation** — the Penny compiler protects the kernel.  In
   ``strict=False`` mode *any* exception is a finding (the fallback
   lattice promised never to raise); in ``strict=True`` mode typed
   ``CompileError``\\ s and bare crashes alike are findings.
4. **Static verification** — ``verify_compiled`` must be clean.
5. **Zero-fault differential** — the protected kernel's final buffer
   contents must equal the baseline's exactly.
6. **Fault recovery** — under a deterministically-seeded single-bit
   register-file fault (same SHA-256 per-index seeding as the campaign
   engine) the protected kernel must finish with the baseline's output:
   a mismatch is silent data corruption, a simulator exception is a
   detected-unrecoverable failure; both break the paper's guarantee.

With ``cross_check=True`` a seventh stage re-runs the protected
zero-fault execution on the *other* executor backend and demands a
bit-identical :class:`ExecutionResult` and output buffers — the fuzzer
then differentially tests the lane-parallel engine against the scalar
oracle on every generated kernel, for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import CompileError, FallbackExhaustedError
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.schemes import scheme_config
from repro.core.verify import verify_compiled
from repro.fuzz.generator import FuzzCase
from repro.fuzz.triage import Finding, fingerprint
from repro.gpusim.backend import make_executor, resolve_backend
from repro.gpusim.campaign import stable_seed
from repro.gpusim.executor import Launch, SimulationError
from repro.gpusim.faults import FaultPlan
from repro.gpusim.memory import MemoryError32

#: instruction budget for the unprotected baseline (generated kernels are
#: tiny; a mutant that spins past this is discarded, not reported)
BASELINE_BUDGET = 300_000
#: protected-run budget: checkpoints + recoveries inflate the dynamic
#: count, but far less than this multiplier
PROTECTED_BUDGET_FACTOR = 50
PROTECTED_BUDGET_FLOOR = 50_000


@dataclass
class CaseResult:
    """Outcome of one oracle evaluation."""

    status: str  # "ok" | "invalid_case" | "baseline_skip" | "finding"
    finding: Optional[Finding] = None
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_finding(self) -> bool:
        return self.status == "finding"


def _reads_uninitialized(kernel) -> bool:
    """True when some path reaches a register read with no prior write
    (a *definitely-assigned* dataflow analysis over the CFG).

    The generator never produces such kernels, but mutation can (drop
    the defining instruction, flip a branch guard so a defining block is
    skipped).  The baseline tolerates the result — uninitialized
    registers read as zero — but the protection contract cannot hold: a
    register with no dominating write has no checkpoint, so a fault
    landing in it is restored by nothing and recovery loops until the
    budget trips.  Such kernels are undefined-behavior inputs and must
    be discarded as ``invalid_case``, never reported as findings.

    Delegates to the analyzer's shared dataflow engine
    (:func:`repro.lint.dataflow.uninitialized_reads`), the same
    must-analysis that backs the ``uninit-read`` lint rule — one engine,
    one definition of "definitely assigned".
    """
    from repro.analysis.cfg import CFG
    from repro.lint.dataflow import uninitialized_reads

    return bool(uninitialized_reads(CFG(kernel)))


def _run_analyzer(case: FuzzCase, kernel, iteration: int):
    """Run the pre-compile analyzer over one case; returns a finding or
    ``None`` (see the stage-1b comment in :func:`run_case`)."""
    from repro.lint import AnalyzerError, lint_kernel

    try:
        report = lint_kernel(kernel)
    except AnalyzerError as exc:
        return _make_finding(
            iteration,
            case,
            "lint",
            message=f"analyzer crashed in rule {exc.rule_id}: {exc}",
            exc_type="AnalyzerCrash",
            pass_name="lint",
        )
    if case.mutations:
        return None
    errors = report.errors
    if errors:
        return _make_finding(
            iteration,
            case,
            "lint",
            message="false error on generated kernel: "
            + "; ".join(d.plain() for d in errors[:5]),
            exc_type="LintFalseError",
            pass_name="lint",
        )
    return None


def _resolve_config(scheme: Union[str, PennyConfig]) -> PennyConfig:
    if isinstance(scheme, PennyConfig):
        return scheme
    return scheme_config(scheme)


def _error_fields(exc: BaseException) -> Tuple[str, str, str]:
    """(exc_type, pass_name, message) for fingerprinting.

    A :class:`FallbackExhaustedError` is bucketed by its *terminal* cause:
    the lattice exhausting is the symptom, the pass that killed the last
    rung is the bug.
    """
    if isinstance(exc, FallbackExhaustedError) and exc.terminal_cause:
        cause = exc.terminal_cause
        ctype, cpass, _ = _error_fields(cause)
        return ctype, cpass, str(cause)
    if isinstance(exc, CompileError):
        return type(exc).__name__, exc.pass_name, exc.message
    return type(exc).__name__, "unknown", str(exc)


def _make_finding(
    iteration: int,
    case: FuzzCase,
    stage: str,
    exc: Optional[BaseException] = None,
    message: Optional[str] = None,
    exc_type: str = "OracleMismatch",
    pass_name: str = "oracle",
) -> Finding:
    if exc is not None:
        exc_type, pass_name, message = _error_fields(exc)
    error = exc.to_dict() if isinstance(exc, CompileError) else {
        "type": exc_type,
        "message": message,
    }
    return Finding(
        iteration=iteration,
        seed=case.seed,
        stage=stage,
        exc_type=exc_type,
        pass_name=pass_name,
        message=message or "",
        fingerprint=fingerprint(stage, exc_type, pass_name, message or ""),
        case=case.to_dict(),
        error={k: v for k, v in error.items() if k != "kernel_ptx"},
    )


def _download_outputs(mem, out_map) -> List[Tuple[str, List[int]]]:
    return [
        (name, mem.download(addr, words))
        for name, (addr, words) in sorted(out_map.items())
    ]


def run_case(
    case: FuzzCase,
    scheme: Union[str, PennyConfig] = "Penny",
    strict: bool = False,
    fault: bool = True,
    iteration: int = 0,
    backend: str = "auto",
    cross_check: bool = False,
) -> CaseResult:
    """Run the full differential oracle over one case."""
    stats: Dict[str, float] = {}
    backend = resolve_backend(backend)

    # 1. validity
    try:
        kernel = case.kernel()
        kernel.validate()
    except ValueError:
        return CaseResult(status="invalid_case", stats=stats)
    if _reads_uninitialized(kernel):
        return CaseResult(status="invalid_case", stats=stats)

    # 1b. the static analyzer rides along as its own subject under test.
    # A rule crash on any valid kernel is an analyzer bug (stage
    # ``lint``); an *error*-severity diagnostic on a pure-generated
    # kernel is a false positive — the generator only emits well-formed,
    # race-free, convergent kernels — so that is a finding too.  Mutants
    # may legitimately trip rules (that is what the rules are for), so
    # for them only crashes count.
    lint_finding = _run_analyzer(case, kernel, iteration)
    if lint_finding is not None:
        return CaseResult(
            status="finding", finding=lint_finding, stats=stats
        )

    launch = Launch(grid=case.grid, block=case.block)
    launch_cfg = LaunchConfig(
        threads_per_block=case.block, num_blocks=case.grid
    )

    # 2. unprotected baseline
    mem, out_map = case.make_memory()
    try:
        base_exec = make_executor(
            kernel,
            backend=backend,
            rf_code_factory=lambda: None,
            max_instructions_per_thread=BASELINE_BUDGET,
        ).run(launch, mem)
    except (SimulationError, MemoryError32):
        return CaseResult(status="baseline_skip", stats=stats)
    baseline = _download_outputs(mem, out_map)
    stats["baseline_instructions"] = float(base_exec.instructions)
    per_thread_max = max(
        base_exec.thread_instructions.values(), default=1
    )
    protected_budget = max(
        PROTECTED_BUDGET_FLOOR, per_thread_max * PROTECTED_BUDGET_FACTOR
    )

    # 3. compile
    compiler = PennyCompiler(_resolve_config(scheme), strict=strict)
    try:
        result = compiler.compile(case.kernel(), launch_cfg)
    except Exception as exc:
        return CaseResult(
            status="finding",
            finding=_make_finding(iteration, case, "compile", exc=exc),
            stats=stats,
        )
    protected = result.kernel
    stats["fallback_level"] = result.stats.get("fallback_level", 0.0)

    # 4. static verification (the non-strict lattice already verified)
    if result.stats.get("verified") != 1.0:
        problems = verify_compiled(protected)
        if problems:
            return CaseResult(
                status="finding",
                finding=_make_finding(
                    iteration,
                    case,
                    "verify",
                    message="; ".join(problems[:5]),
                    exc_type="VerificationProblems",
                    pass_name="verify",
                ),
                stats=stats,
            )

    # 5. zero-fault differential
    mem2, out_map2 = case.make_memory()
    try:
        protected_exec = make_executor(
            protected,
            backend=backend,
            max_instructions_per_thread=protected_budget,
        ).run(launch, mem2)
    except (SimulationError, MemoryError32) as exc:
        return CaseResult(
            status="finding",
            finding=_make_finding(
                iteration,
                case,
                "run_zero_fault",
                message=str(exc),
                exc_type=type(exc).__name__,
                pass_name="simulator",
            ),
            stats=stats,
        )
    protected_out = _download_outputs(mem2, out_map2)
    if protected_out != baseline:
        diffs = [
            name
            for (name, a), (_, b) in zip(protected_out, baseline)
            if a != b
        ]
        return CaseResult(
            status="finding",
            finding=_make_finding(
                iteration,
                case,
                "diff_zero_fault",
                message=f"buffers differ from baseline: {diffs}",
                exc_type="DifferentialMismatch",
                pass_name="oracle",
            ),
            stats=stats,
        )

    # 5b. backend cross-check: the other engine must reproduce the
    # protected run bit for bit (results, counters, and output buffers).
    if cross_check:
        other = "scalar" if backend == "vector" else "vector"
        mem3, out_map3 = case.make_memory()
        try:
            other_exec = make_executor(
                protected,
                backend=other,
                max_instructions_per_thread=protected_budget,
            ).run(launch, mem3)
        except (SimulationError, MemoryError32) as exc:
            return CaseResult(
                status="finding",
                finding=_make_finding(
                    iteration,
                    case,
                    "cross_check",
                    message=f"{other} backend raised where {backend} "
                    f"succeeded: {exc}",
                    exc_type="BackendMismatch",
                    pass_name="vexec",
                ),
                stats=stats,
            )
        mismatch = None
        if other_exec != protected_exec:
            mismatch = "execution statistics differ"
        elif _download_outputs(mem3, out_map3) != protected_out:
            mismatch = "output buffers differ"
        if mismatch is not None:
            return CaseResult(
                status="finding",
                finding=_make_finding(
                    iteration,
                    case,
                    "cross_check",
                    message=f"{backend} vs {other}: {mismatch}",
                    exc_type="BackendMismatch",
                    pass_name="vexec",
                ),
                stats=stats,
            )

    # 6. fault recovery
    if fault and protected.meta.get("recovery_table") is not None:
        fault_result = _run_fault(
            case, protected, launch, protected_budget, iteration, backend
        )
        if fault_result is not None:
            return CaseResult(
                status="finding", finding=fault_result, stats=stats
            )
    return CaseResult(status="ok", stats=stats)


def _run_fault(
    case: FuzzCase,
    protected,
    launch: Launch,
    budget: int,
    iteration: int,
    backend: str = "auto",
) -> Optional[Finding]:
    """One deterministic single-bit RF injection; returns a finding when
    the protection contract breaks."""
    import random

    # A fresh zero-fault run profiles thread lifetimes for point selection
    # (the run above already proved this cannot raise).
    mem_p, out_map = case.make_memory()
    profile = make_executor(
        protected, backend=backend, max_instructions_per_thread=budget
    ).run(launch, mem_p)
    golden = _download_outputs(mem_p, out_map)
    lifetimes = {
        k: n for k, n in profile.thread_instructions.items() if n >= 2
    }
    if not lifetimes:
        return None

    rng = random.Random(stable_seed(case.seed, 1))
    ctaid, tid = sorted(lifetimes)[rng.randrange(len(lifetimes))]
    point = rng.randrange(1, lifetimes[(ctaid, tid)])
    plan = FaultPlan(
        ctaid=ctaid,
        tid=tid,
        after_instructions=point,
        bits=(rng.randrange(33),),
        rng_seed=rng.getrandbits(30),
    )
    mem_f, out_map_f = case.make_memory()
    try:
        make_executor(
            protected,
            backend=backend,
            max_instructions_per_thread=budget,
            fault_plan=plan,
        ).run(launch, mem_f)
    except (SimulationError, MemoryError32) as exc:
        cause = getattr(exc, "cause", type(exc).__name__)
        return _make_finding(
            iteration,
            case,
            "fault",
            message=f"injected fault was unrecoverable ({cause}): {exc}",
            exc_type=type(exc).__name__,
            pass_name="recovery",
        )
    if not plan.injected:
        return None  # thread retired before the injection point
    faulted = _download_outputs(mem_f, out_map_f)
    if faulted != golden:
        return _make_finding(
            iteration,
            case,
            "fault",
            message="silent data corruption after injected fault",
            exc_type="FaultSdc",
            pass_name="recovery",
        )
    return None
