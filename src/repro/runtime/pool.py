"""The supervised worker pool (shared by serve, campaign, and fuzz).

``multiprocessing.Pool`` / ``ProcessPoolExecutor`` have no supervision
story: a worker SIGKILLed mid-job poisons the whole pool
(``BrokenProcessPool``), a hung worker occupies its slot forever, and
there is no notion of a *task* that keeps killing workers.  This pool
applies the paper's inject→detect→recover discipline to the sweep
machinery itself:

- **detect** — every worker slot is watched by a supervisor thread:
  process liveness per tick, per-worker heartbeats (a stalled-but-alive
  process is treated as dead), and a per-job busy deadline (a hung task
  is reclaimed, not leaked — this wall-clock deadline is distinct from
  the simulator's instruction-budget watchdog, which cannot fire when
  the *worker* is wedged);
- **contain** — a crash takes down exactly one task attempt.  The task
  is retried on another worker; a task whose attempts kill
  ``poison_threshold`` consecutive workers is failed with a typed
  poison error and its key quarantined, so one adversarial input cannot
  crash-loop the pool;
- **recover** — dead workers are restarted with exponential backoff
  (``restart_backoff_base * 2^consecutive_crashes``, capped), and a
  worker that completes a task resets its slot's backoff.

Each worker owns a private inbox *and* a private result queue: a worker
SIGKILLed mid-``put`` can corrupt at most its own queue, which is
discarded on restart — the supervisor's view of every other worker stays
intact (this is why the pool does not share one results queue the way
``multiprocessing.Pool`` does).

Jobs are dispatched one at a time per worker, so the supervisor always
knows *which* task a dead worker was running.  Results are delivered on
:class:`concurrent.futures.Future`\\ s; sweep engines that just want
completion-ordered results over a large index space use
:meth:`WorkerPool.imap_supervised`, which keeps a bounded submission
window so a million-task sweep never materializes a million futures.

The pool is parameterized for its three tenants:

- ``runner`` — the ``module:attr`` task function (resolved inside the
  worker, so forked workers import lazily and thread-mode tests can
  monkeypatch it);
- ``chaos_site`` — the :mod:`repro.serve.chaos` site consulted per
  dispatch (``worker.job`` for the compile farm, ``campaign.worker``
  for injection/fuzz sweeps), so each tenant's fault plan addresses its
  own workers;
- ``crash_error`` / ``poison_error`` — the exception classes raised on
  unabsorbed crashes and quarantine.  They default to the runtime's own
  :class:`~repro.runtime.errors.WorkerCrashError` /
  :class:`~repro.runtime.errors.PoisonJobError`; the serving layer
  substitutes its wire-serializable subclasses.

Chaos: at every dispatch the supervisor consults
:func:`repro.serve.chaos.active_chaos` at ``chaos_site``; a firing rule
ships a *directive* inside the payload envelope and the worker executes
it on arrival — SIGKILL itself (``*.kill``) or stall (``*.hang``).
Decisions are made per *dispatch*, so a retried task re-rolls and the
fault plan stays in one seeded place.

Observability: ``pool.restarts`` / ``pool.crashes`` / ``pool.hung`` /
``pool.quarantined`` / ``pool.jobs`` counters and ``pool.spawn`` /
``pool.worker_died`` events through :mod:`repro.obs`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import queue as thread_queue
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import repro.obs as obs
from repro.runtime.errors import PoisonJobError, WorkerCrashError

#: the default chaos site consulted at dispatch (the compile farm's);
#: sweep engines override it via :attr:`PoolConfig.chaos_site`
DEFAULT_CHAOS_SITE = "worker.job"


@dataclass
class PoolConfig:
    """Supervision knobs for one :class:`WorkerPool`."""

    workers: int = 2
    #: worker threads instead of processes (tests; GIL-bound otherwise)
    use_threads: bool = False
    #: ``module:attr`` path of the job runner (``payload -> result``)
    runner: str = ""
    #: seconds between worker heartbeats (process mode only)
    heartbeat_interval: float = 1.0
    #: a live process silent for this long is treated as dead
    heartbeat_timeout: float = 15.0
    #: a worker busy on one job longer than this is killed and reclaimed
    #: (``None`` = never; servers set it from their request timeout)
    job_timeout: Optional[float] = None
    #: consecutive worker deaths caused by one job before quarantine
    poison_threshold: int = 2
    restart_backoff_base: float = 0.05
    restart_backoff_cap: float = 2.0
    #: supervisor tick (liveness / dispatch / restart cadence)
    tick: float = 0.02
    #: chaos site consulted once per dispatch
    chaos_site: str = DEFAULT_CHAOS_SITE
    #: exception class for unabsorbed worker crashes
    crash_error: type = WorkerCrashError
    #: exception class for quarantined (poison) jobs
    poison_error: type = PoisonJobError

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if not self.runner:
            raise ValueError("runner is required (module:attr path)")


# -- worker side -----------------------------------------------------------------


def _resolve_runner(path: str):
    """``module:attr`` -> callable, resolved fresh per job (late binding
    keeps monkeypatched doubles visible in thread mode)."""
    import importlib

    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def _apply_directive(directive: Optional[Dict[str, Any]], is_process: bool):
    """Execute a chaos directive inside the worker.  Returns True when
    the worker should die silently (thread-mode kill)."""
    if not directive:
        return False
    action = directive.get("action")
    if action == "hang":
        time.sleep(float(directive.get("delay_s", 30.0)))
    elif action == "kill":
        delay = float(directive.get("delay_s", 0.0))
        if delay:
            time.sleep(delay)
        if is_process:
            os.kill(os.getpid(), signal.SIGKILL)
        return True  # thread worker: die without reporting
    return False


def _worker_main(
    slot_id: int,
    generation: int,
    inbox,
    outbox,
    runner_path: str,
    heartbeat_interval: float,
    is_process: bool,
) -> None:
    """One worker's loop: take a job envelope, run it, report the result.

    Runs as a forked/spawned process (``is_process=True``) or a daemon
    thread.  The runner's contract is to *return* its outcome, never
    raise; anything that escapes anyway is reported as a typed error
    payload so a worker bug does not look like a crash.
    """
    if is_process:
        stop = threading.Event()

        def beat() -> None:
            while not stop.is_set():
                try:
                    outbox.put(("hb", generation))
                except Exception:
                    return
                stop.wait(heartbeat_interval)

        threading.Thread(target=beat, daemon=True).start()
    try:
        outbox.put(("ready", generation))
        while True:
            msg = inbox.get()
            if msg is None:
                break
            job_id, payload, directive = msg
            if _apply_directive(directive, is_process):
                return  # simulated kill (thread mode)
            try:
                result = _resolve_runner(runner_path)(payload)
            except BaseException as exc:  # runner contract violation
                result = (
                    "error",
                    {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "pass": "pool",
                        "scheme": None,
                        "kernel": None,
                        "kernel_ptx": None,
                        "detail": {},
                    },
                )
            outbox.put(("done", generation, job_id, result))
    finally:
        if is_process:
            stop.set()


# -- supervisor side -------------------------------------------------------------

_IDLE = "idle"
_BUSY = "busy"
_DEAD = "dead"  # waiting for its backoff before respawn
_STARTING = "starting"  # spawned, ready message not yet seen


@dataclass
class _Job:
    id: int
    payload: Dict[str, Any]
    key: str
    future: Future
    dispatches: int = 0


class _Slot:
    """One supervised worker position (process or thread + its queues)."""

    __slots__ = (
        "id",
        "proc",
        "generation",
        "inbox",
        "outbox",
        "state",
        "job",
        "busy_since",
        "last_seen",
        "consecutive_crashes",
        "restart_at",
    )

    def __init__(self, slot_id: int):
        self.id = slot_id
        self.proc = None
        self.generation = 0
        self.inbox = None
        self.outbox = None
        self.state = _DEAD
        self.job: Optional[_Job] = None
        self.busy_since: Optional[float] = None
        self.last_seen = 0.0
        self.consecutive_crashes = 0
        self.restart_at = 0.0


@dataclass
class PoolMetrics:
    """Monotonic supervision counters (mirrored into ``obs``)."""

    jobs_completed: int = 0
    restarts: int = 0
    crashes: int = 0
    hung_kills: int = 0
    quarantined: int = 0
    retries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "jobs_completed": self.jobs_completed,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "hung_kills": self.hung_kills,
            "quarantined": self.quarantined,
            "retries": self.retries,
        }


class WorkerPool:
    """Supervised fixed-size worker pool with crash/hang recovery."""

    def __init__(self, config: Optional[PoolConfig] = None):
        self.config = config or PoolConfig()
        self.metrics = PoolMetrics()
        self._slots: List[_Slot] = [
            _Slot(i) for i in range(self.config.workers)
        ]
        self._pending: Deque[_Job] = deque()
        self._inflight: Dict[int, _Job] = {}
        self._quarantine: set = set()
        self._strikes: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stopping = False
        self._started = False
        self._job_ids = itertools.count(1)
        self._supervisor: Optional[threading.Thread] = None
        self._mp_ctx = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        if not self.config.use_threads:
            import multiprocessing as mp

            self._mp_ctx = mp.get_context()
        for slot in self._slots:
            self._spawn(slot, initial=True)
        # The supervisor runs in a copy of the caller's context so the
        # installed tracer and chaos engine stay visible from its thread.
        ctx = contextvars.copy_context()
        self._supervisor = threading.Thread(
            target=ctx.run,
            args=(self._supervise,),
            name="penny-pool-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        return self

    def shutdown(self, wait: bool = True, timeout: float = 2.0) -> None:
        with self._lock:
            if not self._started or self._stopping:
                return
            self._stopping = True
            for job in list(self._pending):
                job.future.cancel()
            self._pending.clear()
            for job in self._inflight.values():
                job.future.cancel()
            self._inflight.clear()
        self._wake.set()
        if self._supervisor is not None and wait:
            self._supervisor.join(timeout=timeout)
        for slot in self._slots:
            if slot.inbox is not None:
                try:
                    slot.inbox.put_nowait(None)
                except Exception:
                    pass
        if wait:
            deadline = time.monotonic() + timeout
            for slot in self._slots:
                proc = slot.proc
                if proc is None:
                    continue
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    proc.join(remaining)
                except Exception:
                    pass
                if not self.config.use_threads and proc.is_alive():
                    try:
                        proc.kill()
                        proc.join(0.5)
                    except Exception:
                        pass

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    # -- the submission API ----------------------------------------------------

    def submit(
        self, payload: Dict[str, Any], key: Optional[str] = None
    ) -> Future:
        """Queue one job; returns a future resolving to the runner's
        return value, or raising the configured poison / crash error.
        ``key`` identifies the job for poison-quarantine purposes (the
        compile cache digest or the injection index, normally);
        anonymous jobs still quarantine across their own retries."""
        future: Future = Future()
        with self._lock:
            if not self._started or self._stopping:
                future.set_exception(
                    self.config.crash_error("worker pool is not running")
                )
                return future
            if key is not None and key in self._quarantine:
                future.set_exception(
                    self.config.poison_error(
                        "job key is quarantined (earlier attempts killed "
                        f"{self.config.poison_threshold} worker(s))",
                        key=key,
                        quarantined=True,
                    )
                )
                return future
            job_id = next(self._job_ids)
            job = _Job(
                id=job_id,
                payload=payload,
                key=key if key is not None else f"anon:{job_id}",
                future=future,
            )
            self._pending.append(job)
        self._wake.set()
        return future

    def imap_supervised(
        self,
        jobs: Iterable[Tuple[str, Dict[str, Any]]],
        *,
        window: Optional[int] = None,
        stop: Optional[threading.Event] = None,
    ) -> Iterator[Tuple[str, Any]]:
        """Run ``(key, payload)`` jobs through the pool, yielding
        ``(key, outcome)`` in completion order.

        ``outcome`` is the runner's return value, or the typed pool
        exception (poison / crash error) **as a value** — the sweep
        engine decides how a quarantined task is recorded; nothing
        raises out of the loop.  At most ``window`` jobs are in flight
        at once (default ``max(64, workers * 16)``), so a
        million-injection sweep holds a bounded set of futures.

        ``stop`` is an optional drain event: once set, no further jobs
        are submitted, in-flight futures are cancelled, and iteration
        ends — the caller sees exactly the outcomes that completed
        before the drain.
        """
        if window is None:
            window = max(64, self.config.workers * 16)
        it = iter(jobs)
        inflight: Dict[Future, str] = {}
        exhausted = False
        while True:
            if stop is not None and stop.is_set():
                for fut in inflight:
                    fut.cancel()
                return
            while not exhausted and len(inflight) < window:
                try:
                    key, payload = next(it)
                except StopIteration:
                    exhausted = True
                    break
                inflight[self.submit(payload, key=key)] = key
            if not inflight:
                return
            done, _ = wait(
                inflight, timeout=0.25, return_when=FIRST_COMPLETED
            )
            for fut in done:
                key = inflight.pop(fut)
                if fut.cancelled():
                    continue
                exc = fut.exception()
                yield (key, exc if exc is not None else fut.result())

    # -- introspection ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """JSON-safe pool snapshot (the server's ``health`` op body)."""
        with self._lock:
            states = [s.state for s in self._slots]
            return {
                "workers": len(self._slots),
                "alive": sum(
                    1 for s in states if s in (_IDLE, _BUSY, _STARTING)
                ),
                "idle": states.count(_IDLE),
                "busy": states.count(_BUSY),
                "dead": states.count(_DEAD),
                "pending": len(self._pending),
                "inflight": len(self._inflight),
                "quarantined_keys": sorted(self._quarantine),
                "use_threads": self.config.use_threads,
                **self.metrics.to_dict(),
            }

    # -- spawning --------------------------------------------------------------

    def _spawn(self, slot: _Slot, initial: bool = False) -> None:
        slot.generation += 1
        if self.config.use_threads:
            slot.inbox = thread_queue.Queue()
            slot.outbox = thread_queue.Queue()
            proc = threading.Thread(
                target=_worker_main,
                args=(
                    slot.id,
                    slot.generation,
                    slot.inbox,
                    slot.outbox,
                    self.config.runner,
                    self.config.heartbeat_interval,
                    False,
                ),
                name=f"penny-worker-{slot.id}",
                daemon=True,
            )
        else:
            slot.inbox = self._mp_ctx.Queue()
            slot.outbox = self._mp_ctx.Queue()
            proc = self._mp_ctx.Process(
                target=_worker_main,
                args=(
                    slot.id,
                    slot.generation,
                    slot.inbox,
                    slot.outbox,
                    self.config.runner,
                    self.config.heartbeat_interval,
                    True,
                ),
                name=f"penny-worker-{slot.id}",
                daemon=True,
            )
        slot.proc = proc
        slot.state = _STARTING
        slot.job = None
        slot.busy_since = None
        slot.last_seen = time.monotonic()
        proc.start()
        if not initial:
            self.metrics.restarts += 1
            obs.inc("pool.restarts")
        obs.event(
            "pool.spawn",
            slot=slot.id,
            generation=slot.generation,
            initial=initial,
        )

    # -- the supervisor loop ---------------------------------------------------

    def _supervise(self) -> None:
        while True:
            self._wake.wait(self.config.tick)
            self._wake.clear()
            with self._lock:
                if self._stopping:
                    return
                now = time.monotonic()
                for slot in self._slots:
                    self._drain_outbox(slot, now)
                for slot in self._slots:
                    self._check_slot(slot, now)
                self._dispatch(now)

    def _drain_outbox(self, slot: _Slot, now: float) -> None:
        outbox = slot.outbox
        if outbox is None:
            return
        while True:
            try:
                msg = outbox.get_nowait()
            except thread_queue.Empty:
                return
            except Exception:
                # A worker SIGKILLed mid-put can corrupt its own queue;
                # its death is detected via liveness, so just stop
                # reading this incarnation's stream.
                return
            try:
                kind = msg[0]
                generation = msg[1]
            except Exception:
                continue
            if generation != slot.generation:
                continue  # a previous incarnation's stale message
            slot.last_seen = now
            if kind == "ready":
                if slot.state == _STARTING:
                    slot.state = _IDLE
            elif kind == "hb":
                pass  # last_seen refreshed above
            elif kind == "done":
                _, _, job_id, result = msg
                job = self._inflight.pop(job_id, None)
                if job is not None and not job.future.done():
                    job.future.set_result(result)
                if job is not None:
                    self._strikes.pop(job.key, None)
                    self.metrics.jobs_completed += 1
                    obs.inc("pool.jobs")
                if slot.job is not None and slot.job.id == job_id:
                    slot.job = None
                    slot.busy_since = None
                    slot.consecutive_crashes = 0
                    slot.state = _IDLE

    def _check_slot(self, slot: _Slot, now: float) -> None:
        if slot.state == _DEAD:
            if now >= slot.restart_at:
                self._spawn(slot)
            return
        proc = slot.proc
        if proc is None or not proc.is_alive():
            self._on_worker_death(slot, now, cause="crash")
            return
        # A live-but-silent process (stuck syscall, SIGSTOP) is dead for
        # scheduling purposes; heartbeats only exist in process mode.
        if (
            not self.config.use_threads
            and now - slot.last_seen > self.config.heartbeat_timeout
        ):
            self._kill_worker(slot)
            self._on_worker_death(slot, now, cause="silent")
            return
        if (
            slot.state == _BUSY
            and self.config.job_timeout is not None
            and slot.busy_since is not None
            and now - slot.busy_since > self.config.job_timeout
        ):
            self._kill_worker(slot)
            self.metrics.hung_kills += 1
            obs.inc("pool.hung")
            self._on_worker_death(slot, now, cause="hung")

    def _kill_worker(self, slot: _Slot) -> None:
        if self.config.use_threads:
            return  # threads cannot be killed; the slot is abandoned
        try:
            slot.proc.kill()
        except Exception:
            pass

    def _on_worker_death(self, slot: _Slot, now: float, cause: str) -> None:
        job = slot.job
        self.metrics.crashes += 1
        obs.inc("pool.crashes")
        obs.event(
            "pool.worker_died",
            slot=slot.id,
            cause=cause,
            job=(job.key if job else None),
        )
        if job is not None:
            self._inflight.pop(job.id, None)
            if job.future.done():
                pass  # caller gave up (timeout/cancel): reclaim only
            else:
                strikes = self._strikes.get(job.key, 0) + 1
                self._strikes[job.key] = strikes
                if strikes >= self.config.poison_threshold:
                    self._quarantine.add(job.key)
                    self.metrics.quarantined += 1
                    obs.inc("pool.quarantined")
                    job.future.set_exception(
                        self.config.poison_error(
                            f"job killed {strikes} worker(s) and was "
                            "quarantined",
                            key=job.key,
                            strikes=strikes,
                            cause=cause,
                        )
                    )
                else:
                    self.metrics.retries += 1
                    obs.inc("pool.retries")
                    self._pending.appendleft(job)
        slot.job = None
        slot.busy_since = None
        slot.state = _DEAD
        slot.consecutive_crashes += 1
        backoff = min(
            self.config.restart_backoff_cap,
            self.config.restart_backoff_base
            * (2.0 ** (slot.consecutive_crashes - 1)),
        )
        slot.restart_at = now + backoff

    def _dispatch(self, now: float) -> None:
        for slot in self._slots:
            if not self._pending:
                return
            if slot.state != _IDLE:
                continue
            job = self._pending.popleft()
            if job.future.done():
                continue  # cancelled while queued
            directive = None
            chaos = _active_chaos()
            if chaos is not None:
                rule = chaos.decide(
                    self.config.chaos_site, key=job.key, slot=slot.id
                )
                if rule is not None:
                    directive = {
                        "action": rule.action,
                        "delay_s": rule.delay_s,
                    }
            job.dispatches += 1
            try:
                slot.inbox.put_nowait(
                    (job.id, job.payload, directive)
                )
            except Exception:
                # Inbox unusable (worker just died): retry elsewhere.
                self._pending.appendleft(job)
                continue
            self._inflight[job.id] = job
            slot.job = job
            slot.busy_since = now
            slot.state = _BUSY


def _active_chaos():
    """Late-bound :func:`repro.serve.chaos.active_chaos` (imported at
    first dispatch, not module load, because ``repro.serve`` imports
    this module — a top-level import would be circular)."""
    global _chaos_fn
    if _chaos_fn is None:
        from repro.serve.chaos import active_chaos

        _chaos_fn = active_chaos
    return _chaos_fn()


_chaos_fn = None
