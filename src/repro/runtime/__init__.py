"""``repro.runtime`` — the shared supervised task runtime.

Every large sweep in this repository — compile farms
(:mod:`repro.serve`), fault-injection campaigns
(:mod:`repro.gpusim.campaign`) and fuzz sweeps (:mod:`repro.fuzz`) —
drives worker processes over many independent tasks.  A bare
``multiprocessing.Pool`` turns a single worker SIGKILL, OOM-kill or
hang into a dead sweep; at the million-injection scale the ROADMAP
targets, a crashed worker is a *when*, not an *if*.

This package is the PR 6 worker-pool pattern generalized out of the
serving stack so every sweep engine shares one supervision story:

- :class:`~repro.runtime.pool.WorkerPool` — generation-tagged per-slot
  queues (a SIGKILL mid-``put`` corrupts nothing shared), heartbeat +
  busy-deadline liveness, exponential-backoff restarts, per-key
  consecutive-crash strikes with quarantine;
- :mod:`~repro.runtime.errors` — the typed failure vocabulary
  (:class:`WorkerCrashError`, :class:`PoisonJobError`,
  :class:`ReconciliationError`) that the serving layer's
  :mod:`repro.serve.errors` extends with wire-protocol semantics.

The design inherits the paper's inject→detect→recover discipline: a
worker death is *detected* (liveness / heartbeat / deadline),
*contained* (exactly one task attempt dies; the task retries elsewhere,
or is quarantined after repeated kills) and *recovered* (backoff
respawn).  A quarantined task is the sweep-level analogue of a DUE —
classified and survived, never fatal to the sweep.
"""

from repro.runtime.errors import (
    PoisonJobError,
    ReconciliationError,
    TaskRuntimeError,
    WorkerCrashError,
)
from repro.runtime.pool import PoolConfig, PoolMetrics, WorkerPool

__all__ = [
    "TaskRuntimeError",
    "WorkerCrashError",
    "PoisonJobError",
    "ReconciliationError",
    "PoolConfig",
    "PoolMetrics",
    "WorkerPool",
]
