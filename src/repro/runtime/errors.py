"""Typed failures of the supervised task runtime.

These are the engine-agnostic forms of the pool failure modes: a
campaign, fuzz sweep, or compile farm driving a
:class:`repro.runtime.pool.WorkerPool` sees exactly these types (or an
engine-specific subclass — :mod:`repro.serve.errors` derives its wire
variants from them, so ``except`` clauses written against either
hierarchy keep working).

All of them serialize with :meth:`to_dict` in the same
``{"type", "message", "detail"}`` shape the serving layer puts on the
wire, so journal records and job envelopes can carry the *type*, not
just a message string.
"""

from __future__ import annotations

from typing import Any, Dict


def _plain(value: Any) -> Any:
    """JSON-safe rendering of one detail value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


class TaskRuntimeError(RuntimeError):
    """Base class of every supervised-runtime failure."""

    def __init__(self, message: str, **detail: Any):
        super().__init__(message)
        self.message = message
        self.detail: Dict[str, Any] = detail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "message": self.message,
            "detail": {k: _plain(v) for k, v in self.detail.items()},
        }


class WorkerCrashError(TaskRuntimeError):
    """A pool worker died (crash, SIGKILL, or a supervisor hang-kill)
    while running the task and the retry budget did not absorb it."""


class PoisonJobError(TaskRuntimeError):
    """A task killed enough consecutive workers to be quarantined.

    The supervised pool retries a task whose worker crashed; a task
    whose *every* attempt kills its worker would otherwise crash-loop
    the pool forever.  After ``poison_threshold`` consecutive worker
    deaths the task is failed with this error and its key quarantined —
    later submissions of the same key fail fast without touching a
    worker.
    """


class ReconciliationError(TaskRuntimeError):
    """End-of-sweep accounting failed: some task index is missing from
    the result set or appears more than once.  This is the invariant the
    whole supervision story exists to uphold — every index accounted for
    exactly once (completed ∪ retried-then-completed ∪ quarantined) —
    so a violation is a runtime bug, not a task failure, and is raised
    loudly instead of being folded into the report."""
