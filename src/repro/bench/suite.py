"""Benchmark registry and workload plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import LaunchConfig
from repro.gpusim.executor import Launch, f2b
from repro.gpusim.memory import MemoryImage
from repro.ir.module import Kernel

#: a buffer initializer: name -> (num_words, fill callable(rng) -> iterable)
BufferSpec = Tuple[str, int, Optional[Callable[[np.random.Generator], Sequence[int]]]]


@dataclass
class Workload:
    """A deterministic, re-creatable input for one kernel launch.

    ``buffers`` are allocated in order (addresses are therefore stable
    across :meth:`make` calls); ``params`` values are either raw ints,
    floats (packed to fp32 bits), or ``"&name"`` strings resolving to a
    buffer's base address.  ``output`` names the buffer that defines
    program output for SDC checking.
    """

    grid: int
    block: int
    buffers: List[BufferSpec]
    params: Dict[str, Union[int, float, str]]
    output: str
    seed: int = 12345

    @property
    def launch(self) -> Launch:
        return Launch(grid=self.grid, block=self.block)

    @property
    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(threads_per_block=self.block, num_blocks=self.grid)

    def make(self) -> Tuple[MemoryImage, Dict[str, int], Tuple[int, int]]:
        """Build a fresh memory image.  Returns (memory, buffer addresses,
        (output address, output words))."""
        rng = np.random.default_rng(self.seed)
        mem = MemoryImage()
        addrs: Dict[str, int] = {}
        sizes: Dict[str, int] = {}
        for name, words, fill in self.buffers:
            addr = mem.alloc_global(words)
            addrs[name] = addr
            sizes[name] = words
            if fill is not None:
                data = list(fill(rng))
                if len(data) != words:
                    raise ValueError(
                        f"buffer {name!r}: fill produced {len(data)} words, "
                        f"expected {words}"
                    )
                mem.upload(addr, [int(v) & 0xFFFFFFFF for v in data])
        for pname, pval in self.params.items():
            if isinstance(pval, str):
                if not pval.startswith("&"):
                    raise ValueError(f"bad param ref {pval!r}")
                mem.set_param(pname, addrs[pval[1:]])
            elif isinstance(pval, float):
                mem.set_param(pname, f2b(pval))
            else:
                mem.set_param(pname, int(pval))
        out = (addrs[self.output], sizes[self.output])
        return mem, addrs, out

    def make_memory(self) -> MemoryImage:
        return self.make()[0]

    def output_region(self) -> Tuple[int, int]:
        return self.make()[2]


@dataclass
class Benchmark:
    """One Table 3 application."""

    abbr: str
    name: str
    suite: str
    build: Callable[[], Kernel]
    workload: Callable[[], Workload]
    #: present on the Volta (Fig. 15) subset
    on_volta: bool = True

    def fresh_kernel(self) -> Kernel:
        return self.build()


_REGISTRY: Dict[str, Benchmark] = {}


def benchmark(
    abbr: str, name: str, suite: str, workload: Callable[[], Workload],
    on_volta: bool = True,
):
    """Decorator registering a kernel builder as a benchmark."""

    def wrap(build: Callable[[], Kernel]) -> Callable[[], Kernel]:
        if abbr in _REGISTRY:
            raise ValueError(f"duplicate benchmark {abbr!r}")
        _REGISTRY[abbr] = Benchmark(
            abbr=abbr,
            name=name,
            suite=suite,
            build=build,
            workload=workload,
            on_volta=on_volta,
        )
        return build

    return wrap


def _load_all() -> None:
    # Importing the kernel modules populates the registry.
    from repro.bench.kernels import cudasdk, gpgpusim, parboil, rodinia  # noqa: F401


def get_benchmark(abbr: str) -> Benchmark:
    _load_all()
    try:
        return _REGISTRY[abbr]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {abbr!r}; known: {sorted(_REGISTRY)}"
        ) from None


class _AllBenchmarks:
    """Lazy view over the registry (import-cycle-free)."""

    def __iter__(self):
        _load_all()
        return iter(sorted(_REGISTRY.values(), key=lambda b: b.abbr))

    def __len__(self):
        _load_all()
        return len(_REGISTRY)

    def __getitem__(self, abbr: str) -> Benchmark:
        return get_benchmark(abbr)

    def abbrs(self) -> List[str]:
        _load_all()
        return sorted(_REGISTRY)


ALL_BENCHMARKS = _AllBenchmarks()
