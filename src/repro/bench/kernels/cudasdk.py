"""CUDA toolkit sample kernels: BO, BS, CS, SP, SQ, FW, MT."""

from __future__ import annotations

import numpy as np

from repro.bench.kernels.common import byte_offset, grid_stride
from repro.bench.suite import Workload, benchmark
from repro.gpusim.executor import f2b
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel

_F = lambda rng, n, lo=0.1, hi=2.0: [  # noqa: E731
    f2b(float(v)) for v in rng.uniform(lo, hi, n).astype(np.float32)
]


def _bo_workload() -> Workload:
    options, steps = 64, 12
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("spot", options, lambda r: _F(r, options, 20.0, 60.0)),
            ("strike", options, lambda r: _F(r, options, 30.0, 50.0)),
            ("price", options, None),
        ],
        params={"S": "&spot", "K": "&strike", "OUT": "&price",
                "steps": steps},
        output="price",
    )


@benchmark("BO", "Binomial options", "CUDA toolkit samples", _bo_workload)
def build_bo() -> Kernel:
    """Binomial option pricing: the paper's motivating example (§1 — two
    checkpointing stores in the inner-most loop cost 26.7%).  The value
    array lives in per-thread local memory and is updated *in place* by the
    backward-induction inner loop: v[j] = pu*v[j+1] + pd*v[j], a textbook
    memory anti-dependence inside a doubly-nested loop."""
    b = KernelBuilder(
        "bo",
        params=[("S", "ptr"), ("K", "ptr"), ("OUT", "ptr"), ("steps", "u32")],
    )
    gtid, _ = grid_stride(b)
    sbuf = b.ld_param("S")
    kbuf = b.ld_param("K")
    out = b.ld_param("OUT")
    steps = b.ld_param("steps")

    spot = b.ld("global", byte_offset(b, sbuf, gtid), dtype="f32")
    strike = b.ld("global", byte_offset(b, kbuf, gtid), dtype="f32")

    # Terminal payoffs: v[j] = max(spot * u^j - strike, 0), u-walk
    # approximated by a linear lattice step for simplicity.
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("INIT")
    pi = b.setp("gt", j, steps)
    b.bra("REDUCE_INIT", pred=pi)
    jf = b.cvt(j, "f32")
    up = b.fma(jf, 1.5, spot)
    payoff = b.sub(up, strike, dtype="f32")
    payoff = b.max_(payoff, 0.0, dtype="f32")
    joff = b.shl(j, 2)
    b.st("local", joff, payoff, dtype="f32")
    b.add(j, 1, dst=j)
    b.bra("INIT")

    b.label("REDUCE_INIT")
    step = b.mov(steps, dst=b.reg("u32", "%step"))
    b.label("STEPS")
    ps = b.setp("eq", step, 0)
    b.bra("WRITE", pred=ps)
    jj = b.mov(0, dst=b.reg("u32", "%jj"))
    b.label("INNER")
    pj = b.setp("ge", jj, step)
    b.bra("NEXT_STEP", pred=pj)
    jjoff = b.shl(jj, 2)
    v_lo = b.ld("local", jjoff, dtype="f32")
    v_hi = b.ld("local", jjoff, offset=4, dtype="f32")
    blend = b.mul(v_hi, 0.6, dtype="f32")
    blend = b.fma(v_lo, 0.4, blend)
    b.st("local", jjoff, blend, dtype="f32")
    b.add(jj, 1, dst=jj)
    b.bra("INNER")
    b.label("NEXT_STEP")
    b.sub(step, 1, dst=step)
    b.bra("STEPS")
    b.label("WRITE")
    result = b.ld("local", 0, dtype="f32")
    b.st("global", byte_offset(b, out, gtid), result, dtype="f32")
    b.ret()
    return b.finish()


def _bs_workload() -> Workload:
    options = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("spot", options, lambda r: _F(r, options, 20.0, 60.0)),
            ("strike", options, lambda r: _F(r, options, 30.0, 50.0)),
            ("years", options, lambda r: _F(r, options, 0.5, 2.0)),
            ("call", options, None),
        ],
        params={"S": "&spot", "K": "&strike", "T": "&years",
                "CALL": "&call", "r": 0.05, "v": 0.3},
        output="call",
    )


@benchmark("BS", "Black-Scholes", "CUDA toolkit samples", _bs_workload)
def build_bs() -> Kernel:
    """Black-Scholes call pricing: straight-line SFU-heavy float code (log,
    exp, sqrt, divide) with one output store — near-zero Penny overhead."""
    b = KernelBuilder(
        "bs",
        params=[("S", "ptr"), ("K", "ptr"), ("T", "ptr"), ("CALL", "ptr"),
                ("r", "f32"), ("v", "f32")],
    )
    gtid, _ = grid_stride(b)
    sbuf = b.ld_param("S")
    kbuf = b.ld_param("K")
    tbuf = b.ld_param("T")
    call = b.ld_param("CALL")
    rate = b.ld_param("r")
    vol = b.ld_param("v")

    s = b.ld("global", byte_offset(b, sbuf, gtid), dtype="f32")
    k = b.ld("global", byte_offset(b, kbuf, gtid), dtype="f32")
    t = b.ld("global", byte_offset(b, tbuf, gtid), dtype="f32")

    ratio = b.div(s, k, dtype="f32")
    log_r = b.lg2(ratio)
    log_r = b.mul(log_r, 0.6931472, dtype="f32")  # ln from log2
    v2 = b.mul(vol, vol, dtype="f32")
    half_v2 = b.mul(v2, 0.5, dtype="f32")
    drift = b.add(rate, half_v2, dtype="f32")
    drift_t = b.mul(drift, t, dtype="f32")
    num = b.add(log_r, drift_t, dtype="f32")
    sqrt_t = b.sqrt(t)
    denom = b.mul(vol, sqrt_t, dtype="f32")
    d1 = b.div(num, denom, dtype="f32")
    d2 = b.sub(d1, denom, dtype="f32")

    def cnd(x):
        scaled = b.mul(x, -2.3, dtype="f32")
        e = b.ex2(scaled)
        dd = b.add(e, 1.0, dtype="f32")
        return b.rcp(dd)

    nd1 = cnd(d1)
    nd2 = cnd(d2)
    neg_rt = b.mul(rate, t, dtype="f32")
    neg_rt = b.mul(neg_rt, -1.4426950, dtype="f32")
    disc = b.ex2(neg_rt)
    kd = b.mul(k, disc, dtype="f32")
    term2 = b.mul(kd, nd2, dtype="f32")
    term1 = b.mul(s, nd1, dtype="f32")
    price = b.sub(term1, term2, dtype="f32")
    b.st("global", byte_offset(b, call, gtid), price, dtype="f32")
    b.ret()
    return b.finish()


def _cs_workload() -> Workload:
    n, radius = 64, 4
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("src", n, lambda r: _F(r, n, -1.0, 1.0)),
            ("kern", 2 * radius + 1, lambda r: _F(r, 2 * radius + 1, 0.0, 0.3)),
            ("dst", n, None),
        ],
        params={"SRC": "&src", "KERN": "&kern", "DST": "&dst",
                "radius": radius},
        output="dst",
    )


@benchmark("CS", "Convolution separable", "CUDA toolkit samples", _cs_workload)
def build_cs() -> Kernel:
    """1-D convolution over a shared tile with halo, the row pass of the
    separable filter."""
    RADIUS = 4
    b = KernelBuilder(
        "cs",
        params=[("SRC", "ptr"), ("KERN", "ptr"), ("DST", "ptr"),
                ("radius", "u32")],
        shared=[("tile", 40)],  # 32 + 2 * RADIUS
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    src = b.ld_param("SRC")
    kern = b.ld_param("KERN")
    dst = b.ld_param("DST")
    radius = b.ld_param("radius")
    gtid = b.mad(ctaid, ntid, tid)

    tile = b.addr_of("tile")
    slot = b.add(tid, RADIUS)
    v = b.ld("global", byte_offset(b, src, gtid), dtype="f32")
    b.st("shared", byte_offset(b, tile, slot), v, dtype="f32")
    b.bar()

    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    k = b.mov(0, dst=b.reg("u32", "%k"))
    width = b.mad(radius, 2, 1)
    b.label("TAPS")
    p = b.setp("ge", k, width)
    b.bra("OUT", pred=p)
    w = b.ld("global", byte_offset(b, kern, k), dtype="f32")
    tslot = b.add(tid, k)
    tv = b.ld("shared", byte_offset(b, tile, tslot), dtype="f32")
    b.fma(w, tv, acc, dst=acc)
    b.add(k, 1, dst=k)
    b.bra("TAPS")
    b.label("OUT")
    b.st("global", byte_offset(b, dst, gtid), acc, dtype="f32")
    b.ret()
    return b.finish()


def _sp_workload() -> Workload:
    n = 256
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("a", n, lambda r: _F(r, n, -1.0, 1.0)),
            ("bv", n, lambda r: _F(r, n, -1.0, 1.0)),
            ("partial", 2, None),
        ],
        params={"A": "&a", "B": "&bv", "OUT": "&partial", "n": n},
        output="partial",
    )


@benchmark("SP", "Scalar product", "CUDA toolkit samples", _sp_workload)
def build_sp() -> Kernel:
    """Dot product: grid-stride partial sums, then a barrier-separated
    shared-memory tree reduction (in-place shared anti-dependences)."""
    b = KernelBuilder(
        "sp",
        params=[("A", "ptr"), ("B", "ptr"), ("OUT", "ptr"), ("n", "u32")],
        shared=[("sums", 32)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    nctaid = b.special_u32("%nctaid.x")
    abuf = b.ld_param("A")
    bbuf = b.ld_param("B")
    out = b.ld_param("OUT")
    n = b.ld_param("n")
    gtid = b.mad(ctaid, ntid, tid)
    stride = b.mul(ntid, nctaid)

    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    i = b.mov(gtid, dst=b.reg("u32", "%i"))
    b.label("PARTIAL")
    p = b.setp("ge", i, n)
    b.bra("REDUCE", pred=p)
    av = b.ld("global", byte_offset(b, abuf, i), dtype="f32")
    bv = b.ld("global", byte_offset(b, bbuf, i), dtype="f32")
    b.fma(av, bv, acc, dst=acc)
    b.add(i, stride, dst=i)
    b.bra("PARTIAL")
    b.label("REDUCE")
    sums = b.addr_of("sums")
    b.st("shared", byte_offset(b, sums, tid), acc, dtype="f32")
    b.bar()
    # tree reduction: offsets 16, 8, 4, 2, 1
    off = b.mov(16, dst=b.reg("u32", "%off"))
    b.label("TREE")
    pt = b.setp("eq", off, 0)
    b.bra("WRITE", pred=pt)
    p_active = b.setp("lt", tid, off)
    other = b.add(tid, off)
    mine_addr = byte_offset(b, sums, tid)
    other_addr = byte_offset(b, sums, other)
    mine = b.ld("shared", mine_addr, dtype="f32", guard=(p_active, True))
    theirs = b.ld("shared", other_addr, dtype="f32", guard=(p_active, True))
    summed = b.add(mine, theirs, dtype="f32", guard=(p_active, True))
    b.bar()
    b.st("shared", mine_addr, summed, dtype="f32", guard=(p_active, True))
    b.bar()
    b.shr(off, 1, dst=off)
    b.bra("TREE")
    b.label("WRITE")
    p_zero = b.setp("eq", tid, 0)
    total = b.ld("shared", sums, dtype="f32", guard=(p_zero, True))
    b.st("global", byte_offset(b, out, ctaid), total, dtype="f32",
         guard=(p_zero, True))
    b.ret()
    return b.finish()


def _sq_workload() -> Workload:
    threads = 64
    dirs = 30
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("dirvec", dirs,
             lambda r: list(r.integers(1, 2 ** 30, dirs))),
            ("out", threads, None),
        ],
        params={"DIR": "&dirvec", "OUT": "&out", "ndraws": 16},
        output="out",
    )


@benchmark("SQ", "Sobol filter", "CUDA toolkit samples", _sq_workload)
def build_sq() -> Kernel:
    """Sobol quasirandom draws: Gray-code bit scan xoring direction
    vectors into a loop-carried state register."""
    b = KernelBuilder(
        "sq", params=[("DIR", "ptr"), ("OUT", "ptr"), ("ndraws", "u32")]
    )
    gtid, _ = grid_stride(b)
    dirs = b.ld_param("DIR")
    out = b.ld_param("OUT")
    ndraws = b.ld_param("ndraws")

    state = b.mov(0, dst=b.reg("u32", "%state"))
    acc = b.mov(0, dst=b.reg("u32", "%accum"))
    i = b.mov(1, dst=b.reg("u32", "%i"))
    limit = b.add(ndraws, 1)
    b.label("DRAWS")
    p = b.setp("ge", i, limit)
    b.bra("DONE", pred=p)
    # lowest zero bit index of (i - 1) == Gray transition bit
    im1 = b.sub(i, 1)
    inv = b.xor(im1, 0xFFFFFFFF)
    low = b.neg(im1, dtype="s32")
    low = b.sub(low, 1)  # == ~ (i-1) as two's complement trick
    bit_mask = b.and_(inv, b.add(im1, 1))
    # bit index via conditional count (small fixed scan of 5 bits)
    idx = b.mov(0, dst=b.reg("u32", "%idx"))
    probe = b.mov(bit_mask, dst=b.reg("u32", "%probe"))
    k = b.mov(0, dst=b.reg("u32", "%k"))
    b.label("SCAN")
    pk = b.setp("ge", k, 5)
    b.bra("APPLY", pred=pk)
    shifted = b.shr(probe, 1)
    nonzero = b.setp("ne", shifted, 0)
    b.mov(shifted, dst=probe, guard=(nonzero, True))
    b.add(idx, 1, dst=idx, guard=(nonzero, True))
    b.add(k, 1, dst=k)
    b.bra("SCAN")
    b.label("APPLY")
    dv = b.ld("global", byte_offset(b, dirs, idx), dtype="u32")
    b.xor(state, dv, dst=state)
    mix = b.add(state, gtid)
    b.xor(acc, mix, dst=acc)
    b.add(i, 1, dst=i)
    b.bra("DRAWS")
    b.label("DONE")
    b.st("global", byte_offset(b, out, gtid), acc)
    b.ret()
    return b.finish()


def _fw_workload() -> Workload:
    n = 32  # one transform per block
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("data", 64, lambda r: list(r.integers(0, 100, 64))),
            ("out", 64, None),
        ],
        params={"IN": "&data", "OUT": "&out"},
        output="out",
    )


@benchmark("FW", "Fast Walsh transform", "CUDA toolkit samples", _fw_workload)
def build_fw() -> Kernel:
    """Walsh-Hadamard butterfly over a shared array: log2(n) barrier-
    separated in-place stages — shared-memory anti-dependences everywhere."""
    b = KernelBuilder(
        "fw",
        params=[("IN", "ptr"), ("OUT", "ptr")],
        shared=[("buf", 32)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    src = b.ld_param("IN")
    out = b.ld_param("OUT")
    gtid = b.mad(ctaid, ntid, tid)

    buf = b.addr_of("buf")
    v = b.ld("global", byte_offset(b, src, gtid), dtype="u32")
    b.st("shared", byte_offset(b, buf, tid), v)
    b.bar()

    stride = b.mov(1, dst=b.reg("u32", "%stride"))
    b.label("STAGE")
    p = b.setp("ge", stride, 32)
    b.bra("FLUSH", pred=p)
    # partner index: pair = tid ^ stride; lower member does the butterfly
    pair = b.xor(tid, stride)
    p_low = b.setp("gt", pair, tid)
    my_addr = byte_offset(b, buf, tid)
    pair_addr = byte_offset(b, buf, pair)
    a = b.ld("shared", my_addr, dtype="u32", guard=(p_low, True))
    c = b.ld("shared", pair_addr, dtype="u32", guard=(p_low, True))
    s = b.add(a, c, guard=(p_low, True))
    d = b.sub(a, c, guard=(p_low, True))
    b.bar()
    b.st("shared", my_addr, s, guard=(p_low, True))
    b.st("shared", pair_addr, d, guard=(p_low, True))
    b.bar()
    b.shl(stride, 1, dst=stride)
    b.bra("STAGE")
    b.label("FLUSH")
    final = b.ld("shared", byte_offset(b, buf, tid), dtype="u32")
    b.st("global", byte_offset(b, out, gtid), final)
    b.ret()
    return b.finish()


def _mt_workload() -> Workload:
    dim = 8  # 8x8 tile per block
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("a", 128, lambda r: list(r.integers(0, 1000, 128))),
            ("at", 128, None),
        ],
        params={"A": "&a", "AT": "&at", "dim": dim},
        output="at",
    )


@benchmark("MT", "Matrix transpose", "CUDA toolkit samples", _mt_workload)
def build_mt() -> Kernel:
    """Tiled transpose through shared memory: coalesced load, barrier,
    permuted store."""
    b = KernelBuilder(
        "mt",
        params=[("A", "ptr"), ("AT", "ptr"), ("dim", "u32")],
        shared=[("tile", 64)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    abuf = b.ld_param("A")
    atbuf = b.ld_param("AT")
    dim = b.ld_param("dim")
    gtid = b.mad(ctaid, ntid, tid)

    tile = b.addr_of("tile")
    # first half of the tile (32 of 64 elements) per launch wave
    base = b.mul(ctaid, 64)
    v0 = b.ld("global", byte_offset(b, abuf, b.add(base, tid)), dtype="u32")
    b.st("shared", byte_offset(b, tile, tid), v0)
    hi = b.add(tid, 32)
    v1 = b.ld("global", byte_offset(b, abuf, b.add(base, hi)), dtype="u32")
    b.st("shared", byte_offset(b, tile, hi), v1)
    b.bar()
    # transpose within the 8x8 tile: out[c*8 + r] = tile[r*8 + c]
    r0 = b.div(tid, dim)
    c0 = b.rem(tid, dim)
    src_idx = b.mad(c0, dim, r0)
    t0 = b.ld("shared", byte_offset(b, tile, src_idx), dtype="u32")
    b.st("global", byte_offset(b, atbuf, b.add(base, tid)), t0)
    r1 = b.div(hi, dim)
    c1 = b.rem(hi, dim)
    src_idx1 = b.mad(c1, dim, r1)
    t1 = b.ld("shared", byte_offset(b, tile, src_idx1), dtype="u32")
    b.st("global", byte_offset(b, atbuf, b.add(base, hi)), t1)
    b.ret()
    return b.finish()
