"""Rodinia suite kernels: BP, BFS, GAU, HS, MD, NW, PF, SRAD, SC."""

from __future__ import annotations

import numpy as np

from repro.bench.kernels.common import byte_offset, grid_stride, sigmoid
from repro.bench.suite import Workload, benchmark
from repro.gpusim.executor import f2b
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel

_F = lambda rng, n, lo=0.1, hi=2.0: [  # noqa: E731
    f2b(float(v)) for v in rng.uniform(lo, hi, n).astype(np.float32)
]


def _bp_workload() -> Workload:
    inputs, hidden = 16, 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("x", inputs, lambda r: _F(r, inputs, -1.0, 1.0)),
            ("w", inputs * hidden, lambda r: _F(r, inputs * hidden, -0.5, 0.5)),
            ("h", hidden, None),
        ],
        params={"X": "&x", "W": "&w", "H": "&h", "n_in": inputs,
                "eta": 0.0625},
        output="h",
    )


@benchmark("BP", "Back propagation", "Rodinia", _bp_workload)
def build_bp() -> Kernel:
    """Backprop: forward weighted sum + activation, then an in-place weight
    update loop (load/store of the same address — anti-dependences that
    force region cuts inside the loop)."""
    b = KernelBuilder(
        "bp",
        params=[("X", "ptr"), ("W", "ptr"), ("H", "ptr"),
                ("n_in", "u32"), ("eta", "f32")],
    )
    gtid, _ = grid_stride(b)
    xbuf = b.ld_param("X")
    wbuf = b.ld_param("W")
    hbuf = b.ld_param("H")
    n_in = b.ld_param("n_in")
    eta = b.ld_param("eta")

    row = b.mul(gtid, n_in)
    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("FWD")
    p = b.setp("ge", j, n_in)
    b.bra("ACT", pred=p)
    xj = b.ld("global", byte_offset(b, xbuf, j), dtype="f32")
    widx = b.add(row, j)
    wj = b.ld("global", byte_offset(b, wbuf, widx), dtype="f32")
    b.fma(wj, xj, acc, dst=acc)
    b.add(j, 1, dst=j)
    b.bra("FWD")
    b.label("ACT")
    act = sigmoid(b, acc)
    b.st("global", byte_offset(b, hbuf, gtid), act, dtype="f32")
    # weight update: w += eta * delta * x (delta ~ act * (1 - act))
    one_m = b.sub(1.0, act, dtype="f32")
    delta = b.mul(act, one_m, dtype="f32")
    scale = b.mul(eta, delta, dtype="f32")
    j2 = b.mov(0, dst=b.reg("u32", "%j2"))
    b.label("UPD")
    p2 = b.setp("ge", j2, n_in)
    b.bra("DONE", pred=p2)
    xj2 = b.ld("global", byte_offset(b, xbuf, j2), dtype="f32")
    widx2 = b.add(row, j2)
    waddr = byte_offset(b, wbuf, widx2)
    wold = b.ld("global", waddr, dtype="f32")
    wnew = b.fma(scale, xj2, wold)
    b.st("global", waddr, wnew, dtype="f32")
    b.add(j2, 1, dst=j2)
    b.bra("UPD")
    b.label("DONE")
    b.ret()
    return b.finish()


def _bfs_workload() -> Workload:
    nodes, degree = 64, 4
    edges = nodes * degree

    def adj(rng):
        return list(rng.integers(0, nodes, edges))

    def levels(rng):
        lv = [0xFFFFFFFF] * nodes
        lv[0] = 0
        return lv

    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("adj", edges, adj),
            ("level", nodes, levels),
        ],
        params={"ADJ": "&adj", "LEVEL": "&level", "degree": degree,
                "cur": 0},
        output="level",
    )


@benchmark("BFS", "Breadth-first search", "Rodinia", _bfs_workload)
def build_bfs() -> Kernel:
    """One level-synchronous BFS step: frontier test + conditional neighbor
    relaxation.  Divergent control flow and in-place level updates."""
    b = KernelBuilder(
        "bfs",
        params=[("ADJ", "ptr"), ("LEVEL", "ptr"), ("degree", "u32"),
                ("cur", "u32")],
    )
    gtid, _ = grid_stride(b)
    adj = b.ld_param("ADJ")
    level = b.ld_param("LEVEL")
    degree = b.ld_param("degree")
    cur = b.ld_param("cur")

    my_level = b.ld("global", byte_offset(b, level, gtid), dtype="u32")
    p_front = b.setp("ne", my_level, cur)
    b.bra("DONE", pred=p_front)
    edge_base = b.mul(gtid, degree)
    nxt = b.add(cur, 1)
    e = b.mov(0, dst=b.reg("u32", "%e"))
    b.label("EDGES")
    pe = b.setp("ge", e, degree)
    b.bra("DONE", pred=pe)
    eidx = b.add(edge_base, e)
    nbr = b.ld("global", byte_offset(b, adj, eidx), dtype="u32")
    nbr_addr = byte_offset(b, level, nbr)
    nbr_level = b.ld("global", nbr_addr, dtype="u32")
    p_unvisited = b.setp("eq", nbr_level, 0xFFFFFFFF)
    b.st("global", nbr_addr, nxt, guard=(p_unvisited, True))
    b.add(e, 1, dst=e)
    b.bra("EDGES")
    b.label("DONE")
    b.ret()
    return b.finish()


def _gau_workload() -> Workload:
    n = 16  # n x n matrix; 64 threads handle rows below the pivot
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("m", n * n, lambda r: _F(r, n * n, 1.0, 3.0)),
        ],
        params={"M": "&m", "n": n, "k": 0},
        output="m",
    )


@benchmark("GAU", "Gaussian elimination", "Rodinia", _gau_workload)
def build_gau() -> Kernel:
    """One elimination step: each thread scales-and-subtracts the pivot row
    from its row, updating the matrix in place (dense anti-dependences)."""
    b = KernelBuilder("gau", params=[("M", "ptr"), ("n", "u32"), ("k", "u32")])
    gtid, _ = grid_stride(b)
    m = b.ld_param("M")
    n = b.ld_param("n")
    k = b.ld_param("k")

    row = b.add(gtid, 1)
    b.add(row, k, dst=row)
    p_oob = b.setp("ge", row, n)
    b.bra("DONE", pred=p_oob)
    pivot_base = b.mul(k, n)
    pivot_idx = b.add(pivot_base, k)
    pivot = b.ld("global", byte_offset(b, m, pivot_idx), dtype="f32")
    row_base = b.mul(row, n)
    lead_idx = b.add(row_base, k)
    lead = b.ld("global", byte_offset(b, m, lead_idx), dtype="f32")
    factor = b.div(lead, pivot, dtype="f32")
    j = b.mov(k, dst=b.reg("u32", "%j"))
    b.label("ROW")
    pj = b.setp("ge", j, n)
    b.bra("DONE", pred=pj)
    pidx = b.add(pivot_base, j)
    pv = b.ld("global", byte_offset(b, m, pidx), dtype="f32")
    ridx = b.add(row_base, j)
    raddr = byte_offset(b, m, ridx)
    rv = b.ld("global", raddr, dtype="f32")
    neg_f = b.neg(factor, dtype="f32")
    upd = b.fma(neg_f, pv, rv)
    b.st("global", raddr, upd, dtype="f32")
    b.add(j, 1, dst=j)
    b.bra("ROW")
    b.label("DONE")
    b.ret()
    return b.finish()


def _hs_workload() -> Workload:
    n = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("temp", n, lambda r: _F(r, n, 300.0, 340.0)),
            ("power", n, lambda r: _F(r, n, 0.0, 1.0)),
            ("out", n, None),
        ],
        params={"T": "&temp", "P": "&power", "OUT": "&out"},
        output="out",
    )


@benchmark("HS", "Hotspot", "Rodinia", _hs_workload)
def build_hs() -> Kernel:
    """Thermal stencil: shared-memory tile with halo exchange via barrier,
    one Jacobi update per launch."""
    b = KernelBuilder(
        "hs",
        params=[("T", "ptr"), ("P", "ptr"), ("OUT", "ptr")],
        shared=[("tile", 34)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    tbuf = b.ld_param("T")
    pbuf = b.ld_param("P")
    obuf = b.ld_param("OUT")
    gtid = b.mad(ctaid, ntid, tid)

    tile = b.addr_of("tile")
    v = b.ld("global", byte_offset(b, tbuf, gtid), dtype="f32")
    slot = b.add(tid, 1)
    b.st("shared", byte_offset(b, tile, slot), v, dtype="f32")
    b.bar()
    caddr = byte_offset(b, tile, slot)
    left = b.ld("shared", caddr, offset=-4, dtype="f32")
    right = b.ld("shared", caddr, offset=4, dtype="f32")
    center = b.ld("shared", caddr, dtype="f32")
    pw = b.ld("global", byte_offset(b, pbuf, gtid), dtype="f32")
    lr = b.add(left, right, dtype="f32")
    lap = b.fma(center, -2.0, lr)
    dt = b.fma(lap, 0.1, pw)
    newt = b.add(center, dt, dtype="f32")
    b.st("global", byte_offset(b, obuf, gtid), newt, dtype="f32")
    b.ret()
    return b.finish()


def _md_workload() -> Workload:
    particles, neighbors = 64, 8
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("pos", particles, lambda r: _F(r, particles, 0.0, 4.0)),
            ("nbr", particles * neighbors,
             lambda r: list(r.integers(0, particles, particles * neighbors))),
            ("force", particles, None),
        ],
        params={"POS": "&pos", "NBR": "&nbr", "F": "&force",
                "nnbr": neighbors},
        output="force",
    )


@benchmark("MD", "Molecular Dynamics", "Rodinia", _md_workload)
def build_md() -> Kernel:
    """Lennard-Jones force over a neighbor list: gather loads and an
    SFU-heavy (rcp) inner loop accumulating into a register."""
    b = KernelBuilder(
        "md",
        params=[("POS", "ptr"), ("NBR", "ptr"), ("F", "ptr"), ("nnbr", "u32")],
    )
    gtid, _ = grid_stride(b)
    pos = b.ld_param("POS")
    nbrbuf = b.ld_param("NBR")
    fbuf = b.ld_param("F")
    nnbr = b.ld_param("nnbr")

    my_pos = b.ld("global", byte_offset(b, pos, gtid), dtype="f32")
    nbr_base = b.mul(gtid, nnbr)
    force = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%force"))
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("NBRS")
    p = b.setp("ge", j, nnbr)
    b.bra("OUT", pred=p)
    nidx = b.add(nbr_base, j)
    nb = b.ld("global", byte_offset(b, nbrbuf, nidx), dtype="u32")
    nb_pos = b.ld("global", byte_offset(b, pos, nb), dtype="f32")
    dr = b.sub(nb_pos, my_pos, dtype="f32")
    r2 = b.fma(dr, dr, 0.01)
    inv_r2 = b.rcp(r2)
    inv_r6 = b.mul(inv_r2, inv_r2, dtype="f32")
    inv_r6 = b.mul(inv_r6, inv_r2, dtype="f32")
    lj = b.fma(inv_r6, -2.0, inv_r2)
    contrib = b.mul(lj, dr, dtype="f32")
    b.add(force, contrib, dtype="f32", dst=force)
    b.add(j, 1, dst=j)
    b.bra("NBRS")
    b.label("OUT")
    b.st("global", byte_offset(b, fbuf, gtid), force, dtype="f32")
    b.ret()
    return b.finish()


def _nw_workload() -> Workload:
    cols, rows_per_thread = 16, 1
    threads = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("score", threads * cols,
             lambda r: list(r.integers(0, 8, threads * cols))),
            ("ref", cols, lambda r: list(r.integers(0, 4, cols))),
        ],
        params={"S": "&score", "REF": "&ref", "cols": cols, "penalty": 1},
        output="score",
    )


@benchmark("NW", "Needleman-Wunsch", "Rodinia", _nw_workload)
def build_nw() -> Kernel:
    """Dynamic-programming row sweep: each score cell depends on the one
    just written (carried ``left`` register) and the row is updated in
    place — loop-carried dependence plus anti-dependences."""
    b = KernelBuilder(
        "nw",
        params=[("S", "ptr"), ("REF", "ptr"), ("cols", "u32"),
                ("penalty", "u32")],
    )
    gtid, _ = grid_stride(b)
    sbuf = b.ld_param("S")
    ref = b.ld_param("REF")
    cols = b.ld_param("cols")
    penalty = b.ld_param("penalty")

    row_base = b.mul(gtid, cols)
    left = b.mov(0, dst=b.reg("u32", "%left"))
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("CELL")
    p = b.setp("ge", j, cols)
    b.bra("DONE", pred=p)
    sidx = b.add(row_base, j)
    saddr = byte_offset(b, sbuf, sidx)
    up = b.ld("global", saddr, dtype="u32")
    refj = b.ld("global", byte_offset(b, ref, j), dtype="u32")
    match = b.add(left, refj)
    gap = b.add(up, penalty)
    best = b.max_(match, gap, dtype="s32")
    b.st("global", saddr, best)
    b.mov(best, dst=left)  # carried to the next cell
    b.add(j, 1, dst=j)
    b.bra("CELL")
    b.label("DONE")
    b.ret()
    return b.finish()


def _pf_workload() -> Workload:
    cols, rows = 32, 6
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("wall", cols * rows,
             lambda r: list(r.integers(0, 10, cols * rows))),
            ("result", cols, None),
        ],
        params={"WALL": "&wall", "OUT": "&result", "rows": rows},
        output="result",
    )


@benchmark("PF", "Pathfinder", "Rodinia", _pf_workload)
def build_pf() -> Kernel:
    """Row-by-row shortest-path DP through shared memory: per-row barrier,
    min of three neighbors, in-place shared update."""
    b = KernelBuilder(
        "pf",
        params=[("WALL", "ptr"), ("OUT", "ptr"), ("rows", "u32")],
        shared=[("prev", 34)],
    )
    tid = b.special_u32("%tid.x")
    ctaid = b.special_u32("%ctaid.x")
    ntid = b.special_u32("%ntid.x")
    wall = b.ld_param("WALL")
    out = b.ld_param("OUT")
    rows = b.ld_param("rows")
    gtid = b.mad(ctaid, ntid, tid)

    prev = b.addr_of("prev")
    slot = b.add(tid, 1)
    # row 0 seeds the DP (use only each block's 32 columns)
    col = b.rem(gtid, 32)
    first = b.ld("global", byte_offset(b, wall, col), dtype="u32")
    b.st("shared", byte_offset(b, prev, slot), first)
    # halo columns hold a large sentinel
    big = b.mov(1000000)
    p_first = b.setp("eq", tid, 0)
    b.st("shared", prev, big, guard=(p_first, True))
    last_slot = b.mov(33)
    lastaddr = byte_offset(b, prev, last_slot)
    b.st("shared", lastaddr, big, guard=(p_first, True))
    b.bar()

    r = b.mov(1, dst=b.reg("u32", "%r"))
    b.label("ROWS")
    p = b.setp("ge", r, rows)
    b.bra("WRITE", pred=p)
    saddr = byte_offset(b, prev, slot)
    left = b.ld("shared", saddr, offset=-4, dtype="u32")
    center = b.ld("shared", saddr, dtype="u32")
    right = b.ld("shared", saddr, offset=4, dtype="u32")
    m = b.min_(left, center, dtype="u32")
    m = b.min_(m, right, dtype="u32")
    ridx = b.mad(r, 32, col)
    w = b.ld("global", byte_offset(b, wall, ridx), dtype="u32")
    total = b.add(m, w)
    b.bar()
    b.st("shared", saddr, total)
    b.bar()
    b.add(r, 1, dst=r)
    b.bra("ROWS")
    b.label("WRITE")
    final = b.ld("shared", byte_offset(b, prev, slot), dtype="u32")
    b.st("global", byte_offset(b, out, col), final)
    b.ret()
    return b.finish()


def _srad_workload() -> Workload:
    n = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("img", n + 2, lambda r: _F(r, n + 2, 1.0, 5.0)),
            ("out", n, None),
        ],
        params={"IMG": "&img", "OUT": "&out", "lam": 0.125},
        output="out",
    )


@benchmark("SRAD", "Speckle reducing anisotropic diffusion", "Rodinia",
           _srad_workload)
def build_srad() -> Kernel:
    """Diffusion update: gradient, divergence-heavy coefficient (fp32
    division), and smoothed output store."""
    b = KernelBuilder(
        "srad", params=[("IMG", "ptr"), ("OUT", "ptr"), ("lam", "f32")]
    )
    gtid, _ = grid_stride(b)
    img = b.ld_param("IMG")
    out = b.ld_param("OUT")
    lam = b.ld_param("lam")

    idx = b.add(gtid, 1)
    caddr = byte_offset(b, img, idx)
    center = b.ld("global", caddr, dtype="f32")
    left = b.ld("global", caddr, offset=-4, dtype="f32")
    right = b.ld("global", caddr, offset=4, dtype="f32")
    g_l = b.sub(left, center, dtype="f32")
    g_r = b.sub(right, center, dtype="f32")
    num = b.mul(g_l, g_l, dtype="f32")
    num = b.fma(g_r, g_r, num)
    c2 = b.mul(center, center, dtype="f32")
    q = b.div(num, c2, dtype="f32")
    denom = b.add(q, 1.0, dtype="f32")
    coeff = b.rcp(denom)
    flux = b.add(g_l, g_r, dtype="f32")
    upd = b.mul(coeff, flux, dtype="f32")
    upd = b.mul(upd, lam, dtype="f32")
    res = b.add(center, upd, dtype="f32")
    b.st("global", byte_offset(b, out, gtid), res, dtype="f32")
    b.ret()
    return b.finish()


def _sc_workload() -> Workload:
    points, centers = 64, 6
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("pts", points, lambda r: _F(r, points, 0.0, 8.0)),
            ("ctr", centers, lambda r: _F(r, centers, 0.0, 8.0)),
            ("assign", points, None),
        ],
        params={"PTS": "&pts", "CTR": "&ctr", "ASSIGN": "&assign",
                "ncenters": centers},
        output="assign",
    )


@benchmark("SC", "Stream cluster", "Rodinia", _sc_workload)
def build_sc() -> Kernel:
    """Nearest-center assignment: distance loop with select-based argmin
    (two loop-carried registers: best distance and best index)."""
    b = KernelBuilder(
        "sc",
        params=[("PTS", "ptr"), ("CTR", "ptr"), ("ASSIGN", "ptr"),
                ("ncenters", "u32")],
    )
    gtid, _ = grid_stride(b)
    pts = b.ld_param("PTS")
    ctr = b.ld_param("CTR")
    assign = b.ld_param("ASSIGN")
    ncenters = b.ld_param("ncenters")

    p0 = b.ld("global", byte_offset(b, pts, gtid), dtype="f32")
    best_d = b.mov(1.0e30, dtype="f32", dst=b.reg("f32", "%best_d"))
    best_i = b.mov(0, dst=b.reg("u32", "%best_i"))
    c = b.mov(0, dst=b.reg("u32", "%c"))
    b.label("CENTERS")
    p = b.setp("ge", c, ncenters)
    b.bra("OUT", pred=p)
    cv = b.ld("global", byte_offset(b, ctr, c), dtype="f32")
    d = b.sub(cv, p0, dtype="f32")
    d2 = b.mul(d, d, dtype="f32")
    closer = b.setp("lt", d2, best_d, dtype="f32")
    b.selp(d2, best_d, closer, dtype="f32", dst=best_d)
    b.selp(c, best_i, closer, dtype="u32", dst=best_i)
    b.add(c, 1, dst=c)
    b.bra("CENTERS")
    b.label("OUT")
    b.st("global", byte_offset(b, assign, gtid), best_i)
    b.ret()
    return b.finish()
