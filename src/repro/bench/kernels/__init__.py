"""Kernel builders for the 25 Table 3 benchmarks, grouped by suite."""
