"""Parboil suite kernels: SGEMM, SPMV, STC, TPACF."""

from __future__ import annotations

import numpy as np

from repro.bench.kernels.common import byte_offset, grid_stride
from repro.bench.suite import Workload, benchmark
from repro.gpusim.executor import f2b
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel

_F = lambda rng, n, lo=0.1, hi=2.0: [  # noqa: E731
    f2b(float(v)) for v in rng.uniform(lo, hi, n).astype(np.float32)
]


def _sgemm_workload() -> Workload:
    k_dim, rows = 32, 64  # one output element per thread
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("a", rows * k_dim, lambda r: _F(r, rows * k_dim, -1.0, 1.0)),
            ("b", k_dim, lambda r: _F(r, k_dim, -1.0, 1.0)),
            ("c", rows, None),
        ],
        params={"A": "&a", "B": "&b", "C": "&c", "K": k_dim},
        output="c",
    )


@benchmark("SGEMM", "SP matrix multiplication", "Parboil", _sgemm_workload)
def build_sgemm() -> Kernel:
    """Tiled matrix-vector core of SGEMM: the B tile is staged through
    shared memory with barriers; the dot-product accumulator is classic
    loop-carried live state (un-prunable, like the paper notes)."""
    TILE = 8
    b = KernelBuilder(
        "sgemm",
        params=[("A", "ptr"), ("B", "ptr"), ("C", "ptr"), ("K", "u32")],
        shared=[("btile", TILE)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    abuf = b.ld_param("A")
    bbuf = b.ld_param("B")
    cbuf = b.ld_param("C")
    kdim = b.ld_param("K")
    gtid = b.mad(ctaid, ntid, tid)
    row_base = b.mul(gtid, kdim)
    btile = b.addr_of("btile")

    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    k0 = b.mov(0, dst=b.reg("u32", "%k0"))
    b.label("TILE_LOOP")
    p_done = b.setp("ge", k0, kdim)
    b.bra("WRITE", pred=p_done)
    # cooperative tile load: first TILE threads fetch B[k0 + tid]
    p_loader = b.setp("lt", tid, TILE)
    src_idx = b.add(k0, tid)
    bv = b.ld("global", byte_offset(b, bbuf, src_idx), dtype="f32",
              guard=(p_loader, True))
    b.st("shared", byte_offset(b, btile, tid), bv, dtype="f32",
         guard=(p_loader, True))
    b.bar()
    kk = b.mov(0, dst=b.reg("u32", "%kk"))
    b.label("INNER")
    p_tile_end = b.setp("ge", kk, TILE)
    b.bra("NEXT_TILE", pred=p_tile_end)
    aidx = b.add(row_base, k0)
    aidx = b.add(aidx, kk)
    av = b.ld("global", byte_offset(b, abuf, aidx), dtype="f32")
    bval = b.ld("shared", byte_offset(b, btile, kk), dtype="f32")
    b.fma(av, bval, acc, dst=acc)
    b.add(kk, 1, dst=kk)
    b.bra("INNER")
    b.label("NEXT_TILE")
    b.bar()
    b.add(k0, TILE, dst=k0)
    b.bra("TILE_LOOP")
    b.label("WRITE")
    b.st("global", byte_offset(b, cbuf, gtid), acc, dtype="f32")
    b.ret()
    return b.finish()


def _spmv_workload() -> Workload:
    rows, nnz_per_row = 64, 6
    nnz = rows * nnz_per_row

    def rowptr(rng):
        return [i * nnz_per_row for i in range(rows)] + [nnz]

    def colidx(rng):
        return list(rng.integers(0, rows, nnz))

    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("rowptr", rows + 1, rowptr),
            ("colidx", nnz, colidx),
            ("vals", nnz, lambda r: _F(r, nnz, -1.0, 1.0)),
            ("x", rows, lambda r: _F(r, rows, -1.0, 1.0)),
            ("y", rows, None),
        ],
        params={
            "ROWPTR": "&rowptr",
            "COLIDX": "&colidx",
            "VALS": "&vals",
            "X": "&x",
            "Y": "&y",
        },
        output="y",
    )


@benchmark("SPMV", "Sparse matrix-vector mult.", "Parboil", _spmv_workload)
def build_spmv() -> Kernel:
    """CSR sparse matrix-vector product: data-dependent loop bounds and
    indirect (gather) loads."""
    b = KernelBuilder(
        "spmv",
        params=[("ROWPTR", "ptr"), ("COLIDX", "ptr"), ("VALS", "ptr"),
                ("X", "ptr"), ("Y", "ptr")],
    )
    gtid, _ = grid_stride(b)
    rowptr = b.ld_param("ROWPTR")
    colidx = b.ld_param("COLIDX")
    vals = b.ld_param("VALS")
    xbuf = b.ld_param("X")
    ybuf = b.ld_param("Y")

    start = b.ld("global", byte_offset(b, rowptr, gtid), dtype="u32")
    row_next = b.add(gtid, 1)
    end = b.ld("global", byte_offset(b, rowptr, row_next), dtype="u32")
    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    j = b.mov(start, dst=b.reg("u32", "%j"))
    b.label("ROW")
    p = b.setp("ge", j, end)
    b.bra("OUT", pred=p)
    col = b.ld("global", byte_offset(b, colidx, j), dtype="u32")
    v = b.ld("global", byte_offset(b, vals, j), dtype="f32")
    xv = b.ld("global", byte_offset(b, xbuf, col), dtype="f32")
    b.fma(v, xv, acc, dst=acc)
    b.add(j, 1, dst=j)
    b.bra("ROW")
    b.label("OUT")
    b.st("global", byte_offset(b, ybuf, gtid), acc, dtype="f32")
    b.ret()
    return b.finish()


def _stc_workload() -> Workload:
    chunk = 8
    n = 64 * chunk  # 64 threads, one chunk each
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("src", n + 2, lambda r: _F(r, n + 2)),
            ("dst", n, None),
        ],
        params={"SRC": "&src", "DST": "&dst", "chunk": chunk},
        output="dst",
    )


@benchmark("STC", "Jacobi stencil", "Parboil", _stc_workload)
def build_stc() -> Kernel:
    """Sequential stencil sweep per thread with *loop-carried* window
    registers and a store every iteration — the structure the paper calls
    out as preventing checkpoint pruning (STC is its worst case, 19%)."""
    b = KernelBuilder(
        "stc", params=[("SRC", "ptr"), ("DST", "ptr"), ("chunk", "u32")]
    )
    gtid, _ = grid_stride(b)
    src = b.ld_param("SRC")
    dst = b.ld_param("DST")
    chunk = b.ld_param("chunk")

    base_i = b.mul(gtid, chunk)
    # rolling window: prev = src[base], cur = src[base+1]
    prev = b.ld("global", byte_offset(b, src, base_i), dtype="f32",
                dst=b.reg("f32", "%prev"))
    i1 = b.add(base_i, 1)
    cur = b.ld("global", byte_offset(b, src, i1), dtype="f32",
               dst=b.reg("f32", "%cur"))
    k = b.mov(0, dst=b.reg("u32", "%k"))
    b.label("SWEEP")
    p = b.setp("ge", k, chunk)
    b.bra("DONE", pred=p)
    idx = b.add(base_i, k)
    nxt_i = b.add(idx, 2)
    nxt = b.ld("global", byte_offset(b, src, nxt_i), dtype="f32")
    s = b.add(prev, cur, dtype="f32")
    s = b.add(s, nxt, dtype="f32")
    avg = b.mul(s, 0.3333333, dtype="f32")
    b.st("global", byte_offset(b, dst, idx), avg, dtype="f32")
    b.mov(cur, dtype="f32", dst=prev)  # roll the window (loop-carried)
    b.mov(nxt, dtype="f32", dst=cur)
    b.add(k, 1, dst=k)
    b.bra("SWEEP")
    b.label("DONE")
    b.ret()
    return b.finish()


def _tpacf_workload() -> Workload:
    points, bins = 32, 8
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("px", points, lambda r: _F(r, points, -1.0, 1.0)),
            ("py", points, lambda r: _F(r, points, -1.0, 1.0)),
            ("hist", bins, None),
        ],
        params={"PX": "&px", "PY": "&py", "HIST": "&hist",
                "npoints": points, "nbins": bins},
        output="hist",
    )


@benchmark("TPACF", "2-point angular correlation", "Parboil", _tpacf_workload)
def build_tpacf() -> Kernel:
    """Angular correlation histogram: each thread bins the distances from
    its point to all others into a private local histogram, then merges
    with global atomics (inter-thread anti-dependences -> sync regions)."""
    b = KernelBuilder(
        "tpacf",
        params=[("PX", "ptr"), ("PY", "ptr"), ("HIST", "ptr"),
                ("npoints", "u32"), ("nbins", "u32")],
    )
    gtid, _ = grid_stride(b)
    px = b.ld_param("PX")
    py = b.ld_param("PY")
    hist = b.ld_param("HIST")
    npoints = b.ld_param("npoints")
    nbins = b.ld_param("nbins")

    my_idx = b.rem(gtid, npoints)
    x0 = b.ld("global", byte_offset(b, px, my_idx), dtype="f32")
    y0 = b.ld("global", byte_offset(b, py, my_idx), dtype="f32")

    # zero the private histogram (local bytes 0..nbins*4)
    z = b.mov(0, dst=b.reg("u32", "%z"))
    b.label("ZERO")
    pz = b.setp("ge", z, nbins)
    b.bra("PAIRS_INIT", pred=pz)
    zoff = b.shl(z, 2)
    b.st("local", zoff, 0)
    b.add(z, 1, dst=z)
    b.bra("ZERO")

    b.label("PAIRS_INIT")
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("PAIRS")
    pj = b.setp("ge", j, npoints)
    b.bra("MERGE_INIT", pred=pj)
    xj = b.ld("global", byte_offset(b, px, j), dtype="f32")
    yj = b.ld("global", byte_offset(b, py, j), dtype="f32")
    dx = b.sub(xj, x0, dtype="f32")
    dy = b.sub(yj, y0, dtype="f32")
    d2 = b.mul(dx, dx, dtype="f32")
    d2 = b.fma(dy, dy, d2)
    scaled = b.mul(d2, 0.9, dtype="f32")
    binf = b.min_(scaled, 7.0, dtype="f32")
    bin_ = b.cvt(binf, "u32")
    boff = b.shl(bin_, 2)
    old = b.ld("local", boff, dtype="u32")
    newv = b.add(old, 1)
    b.st("local", boff, newv)
    b.add(j, 1, dst=j)
    b.bra("PAIRS")

    b.label("MERGE_INIT")
    m = b.mov(0, dst=b.reg("u32", "%m"))
    b.label("MERGE")
    pm = b.setp("ge", m, nbins)
    b.bra("DONE", pred=pm)
    moff = b.shl(m, 2)
    cnt = b.ld("local", moff, dtype="u32")
    b.atom("global", "add", byte_offset(b, hist, m), cnt)
    b.add(m, 1, dst=m)
    b.bra("MERGE")
    b.label("DONE")
    b.ret()
    return b.finish()
