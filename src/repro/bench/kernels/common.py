"""Shared idioms for benchmark kernels."""

from __future__ import annotations

from typing import Tuple

from repro.ir.builder import KernelBuilder
from repro.ir.types import Reg


def grid_stride(b: KernelBuilder) -> Tuple[Reg, Reg]:
    """Classic grid-stride prologue: returns (global thread id, stride)."""
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    nctaid = b.special_u32("%nctaid.x")
    gtid = b.mad(ctaid, ntid, tid)
    stride = b.mul(ntid, nctaid)
    return gtid, stride


def byte_offset(b: KernelBuilder, base: Reg, index, shift: int = 2) -> Reg:
    """base + (index << shift) — the 4-byte indexed address idiom."""
    off = b.shl(index, shift)
    return b.add(base, off)


def sigmoid(b: KernelBuilder, x: Reg) -> Reg:
    """1 / (1 + 2^(-1.4427 * x)) — fp32 logistic via the SFU ex2 unit."""
    scaled = b.mul(x, -1.4426950408889634, dtype="f32")
    e = b.ex2(scaled)
    denom = b.add(e, 1.0, dtype="f32")
    return b.rcp(denom)
