"""GPGPU-Sim benchmark suite kernels: CP, LIB, LPS, NN, NQU."""

from __future__ import annotations

import numpy as np

from repro.bench.kernels.common import byte_offset, grid_stride, sigmoid
from repro.bench.suite import Workload, benchmark
from repro.gpusim.executor import f2b
from repro.ir.builder import KernelBuilder
from repro.ir.module import Kernel

_F = lambda rng, n, lo=0.1, hi=2.0: [  # noqa: E731
    f2b(float(v)) for v in rng.uniform(lo, hi, n).astype(np.float32)
]


def _cp_workload() -> Workload:
    atoms, points = 24, 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("ax", atoms, lambda r: _F(r, atoms)),
            ("ay", atoms, lambda r: _F(r, atoms)),
            ("aq", atoms, lambda r: _F(r, atoms, 0.5, 1.5)),
            ("pot", points, None),
        ],
        params={
            "AX": "&ax",
            "AY": "&ay",
            "AQ": "&aq",
            "POT": "&pot",
            "natoms": atoms,
        },
        output="pot",
    )


@benchmark("CP", "Coulombic potential", "GPGPU-Sim bench", _cp_workload)
def build_cp() -> Kernel:
    """Each thread evaluates the Coulomb potential at one lattice point by
    summing charge / distance over all atoms — a deep float inner loop with
    no stores, Penny's best case for pruning."""
    b = KernelBuilder(
        "cp",
        params=[("AX", "ptr"), ("AY", "ptr"), ("AQ", "ptr"),
                ("POT", "ptr"), ("natoms", "u32")],
    )
    gtid, _ = grid_stride(b)
    ax = b.ld_param("AX")
    ay = b.ld_param("AY")
    aq = b.ld_param("AQ")
    pot_buf = b.ld_param("POT")
    natoms = b.ld_param("natoms")

    px_i = b.and_(gtid, 7)
    py_i = b.shr(gtid, 3)
    px = b.cvt(px_i, "f32")
    py = b.cvt(py_i, "f32")

    pot = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%pot"))
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("ATOM_LOOP")
    p_end = b.setp("ge", i, natoms)
    b.bra("STORE", pred=p_end)
    x = b.ld("global", byte_offset(b, ax, i), dtype="f32")
    y = b.ld("global", byte_offset(b, ay, i), dtype="f32")
    q = b.ld("global", byte_offset(b, aq, i), dtype="f32")
    dx = b.sub(x, px, dtype="f32")
    dy = b.sub(y, py, dtype="f32")
    d2 = b.mul(dx, dx, dtype="f32")
    d2 = b.fma(dy, dy, d2)
    d2 = b.add(d2, 0.0625, dtype="f32")  # softening term
    dist = b.sqrt(d2)
    inv = b.rcp(dist)
    b.fma(q, inv, pot, dst=pot)
    b.add(i, 1, dst=i)
    b.bra("ATOM_LOOP")
    b.label("STORE")
    b.st("global", byte_offset(b, pot_buf, gtid), pot, dtype="f32")
    b.ret()
    return b.finish()


def _lib_workload() -> Workload:
    threads = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[("acc", threads, None)],
        params={"OUT": "&acc", "paths": 24},
        output="acc",
    )


@benchmark("LIB", "Libor Monte Carlo", "GPGPU-Sim bench", _lib_workload)
def build_lib() -> Kernel:
    """Monte-Carlo path loop: an LCG random stream drives an exponential
    payoff accumulator — loop-carried integer *and* float state."""
    b = KernelBuilder("lib", params=[("OUT", "ptr"), ("paths", "u32")])
    gtid, _ = grid_stride(b)
    out = b.ld_param("OUT")
    paths = b.ld_param("paths")

    state = b.mad(gtid, 2654435761, 12345, dst=b.reg("u32", "%state"))
    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    i = b.mov(0, dst=b.reg("u32", "%i"))
    b.label("PATH")
    p = b.setp("ge", i, paths)
    b.bra("DONE", pred=p)
    b.mad(state, 1664525, 1013904223, dst=state)
    bits = b.shr(state, 9)
    u = b.cvt(bits, "f32")
    u = b.mul(u, 1.1920929e-7, dtype="f32")  # uniform in [0, ~8)
    rate = b.mul(u, -0.25, dtype="f32")
    growth = b.ex2(rate)
    b.add(acc, growth, dtype="f32", dst=acc)
    b.add(i, 1, dst=i)
    b.bra("PATH")
    b.label("DONE")
    payoff = b.mul(acc, 0.01, dtype="f32")
    b.st("global", byte_offset(b, out, gtid), payoff, dtype="f32")
    b.ret()
    return b.finish()


def _lps_workload() -> Workload:
    n = 64  # one tile per block
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("grid_in", n, lambda r: _F(r, n)),
            ("grid_out", n, None),
        ],
        params={"IN": "&grid_in", "OUT": "&grid_out", "steps": 6},
        output="grid_out",
    )


@benchmark("LPS", "Laplace transform", "GPGPU-Sim bench", _lps_workload)
def build_lps() -> Kernel:
    """Iterative Laplace relaxation on a shared-memory tile: barrier-
    separated in-place updates (shared-memory anti-dependences)."""
    b = KernelBuilder(
        "lps",
        params=[("IN", "ptr"), ("OUT", "ptr"), ("steps", "u32")],
        shared=[("tile", 34)],
    )
    tid = b.special_u32("%tid.x")
    ntid = b.special_u32("%ntid.x")
    ctaid = b.special_u32("%ctaid.x")
    gin = b.ld_param("IN")
    gout = b.ld_param("OUT")
    steps = b.ld_param("steps")
    gtid = b.mad(ctaid, ntid, tid)

    tile = b.addr_of("tile")
    # load interior element (halo cells stay zero)
    v = b.ld("global", byte_offset(b, gin, gtid), dtype="f32")
    slot = b.add(tid, 1)
    b.st("shared", byte_offset(b, tile, slot), v, dtype="f32")
    b.bar()

    s = b.mov(0, dst=b.reg("u32", "%s"))
    b.label("STEP")
    p = b.setp("ge", s, steps)
    b.bra("FLUSH", pred=p)
    addr_c = byte_offset(b, tile, slot)
    left = b.ld("shared", addr_c, offset=-4, dtype="f32")
    right = b.ld("shared", addr_c, offset=4, dtype="f32")
    center = b.ld("shared", addr_c, dtype="f32")
    sum_lr = b.add(left, right, dtype="f32")
    relaxed = b.fma(center, 2.0, sum_lr)
    relaxed = b.mul(relaxed, 0.25, dtype="f32")
    b.bar()
    b.st("shared", addr_c, relaxed, dtype="f32")
    b.bar()
    b.add(s, 1, dst=s)
    b.bra("STEP")
    b.label("FLUSH")
    final = b.ld("shared", byte_offset(b, tile, slot), dtype="f32")
    b.st("global", byte_offset(b, gout, gtid), final, dtype="f32")
    b.ret()
    return b.finish()


def _nn_workload() -> Workload:
    inputs, outputs = 16, 64
    return Workload(
        grid=2,
        block=32,
        buffers=[
            ("x", inputs, lambda r: _F(r, inputs, -1.0, 1.0)),
            ("w", inputs * outputs, lambda r: _F(r, inputs * outputs, -0.5, 0.5)),
            ("y", outputs, None),
        ],
        params={"X": "&x", "W": "&w", "Y": "&y", "n_in": inputs},
        output="y",
    )


@benchmark("NN", "Neural network", "GPGPU-Sim bench", _nn_workload)
def build_nn() -> Kernel:
    """One dense layer: per-output weighted sum plus a logistic activation
    computed on the SFU path."""
    b = KernelBuilder(
        "nn",
        params=[("X", "ptr"), ("W", "ptr"), ("Y", "ptr"), ("n_in", "u32")],
    )
    gtid, _ = grid_stride(b)
    xbuf = b.ld_param("X")
    wbuf = b.ld_param("W")
    ybuf = b.ld_param("Y")
    n_in = b.ld_param("n_in")

    row_base = b.mul(gtid, n_in)
    acc = b.mov(0.0, dtype="f32", dst=b.reg("f32", "%acc"))
    j = b.mov(0, dst=b.reg("u32", "%j"))
    b.label("DOT")
    p = b.setp("ge", j, n_in)
    b.bra("ACT", pred=p)
    xj = b.ld("global", byte_offset(b, xbuf, j), dtype="f32")
    widx = b.add(row_base, j)
    wj = b.ld("global", byte_offset(b, wbuf, widx), dtype="f32")
    b.fma(wj, xj, acc, dst=acc)
    b.add(j, 1, dst=j)
    b.bra("DOT")
    b.label("ACT")
    act = sigmoid(b, acc)
    b.st("global", byte_offset(b, ybuf, gtid), act, dtype="f32")
    b.ret()
    return b.finish()


def _nqu_workload() -> Workload:
    threads = 64
    return Workload(
        grid=2,
        block=32,
        buffers=[("counts", threads, None)],
        params={"OUT": "&counts", "n": 6},
        output="counts",
    )


@benchmark("NQU", "N-Queens", "GPGPU-Sim bench", _nqu_workload)
def build_nqu() -> Kernel:
    """Bitmask N-Queens backtracking with an explicit local-memory stack —
    the divergence-heavy, irregular-control benchmark of the suite.  Each
    thread pins the first queen to ``tid % n`` and counts completions."""
    b = KernelBuilder("nqu", params=[("OUT", "ptr"), ("n", "u32")])
    gtid, _ = grid_stride(b)
    out = b.ld_param("OUT")
    n = b.ld_param("n")
    full = b.shl(1, n)
    full = b.sub(full, 1)  # n ones

    # Local stacks (byte offsets; depth < 16): occupied columns, the two
    # diagonal masks, and the candidate set still to try at this depth.
    # local[0..15]: cols, [16..31]: diag-left, [32..47]: diag-right,
    # [48..63]: candidates.
    zero = b.mov(0)
    first_col = b.rem(gtid, n)
    first = b.shl(1, first_col)

    depth = b.mov(1, dst=b.reg("u32", "%depth"))
    count = b.mov(0, dst=b.reg("u32", "%count"))
    cols = b.mov(first, dst=b.reg("u32", "%cols"))
    dl = b.shl(first, 1, dst=b.reg("u32", "%dl"))
    dr = b.shr(first, 1, dst=b.reg("u32", "%dr"))

    # cand(depth) = free positions at this depth
    blocked = b.or_(cols, dl)
    blocked = b.or_(blocked, dr)
    inv = b.xor(blocked, 0xFFFFFFFF)
    cand = b.and_(inv, full, dst=b.reg("u32", "%cand"))

    b.label("SEARCH")
    p_done = b.setp("eq", depth, 0)
    b.bra("FINISH", pred=p_done)
    p_none = b.setp("eq", cand, 0)
    b.bra("BACKTRACK", pred=p_none)
    # pick lowest candidate bit
    negc = b.neg(cand, dtype="s32")
    bit = b.and_(cand, negc)
    b.xor(cand, bit, dst=cand)  # remove it from this depth's candidates
    # placing this queen as number depth+1 completes the board at depth n-1
    nm1 = b.sub(n, 1)
    p_leaf = b.setp("ge", depth, nm1)
    b.bra("LEAF", pred=p_leaf)
    # push state
    doff = b.shl(depth, 2)
    b.st("local", doff, cols)
    b.st("local", doff, dl, offset=64)
    b.st("local", doff, dr, offset=128)
    b.st("local", doff, cand, offset=192)
    # descend
    b.or_(cols, bit, dst=cols)
    t1 = b.or_(dl, bit)
    b.shl(t1, 1, dst=dl)
    t2 = b.or_(dr, bit)
    b.shr(t2, 1, dst=dr)
    b.add(depth, 1, dst=depth)
    blocked2 = b.or_(cols, dl)
    blocked2 = b.or_(blocked2, dr)
    inv2 = b.xor(blocked2, 0xFFFFFFFF)
    b.and_(inv2, full, dst=cand)
    b.bra("SEARCH")
    b.label("LEAF")
    b.add(count, 1, dst=count)
    b.bra("SEARCH")
    b.label("BACKTRACK")
    b.sub(depth, 1, dst=depth)
    p_out = b.setp("eq", depth, 0)
    b.bra("SEARCH", pred=p_out)
    boff = b.shl(depth, 2)
    b.ld("local", boff, dtype="u32", dst=cols)
    b.ld("local", boff, offset=64, dtype="u32", dst=dl)
    b.ld("local", boff, offset=128, dtype="u32", dst=dr)
    b.ld("local", boff, offset=192, dtype="u32", dst=cand)
    b.bra("SEARCH")
    b.label("FINISH")
    b.st("global", byte_offset(b, out, gtid), count)
    b.ret()
    return b.finish()
