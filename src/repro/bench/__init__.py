"""Benchmark suite: the 25 applications of the paper's Table 3.

Each benchmark is a PTX-subset kernel with the *computational skeleton* of
its namesake (tiling, stencils, reductions, in-place updates, divergent
traversal — see DESIGN.md §4 on this substitution) plus a deterministic
workload the simulator can execute and verify.
"""

from repro.bench.suite import (
    ALL_BENCHMARKS,
    Benchmark,
    Workload,
    benchmark,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "Benchmark",
    "Workload",
    "benchmark",
    "get_benchmark",
]
