"""Command-line front end: protect PTX-subset kernels from the shell.

Usage::

    python -m repro.cli compile kernel.ptx --scheme Penny
    python -m repro.cli compile kernel.ptx --pruning basic --storage global
    python -m repro.cli report kernel.ptx           # compile stats as JSON
    python -m repro.cli schemes                     # list presets

``compile`` prints the protected kernel's PTX followed by a ``//``-comment
report (region count, checkpoint statistics, storage layout); ``report``
emits the statistics alone as JSON for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    scheme_config,
)
from repro.ir.parser import parse_module
from repro.ir.printer import print_kernel

_SCHEMES = (SCHEME_PENNY, SCHEME_BOLT_GLOBAL, SCHEME_BOLT_AUTO)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


def _build_config(args: argparse.Namespace) -> PennyConfig:
    config = scheme_config(args.scheme)
    if args.pruning:
        config.pruning = args.pruning
    if args.storage:
        config.storage_mode = args.storage
    if args.overwrite:
        config.overwrite = args.overwrite
    if args.no_low_opts:
        config.low_opts = False
    if args.param_noalias:
        config.param_noalias = True
    return config


def _compile_all(args: argparse.Namespace):
    module = parse_module(_read_source(args.input))
    config = _build_config(args)
    launch = LaunchConfig(
        threads_per_block=args.block, num_blocks=args.grid
    )
    compiler = PennyCompiler(config)
    return [compiler.compile(kernel, launch) for kernel in module.kernels]


def cmd_compile(args: argparse.Namespace) -> int:
    for result in _compile_all(args):
        print(print_kernel(result.kernel))
        print()
        print(f"// scheme: {result.config.name}")
        for key in sorted(result.stats):
            print(f"// {key}: {result.stats[key]}")
        print()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    reports = []
    for result in _compile_all(args):
        reports.append(
            {
                "kernel": result.kernel.name,
                "scheme": result.config.name,
                "stats": result.stats,
                "boundaries": sorted(result.regions.boundaries),
            }
        )
    json.dump(reports, sys.stdout, indent=2, default=str)
    print()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.verify import verify_compiled

    status = 0
    for result in _compile_all(args):
        problems = verify_compiled(result.kernel)
        if problems:
            status = 1
            print(f"{result.kernel.name}: {len(problems)} violation(s)")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{result.kernel.name}: recovery metadata verified clean")
    return status


def cmd_schemes(_args: argparse.Namespace) -> int:
    for name in _SCHEMES:
        cfg = scheme_config(name)
        print(
            f"{name:20} placement={cfg.placement:8} pruning={cfg.pruning:8} "
            f"storage={cfg.storage_mode:7} overwrite={cfg.overwrite:5} "
            f"low_opts={cfg.low_opts}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Penny: protect PTX-subset kernels against soft errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile kernels and print protected PTX"
    )
    p_report = sub.add_parser(
        "report", help="compile kernels and print statistics as JSON"
    )
    p_verify = sub.add_parser(
        "verify",
        help="compile kernels and statically verify their recovery metadata",
    )
    for p in (p_compile, p_report, p_verify):
        p.add_argument("input", help="PTX-subset file, or '-' for stdin")
        p.add_argument(
            "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
            help="comparison-scheme preset to start from",
        )
        p.add_argument(
            "--pruning", choices=("none", "basic", "optimal"), default=None
        )
        p.add_argument(
            "--storage", choices=("shared", "global", "auto"), default=None
        )
        p.add_argument(
            "--overwrite", choices=("rr", "sa", "auto", "none"), default=None
        )
        p.add_argument("--no-low-opts", action="store_true")
        p.add_argument(
            "--param-noalias", action="store_true",
            help="assume distinct pointer params never alias (restrict)",
        )
        p.add_argument("--block", type=int, default=256,
                       help="threads per block (storage layout)")
        p.add_argument("--grid", type=int, default=4,
                       help="number of blocks (storage layout)")
    p_compile.set_defaults(func=cmd_compile)
    p_report.set_defaults(func=cmd_report)
    p_verify.set_defaults(func=cmd_verify)

    p_schemes = sub.add_parser("schemes", help="list scheme presets")
    p_schemes.set_defaults(func=cmd_schemes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
