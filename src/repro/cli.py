"""Command-line front end: protect PTX-subset kernels from the shell.

Usage::

    python -m repro.cli compile kernel.ptx --scheme Penny
    python -m repro.cli compile kernel.ptx --pruning basic --storage global
    python -m repro.cli report kernel.ptx           # compile stats as JSON
    python -m repro.cli schemes                     # list presets
    python -m repro.cli campaign --bench STC -n 200 --workers 4 \\
        --surfaces rf,ckpt,recovery --journal stc.jsonl
    python -m repro.cli fuzz -n 1000 --seed 2020 --workers 4 \\
        --reduce --journal findings.jsonl
    python -m repro.cli verify --corpus findings.jsonl
    penny lint examples/vecadd.ptx --format sarif --out lint.sarif
    penny lint --bench all --compiled --fail-on warning
    penny trace examples/scale.ptx --trace-out trace.json

``compile`` prints the protected kernel's PTX followed by a ``//``-comment
report (region count, checkpoint statistics, storage layout); ``report``
emits the statistics alone as JSON for scripting; ``campaign`` runs a
parallel fault-injection campaign on a registered benchmark and prints the
outcome summary, the DUE taxonomy and Wilson confidence intervals
(``--resume`` continues a killed campaign from its JSONL journal);
``fuzz`` runs the differential compiler fuzzer (exit status 1 when any
finding survives) and ``verify --corpus`` re-checks a fuzz corpus's
findings — including their reduced reproducers — against the current
compiler.

``lint`` runs the :mod:`repro.lint` static analyzer over PTX files,
registered benchmarks (``--bench``), or golden fixtures (``--fixtures``),
rendering text with source carets, JSONL metrics records, or SARIF
2.1.0 for CI code scanning; ``--compiled`` additionally compiles each
kernel and runs the post-compile checkpoint rules.  Exit status is 1
when any diagnostic reaches ``--fail-on`` (default ``error``).

``serve`` runs the :mod:`repro.serve` async compile server (JSONL over
TCP: bounded request queue, typed ``ServerBusy`` backpressure, compile
cache, graceful SIGTERM drain); ``client`` is its blocking counterpart
with retry + exponential backoff + jitter (``penny client compile
kernel.ptx``, plus ``ping``/``stats``/``shutdown``); ``cache`` manages
the on-disk compile cache (``penny cache {stats,clear,gc}``).
``compile``/``report``/``verify`` accept ``--jobs N`` (parallel batch
compilation of multi-kernel modules) and ``--cache-dir DIR``.

``trace`` compiles and executes a kernel under a :mod:`repro.obs` tracer
— including a seeded register-file fault so the trace shows detection
and recovery re-execution — and writes a Chrome trace-event JSON
(``--trace-out``, default ``trace.json``; open in ``chrome://tracing``
or https://ui.perfetto.dev).  ``compile``, ``campaign`` and ``fuzz``
also accept ``--trace-out``/``--metrics-out`` to observe any run.
(``penny`` is the installed console-script alias for this module.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import repro.obs as obs
from repro.core.pipeline import LaunchConfig, PennyCompiler, PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_PENNY,
    Scheme,
    scheme_config,
)
from repro.ir.parser import parse_module
from repro.ir.printer import print_kernel

_SCHEMES = (SCHEME_PENNY, SCHEME_BOLT_GLOBAL, SCHEME_BOLT_AUTO)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


class _Observation:
    """``--trace-out`` / ``--metrics-out`` plumbing for any subcommand.

    When either flag was given, installs a :class:`repro.obs.Tracer` for
    the duration of the ``with`` block and writes the requested artifacts
    on exit; otherwise it is inert and the command runs unobserved.
    """

    def __init__(self, args: argparse.Namespace):
        self.trace_out = getattr(args, "trace_out", None)
        self.metrics_out = getattr(args, "metrics_out", None)
        self.tracer: Optional[obs.Tracer] = (
            obs.Tracer()
            if (self.trace_out or self.metrics_out)
            else None
        )
        self._reports: List = []

    def report(self, reportable) -> None:
        """Queue a Reportable for the metrics sink (no-op when inert)."""
        if self.tracer is not None:
            self._reports.append(reportable)

    def __enter__(self) -> "_Observation":
        if self.tracer is not None:
            self.tracer.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        if self.tracer is None:
            return False
        self.tracer.__exit__(*exc)
        if self.trace_out:
            obs.write_chrome_trace(self.trace_out, self.tracer)
            print(f"trace written to {self.trace_out}", file=sys.stderr)
        if self.metrics_out:
            with obs.MetricsSink(self.metrics_out) as sink:
                if self.tracer.counters:
                    sink.write_counters(self.tracer.counters)
                for r in self._reports:
                    sink.write_report(r)
            print(
                f"metrics written to {self.metrics_out}", file=sys.stderr
            )
        return False


def _build_config(args: argparse.Namespace) -> PennyConfig:
    config = scheme_config(args.scheme)
    if args.pruning:
        config.pruning = args.pruning
    if args.storage:
        config.storage_mode = args.storage
    if args.overwrite:
        config.overwrite = args.overwrite
    if args.no_low_opts:
        config.low_opts = False
    if args.param_noalias:
        config.param_noalias = True
    if getattr(args, "policy", None):
        from repro.policy import PolicyError, ProtectionPolicy

        try:
            config.policy = str(ProtectionPolicy.parse(args.policy))
        except PolicyError as exc:
            raise SystemExit(f"error: invalid --policy: {exc}")
    return config


def _compile_all(args: argparse.Namespace):
    from contextlib import nullcontext

    source = _read_source(args.input)
    config = _build_config(args)
    launch = LaunchConfig(
        threads_per_block=args.block, num_blocks=args.grid
    )
    strict = not getattr(args, "no_strict", False)
    cache_dir = getattr(args, "cache_dir", None)
    jobs = getattr(args, "jobs", 1) or 1
    cache_ctx = nullcontext()
    if cache_dir:
        from repro.serve import CompileCache

        cache_ctx = CompileCache(directory=cache_dir)
    with cache_ctx:
        if jobs > 1:
            from repro.core.errors import CompileError
            from repro.serve import compile_batch, jobs_from_source

            batch_jobs = jobs_from_source(
                source, config, launch, strict=strict
            )
            report = compile_batch(batch_jobs, workers=jobs)
            for failed in report.failures:
                err = failed.error or {}
                raise CompileError(
                    f"job {failed.name!r} failed: "
                    f"{err.get('type')}: {err.get('message')}",
                    pass_name="batch",
                )
            return report.compile_results()
        module = parse_module(source)
        compiler = PennyCompiler(config, strict=strict)
        return [
            compiler.compile(kernel, launch) for kernel in module.kernels
        ]


def cmd_compile(args: argparse.Namespace) -> int:
    _apply_backend(args)
    with _Observation(args) as watch:
        results = _compile_all(args)
        for result in results:
            watch.report(result)
    for result in results:
        print(print_kernel(result.kernel))
        print()
        print(f"// scheme: {result.config.name}")
        for key in sorted(result.stats):
            print(f"// {key}: {result.stats[key]}")
        print()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    reports = [result.to_dict() for result in _compile_all(args)]
    json.dump(reports, sys.stdout, indent=2, default=str)
    print()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.verify import verify_compiled

    _apply_backend(args)
    if args.corpus:
        return _verify_corpus(args)
    if not args.input:
        print("verify: an input file or --corpus is required",
              file=sys.stderr)
        return 2

    status = 0
    for result in _compile_all(args):
        problems = verify_compiled(result.kernel)
        fallback = result.stats.get("fallback_path")
        suffix = f" (fallback: {fallback})" if fallback else ""
        if problems:
            status = 1
            print(f"{result.kernel.name}: {len(problems)} violation(s)"
                  f"{suffix}")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{result.kernel.name}: recovery metadata verified clean"
                  f"{suffix}")
    return status


def _verify_corpus(args: argparse.Namespace) -> int:
    """Re-run the differential oracle over a fuzz corpus's findings.

    A finding's *reduced* reproducer is preferred when present; each is
    checked for reproducing with its recorded fingerprint against the
    current compiler.  Exit 0 when every finding still reproduces, 1
    when any has gone stale (fixed, or fingerprint drifted).
    """
    import dataclasses as _dc

    from repro.fuzz.oracle import run_case
    from repro.fuzz.triage import TriageCorpus

    corpus = TriageCorpus.load(args.corpus)
    if not corpus.findings:
        print(f"{args.corpus}: no findings")
        return 0
    stale = 0
    checked = 0
    for i, finding in enumerate(corpus.findings):
        if finding.stage == "harness_crash" or not finding.case:
            # The worker died before the case could be serialized back;
            # only the generating seed survives.
            print(f"[{i}] skipped: harness_crash finding has no case "
                  f"(rebuild with --seed {finding.seed})")
            continue
        checked += 1
        case = finding.fuzz_case()
        if finding.reduced_kernel:
            case = _dc.replace(case, kernel_text=finding.reduced_kernel)
        result = run_case(
            case,
            scheme=args.scheme,
            strict=getattr(args, "strict", False),
            iteration=finding.iteration,
        )
        got = result.finding.fingerprint if result.finding else result.status
        if result.finding and result.finding.fingerprint == finding.fingerprint:
            print(f"[{i}] reproduces: {finding.fingerprint}")
        else:
            stale += 1
            print(f"[{i}] STALE: recorded {finding.fingerprint!r}, "
                  f"got {got!r}")
    print(f"{checked - stale}/{checked} findings still reproduce")
    return 1 if stale else 0


def _campaign_fsck(args: argparse.Namespace) -> int:
    """``penny campaign --fsck JOURNAL``: validate checksums + schema and
    print the reconciliation summary without running anything."""
    import os

    from repro.gpusim.campaign import fsck_journal

    if not os.path.exists(args.fsck):
        print(f"fsck: no journal at {args.fsck}", file=sys.stderr)
        return 2
    fsck = fsck_journal(args.fsck)
    recon = fsck.reconcile()
    if args.json:
        json.dump(fsck.to_dict(), sys.stdout, indent=2)
        print()
        return 0 if recon["complete"] else 1
    header = fsck.header or {}
    spec = header.get("spec") or {}
    print(f"journal: {args.fsck}")
    print(
        f"  header: version={header.get('version', '?')} "
        f"benchmark={spec.get('benchmark', '?')} "
        f"n={spec.get('num_injections', '?')} "
        f"seed={spec.get('seed', '?')}"
    )
    print(
        f"  lines: {fsck.total_lines} total, {fsck.record_lines} records, "
        f"{fsck.corrupt_lines} corrupt, {fsck.legacy_lines} legacy"
    )
    if fsck.duplicate_indices:
        shown = ", ".join(map(str, fsck.duplicate_indices[:10]))
        print(f"  duplicates: {shown}"
              + (" ..." if len(fsck.duplicate_indices) > 10 else ""))
    status = "ok" if recon["complete"] else "INCOMPLETE"
    missing = recon["missing"]
    print(
        f"campaign: reconciliation {status} — "
        f"{recon['recorded']}/{recon['expected']} indices accounted "
        f"({len(missing)} missing, {len(recon['duplicates'])} duplicate, "
        f"{fsck.corrupt_lines} corrupt line(s))"
    )
    if missing:
        shown = ", ".join(map(str, missing[:10]))
        print(f"  missing: {shown}" + (" ..." if len(missing) > 10 else ""))
        print("  (run with --resume to complete the sweep)")
    return 0 if recon["complete"] else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.fsck:
        return _campaign_fsck(args)
    if not args.bench:
        print(
            "campaign: --bench is required (or --fsck JOURNAL to "
            "validate a journal offline)",
            file=sys.stderr,
        )
        return 2
    # Deferred: pulls in numpy (bench registry) and the simulator.
    from repro.bench import get_benchmark  # noqa: F401  (validates early)
    from repro.gpusim.campaign import CampaignSpec, ParallelCampaign

    surfaces = tuple(
        s.strip() for s in args.surfaces.split(",") if s.strip()
    )
    try:
        get_benchmark(args.bench)
    except KeyError:
        print(f"unknown benchmark {args.bench!r}", file=sys.stderr)
        return 2
    spec = CampaignSpec(
        benchmark=args.bench,
        scheme=args.scheme,
        rf_code=args.code,
        num_injections=args.injections,
        seed=args.seed,
        surfaces=surfaces,
        bits_per_fault=args.bits,
        pattern=args.pattern,
        max_instructions=args.watchdog,
        max_recoveries=args.max_recoveries,
        backend=args.backend,
        policy=args.policy,
    )
    chaos = None
    if getattr(args, "chaos", None):
        from repro.serve.chaos import ChaosEngine, ChaosPlan

        plan = ChaosPlan.parse(args.chaos, seed=args.chaos_seed)
        chaos = ChaosEngine(plan)
        print(
            f"penny campaign: chaos plan armed "
            f"({len(plan.rules)} rule(s), seed {plan.seed})",
            file=sys.stderr,
        )
    campaign = ParallelCampaign(
        spec,
        workers=args.workers,
        journal_path=args.journal,
        wall_timeout=args.wall_timeout,
        poison_threshold=args.poison_threshold,
    )
    with _Observation(args) as watch:
        if chaos is not None:
            with chaos:
                report = campaign.run(
                    resume=args.resume, handle_signals=True
                )
        else:
            report = campaign.run(resume=args.resume, handle_signals=True)
        watch.report(report)
    if chaos is not None:
        summary = chaos.summary()
        print(
            f"penny campaign: chaos injected {summary['injections']} "
            f"fault(s) {summary['by_kind']}",
            file=sys.stderr,
        )

    recon = report.reconciliation()
    sup = report.supervision or {}
    status = (
        "ok"
        if recon["complete"]
        else ("partial" if report.interrupted else "FAILED")
    )
    print(
        f"campaign: reconciliation {status} — "
        f"{recon['recorded']}/{recon['expected']} indices accounted "
        f"exactly once (retries={sup.get('retries', 0)}, "
        f"quarantined={sup.get('quarantined', 0)}, "
        f"worker_restarts={sup.get('restarts', 0)}, "
        f"journal_write_errors={sup.get('journal_write_errors', 0)}, "
        f"journal_corrupt={sup.get('journal_corrupt_records', 0)})",
        file=sys.stderr,
    )

    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        summary = report.summary()
        print(
            f"campaign: {spec.benchmark} scheme={spec.scheme} "
            f"code={spec.rf_code} surfaces={','.join(spec.surfaces)} "
            f"n={spec.num_injections} workers={args.workers}"
        )
        print()
        print(f"{'outcome':14}{'count':>8}")
        for name, count in summary.items():
            print(f"{name:14}{count:>8}")
        taxonomy = report.due_taxonomy()
        if taxonomy:
            print()
            print("DUE taxonomy:")
            for label, count in sorted(taxonomy.items()):
                print(f"  {label:20}{count:>6}")
        print()
        print(f"{'rate':12}{'point':>9}{'95% CI':>20}")
        for name, (p, lo, hi) in report.rates().items():
            print(f"{name:12}{p:>9.4f}   [{lo:.4f}, {hi:.4f}]")

    if report.interrupted:
        reason = sup.get("drain_reason", "signal")
        if args.journal:
            hint = (
                f"penny campaign --bench {spec.benchmark} "
                f"-n {spec.num_injections} --seed {spec.seed} "
                f"--journal {args.journal} --resume"
            )
        else:
            hint = "re-run with --journal PATH to make drains resumable"
        print(
            f"campaign: interrupted ({reason}) — journal flushed, "
            f"partial report emitted; resume with: {hint}",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzRunner, FuzzSpec

    spec = FuzzSpec(
        iterations=args.iterations,
        seed=args.seed,
        scheme=args.scheme,
        strict=args.strict,
        fault=not args.no_fault,
        mutate_rate=args.mutate_rate,
        backend=args.backend,
        cross_check=args.cross_check,
    )
    with _Observation(args) as watch:
        report = FuzzRunner(
            spec, workers=args.workers, journal_path=args.journal
        ).run(reduce=args.reduce)
        watch.report(report)

    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
        return 1 if report.findings else 0

    print(
        f"fuzz: n={spec.iterations} seed={spec.seed} scheme={spec.scheme} "
        f"strict={spec.strict} mutate_rate={spec.mutate_rate} "
        f"workers={args.workers}"
    )
    print()
    print(f"{'outcome':16}{'count':>8}")
    for name, count in sorted(report.outcomes.items()):
        print(f"{name:16}{count:>8}")
    buckets = report.buckets()
    if buckets:
        print()
        print(f"{len(report.findings)} finding(s) in "
              f"{len(buckets)} bucket(s):")
        for fp, findings in sorted(buckets.items()):
            rep = findings[0]
            print(f"  [{len(findings):3}] {fp}")
            if rep.reduced_instructions is not None:
                print(
                    f"        reduced {rep.original_instructions} -> "
                    f"{rep.reduced_instructions} instructions "
                    f"(seed {rep.seed})"
                )
    else:
        print()
        print("no findings")
    return 1 if report.findings else 0


def _parse_severity_overrides(pairs: List[str]) -> dict:
    """``RULE=LEVEL`` strings -> {rule: Severity} (raises on bad level)."""
    from repro.lint import Severity

    overrides = {}
    for pair in pairs:
        rule_id, _, level = pair.partition("=")
        if not rule_id or not level:
            raise ValueError(f"bad --severity {pair!r} (want RULE=LEVEL)")
        overrides[rule_id] = Severity.parse(level)
    return overrides


def _lint_units(args: argparse.Namespace):
    """Yield ``(display_path, source_text_or_None, kernels)`` units to
    lint: each input file is one unit (with its text, for carets), each
    requested benchmark is one source-less unit."""
    for path in args.inputs:
        text = _read_source(path)
        display = "<stdin>" if path == "-" else path
        yield display, text, list(parse_module(text).kernels)
    bench_requests = list(args.bench)
    if "all" in bench_requests:
        from repro.bench import ALL_BENCHMARKS

        bench_requests = ALL_BENCHMARKS.abbrs()
    for abbr in bench_requests:
        from repro.bench import get_benchmark

        b = get_benchmark(abbr)
        yield f"bench:{abbr}", None, [b.fresh_kernel()]


def _lint_fixtures(args: argparse.Namespace, select_kwargs: dict) -> int:
    """Regression mode: lint every ``DIR/*.ptx`` and compare against its
    ``.expect`` golden (lines of ``severity rule kernel:block:index``)."""
    import glob
    import os

    from repro.lint import AnalyzerError, lint_source

    ptxs = sorted(glob.glob(os.path.join(args.fixtures, "*.ptx")))
    if not ptxs:
        print(f"lint: no fixtures in {args.fixtures!r}", file=sys.stderr)
        return 2
    failed = 0
    for ptx in ptxs:
        expect_path = os.path.splitext(ptx)[0] + ".expect"
        try:
            with open(expect_path) as f:
                expected = sorted(
                    line.strip()
                    for line in f
                    if line.strip() and not line.startswith("#")
                )
        except FileNotFoundError:
            print(f"FAIL {ptx}: missing golden {expect_path}")
            failed += 1
            continue
        try:
            report = lint_source(_read_source(ptx), **select_kwargs)
        except AnalyzerError as exc:
            print(f"FAIL {ptx}: analyzer crash: {exc}")
            failed += 1
            continue
        got = sorted(
            f"{d.severity.value} {d.rule} {d.location}"
            for d in report.diagnostics
        )
        if got == expected:
            print(f"ok   {ptx} ({len(got)} diagnostic(s))")
            continue
        failed += 1
        print(f"FAIL {ptx}: diagnostics diverge from golden")
        for line in sorted(set(expected) - set(got)):
            print(f"  missing:    {line}")
        for line in sorted(set(got) - set(expected)):
            print(f"  unexpected: {line}")
    print(f"{len(ptxs) - failed}/{len(ptxs)} fixtures match")
    return 1 if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        AnalyzerError,
        LintReport,
        Severity,
        lint_compiled,
        lint_kernel,
    )
    from repro.lint.render import (
        render_jsonl,
        render_sarif,
        render_text,
        sarif_report,
        validate_sarif,
    )

    try:
        severity = _parse_severity_overrides(args.severity)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    select_kwargs = dict(
        only=args.rule, disable=tuple(args.disable), severity=severity
    )

    if args.fixtures:
        return _lint_fixtures(args, select_kwargs)
    if not args.inputs and not args.bench:
        print("lint: an input file, --bench, or --fixtures is required",
              file=sys.stderr)
        return 2

    units = []  # (display_path, source, report)
    merged = LintReport()
    with _Observation(args):
        try:
            for display, text, kernels in _lint_units(args):
                report = LintReport()
                for kernel in kernels:
                    report.extend(
                        lint_kernel(kernel, source=text, **select_kwargs)
                    )
                    if args.compiled:
                        lint_config = scheme_config(args.scheme)
                        if getattr(args, "policy", None):
                            lint_config.policy = args.policy
                        compiler = PennyCompiler(lint_config, strict=False)
                        launch = LaunchConfig(
                            threads_per_block=args.block,
                            num_blocks=args.grid,
                        )
                        result = compiler.compile(kernel, launch)
                        report.extend(
                            lint_compiled(result.kernel, **select_kwargs)
                        )
                units.append((display, text, report))
                merged.extend(report)
        except AnalyzerError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2

    single = units[0][0] if len(units) == 1 else None
    if args.format == "sarif":
        rendered = render_sarif(merged, path=single)
        problems = validate_sarif(sarif_report(merged, path=single))
        for p in problems:
            print(f"sarif schema: {p}", file=sys.stderr)
        if problems:
            return 2
    elif args.format == "json":
        rendered = render_jsonl(merged)
    else:
        rendered = "\n".join(
            render_text(report, source=text, path=display)
            for display, text, report in units
        )
    if args.out:
        with open(args.out, "w") as f:
            f.write(rendered + "\n")
        print(f"lint report written to {args.out}", file=sys.stderr)
    else:
        print(rendered)

    threshold = Severity.parse(args.fail_on)
    return 1 if merged.at_least(threshold) else 0


def _synthesize_memory(kernel, words: int):
    """A workload for a kernel we know nothing about: every pointer param
    gets a ``words``-long global buffer of small nonzero values, every
    scalar param gets ``words`` (the conventional element count)."""
    from repro.gpusim.memory import MemoryImage

    mem = MemoryImage()
    for p in kernel.params:
        if p.is_pointer:
            addr = mem.alloc_global(words)
            mem.upload(addr, [(i * 7 + 3) % 251 for i in range(words)])
            mem.set_param(p.name, addr)
        else:
            mem.set_param(p.name, words)
    return mem


def cmd_trace(args: argparse.Namespace) -> int:
    """Compile and execute kernels under a tracer, seeding one recoverable
    register-file fault so the trace shows detection + re-execution."""
    from repro.gpusim.backend import make_executor
    from repro.gpusim.executor import Launch
    from repro.gpusim.faults import FaultPlan

    _apply_backend(args)
    module = parse_module(_read_source(args.input))
    config = _build_config(args)
    launch_config = LaunchConfig(
        threads_per_block=args.block, num_blocks=args.grid
    )
    launch = Launch(grid=args.grid, block=args.block)

    tracer = obs.Tracer()
    reports: List = []
    recovered_all = True
    with tracer:
        for kernel in module.kernels:
            compiler = PennyCompiler(
                config, strict=not getattr(args, "no_strict", False)
            )
            result = compiler.compile(kernel, launch_config)
            reports.append(result)

            # Fault-free reference run.
            mem = _synthesize_memory(result.kernel, args.words)
            reports.append(
                make_executor(result.kernel, backend=args.backend).run(
                    launch, mem
                )
            )

            # Seeded fault runs: scan injection points until one lands on
            # a live register and recovery fires (bounded attempts; a
            # fault on a dead register is simply masked).
            recovered = False
            for tid in (3, 0, 7):
                if tid >= args.block:
                    continue
                for after in (25, 10, 40, 5, 60, 100):
                    plan = FaultPlan(
                        ctaid=0,
                        tid=tid,
                        after_instructions=after,
                        bits=(13,),
                    )
                    fmem = _synthesize_memory(result.kernel, args.words)
                    try:
                        faulted = make_executor(
                            result.kernel,
                            backend=args.backend,
                            fault_plan=plan,
                        ).run(launch, fmem)
                    except Exception:
                        continue  # DUE/timeout: try another point
                    if faulted.recoveries > 0:
                        reports.append(faulted)
                        recovered = True
                        break
                if recovered:
                    break
            recovered_all &= recovered
            n_spans = sum(
                1
                for s in tracer.find("sim.recover")
                if s.tags.get("error") is None
            )
            status = (
                f"{n_spans} recovery span(s)"
                if recovered
                else "no recovery could be seeded"
            )
            print(f"{kernel.name}: {status}")

    trace_out = args.trace_out or "trace.json"
    obs.write_chrome_trace(trace_out, tracer)
    problems = obs.validate_chrome_trace(obs.chrome_trace(tracer))
    if problems:
        for p in problems:
            print(f"trace schema: {p}", file=sys.stderr)
        return 1
    print(
        f"{len(tracer.spans)} span(s), {len(tracer.events)} event(s) "
        f"-> {trace_out}  (open in chrome://tracing or ui.perfetto.dev)"
    )
    if args.metrics_out:
        with obs.MetricsSink(args.metrics_out) as sink:
            sink.write_counters(tracer.counters)
            for r in reports:
                sink.write_report(r)
        print(f"metrics -> {args.metrics_out}")
    return 0 if recovered_all else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async compile server until SIGTERM/SIGINT drains it."""
    from repro.serve import CompileServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        cache_dir=args.cache_dir,
        use_threads=args.threads,
    )
    server = CompileServer(config)

    import threading

    def announce():
        server._ready.wait()
        print(
            f"penny serve: listening on {config.host}:{server.port} "
            f"(workers={config.workers}, queue={config.queue_limit}, "
            f"cache={config.cache_dir or 'memory-only'})",
            file=sys.stderr,
            flush=True,
        )

    threading.Thread(target=announce, daemon=True).start()
    chaos = None
    if getattr(args, "chaos", None):
        from repro.serve.chaos import ChaosEngine, ChaosPlan

        plan = ChaosPlan.parse(args.chaos, seed=args.chaos_seed)
        chaos = ChaosEngine(plan)
        print(
            f"penny serve: chaos plan armed "
            f"({len(plan.rules)} rule(s), seed {plan.seed})",
            file=sys.stderr,
            flush=True,
        )
    with _Observation(args):
        if chaos is not None:
            with chaos:
                status = server.run()
        else:
            status = server.run()
    print(
        f"penny serve: drained ({server.stats.compiles} compile(s), "
        f"{server.stats.busy_rejections} busy rejection(s), "
        f"cache hit rate {server.cache.stats.hit_rate:.1%})",
        file=sys.stderr,
    )
    if chaos is not None:
        summary = chaos.summary()
        by_kind = ", ".join(
            f"{kind}={count}"
            for kind, count in summary["by_kind"].items()
        ) or "none"
        print(
            f"penny serve: chaos injected {summary['injections']} "
            f"fault(s) ({by_kind})",
            file=sys.stderr,
        )
    return status


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running ``penny serve``: compile/ping/stats/shutdown."""
    from repro.serve import CompileClient, RetryPolicy, ServeError

    client = CompileClient(
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retry=RetryPolicy(
            attempts=args.retries, base_delay=args.backoff
        ),
    )
    try:
        if args.action == "ping":
            print("pong" if client.ping() else "no pong")
            return 0
        if args.action == "health":
            health = client.health()
            json.dump(health, sys.stdout, indent=2)
            print()
            return 0 if health.get("ready") else 1
        if args.action == "stats":
            json.dump(client.stats(), sys.stdout, indent=2)
            print()
            return 0
        if args.action == "shutdown":
            client.shutdown()
            print("shutdown requested", file=sys.stderr)
            return 0
        # compile
        if not args.input:
            print("client compile: an input file is required",
                  file=sys.stderr)
            return 2
        config = _build_config(args)
        status = 0
        for kernel in parse_module(_read_source(args.input)).kernels:
            response = client.compile(
                print_kernel(kernel),
                config=config,
                launch={
                    "threads_per_block": args.block,
                    "num_blocks": args.grid,
                },
                strict=not getattr(args, "no_strict", False),
                name=kernel.name,
            )
            if args.json:
                json.dump(response, sys.stdout, indent=2)
                print()
                continue
            print(response["kernel"])
            print()
            print(f"// scheme: {config.name}")
            print(f"// cached: {response.get('cached')}")
            for key in sorted(response.get("summary", {})):
                print(f"// {key}: {response['summary'][key]}")
            print()
        return status
    except ServeError as exc:
        print(f"client: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect / clear / garbage-collect the on-disk compile cache."""
    from repro.serve import CompileCache, default_cache_dir

    directory = args.cache_dir or default_cache_dir()
    cache = CompileCache(directory=directory)
    if args.action == "stats":
        json.dump(cache.report(), sys.stdout, indent=2)
        print()
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entrie(s) from {directory}")
        return 0
    # gc
    removed = cache.gc(
        max_bytes=args.max_bytes, max_age_seconds=args.max_age
    )
    entries, total = cache.disk_usage()
    print(
        f"gc removed {removed} entrie(s); {entries} entrie(s), "
        f"{total} byte(s) remain in {directory}"
    )
    return 0


def cmd_schemes(_args: argparse.Namespace) -> int:
    for name in _SCHEMES:
        cfg = scheme_config(name)
        print(
            f"{name:20} placement={cfg.placement:8} pruning={cfg.pruning:8} "
            f"storage={cfg.storage_mode:7} overwrite={cfg.overwrite:5} "
            f"low_opts={cfg.low_opts}"
        )
    return 0


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="auto",
        choices=("auto", "scalar", "vector"),
        help="executor engine for any simulation this command performs "
             "(auto picks the vectorized engine; scalar is the "
             "reference interpreter)",
    )


def _apply_backend(args: argparse.Namespace) -> None:
    """Make ``--backend`` the process default, so every ``auto``
    resolution downstream (oracle replays, spawned helpers) follows the
    flag."""
    backend = getattr(args, "backend", None)
    if backend and backend != "auto":
        import os

        from repro.gpusim.backend import BACKEND_ENV_VAR

        os.environ[BACKEND_ENV_VAR] = backend


def _add_observe_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="JSON",
        help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="JSONL",
        help="write counters and reports as JSONL metrics records",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Penny: protect PTX-subset kernels against soft errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile kernels and print protected PTX"
    )
    p_report = sub.add_parser(
        "report", help="compile kernels and print statistics as JSON"
    )
    p_verify = sub.add_parser(
        "verify",
        help="compile kernels and statically verify their recovery metadata",
    )
    for p in (p_compile, p_report, p_verify):
        if p is p_verify:
            p.add_argument(
                "input", nargs="?", default=None,
                help="PTX-subset file, or '-' for stdin "
                     "(omit when using --corpus)",
            )
        else:
            p.add_argument("input", help="PTX-subset file, or '-' for stdin")
        p.add_argument(
            "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
            help="comparison-scheme preset to start from",
        )
        p.add_argument(
            "--pruning", choices=("none", "basic", "optimal"), default=None
        )
        p.add_argument(
            "--storage", choices=("shared", "global", "auto"), default=None
        )
        p.add_argument(
            "--overwrite", type=Scheme.parse, choices=tuple(Scheme),
            default=None, metavar="{rr,sa,auto,none}",
            help="overwrite-prevention scheme (aliases: renaming, "
                 "storage-alternation, off)",
        )
        p.add_argument("--no-low-opts", action="store_true")
        p.add_argument(
            "--param-noalias", action="store_true",
            help="assume distinct pointer params never alias (restrict)",
        )
        p.add_argument(
            "--policy", default=None, metavar="POLICY",
            help="protection policy (full, address-only, "
                 "top-k-vulnerable[:K], detection-only, none; "
                 "';'-separated region overrides)",
        )
        p.add_argument("--block", type=int, default=256,
                       help="threads per block (storage layout)")
        p.add_argument("--grid", type=int, default=4,
                       help="number of blocks (storage layout)")
        p.add_argument(
            "--no-strict", action="store_true",
            help="compile through the fallback lattice instead of "
                 "raising on pass failure",
        )
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="compile a multi-kernel module on N worker processes "
                 "(repro.serve batch driver)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="consult/fill an on-disk compile cache at DIR",
        )
        _add_backend_flag(p)
    p_verify.add_argument(
        "--corpus", default=None, metavar="JSONL",
        help="re-check a fuzz finding corpus instead of compiling a file",
    )
    p_verify.add_argument(
        "--strict", action="store_true",
        help="with --corpus: replay findings against a strict compiler",
    )
    _add_observe_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)
    p_report.set_defaults(func=cmd_report)
    p_verify.set_defaults(func=cmd_verify)

    p_schemes = sub.add_parser("schemes", help="list scheme presets")
    p_schemes.set_defaults(func=cmd_schemes)

    p_serve = sub.add_parser(
        "serve",
        help="run the async compile server (JSONL over TCP, bounded "
             "queue, compile cache, graceful SIGTERM drain)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=9779,
        help="TCP port (0 = ephemeral; announced on stderr)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="compile worker processes (default 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="max in-flight compile requests before ServerBusy "
             "rejections (default 8)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=120.0,
        help="per-request compile deadline in seconds (default 120)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk compile cache directory (default memory-only)",
    )
    p_serve.add_argument(
        "--threads", action="store_true",
        help="thread pool instead of process pool (debugging)",
    )
    p_serve.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="chaos plan: comma-separated kind[:p=..][:max=..][:after=..]"
             "[:delay=..] rules (e.g. 'worker.kill:p=0.2:max=3,"
             "cache.corrupt:p=0.5'), or @file.json with a saved plan",
    )
    p_serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos plan's deterministic fault sequence",
    )
    _add_observe_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="talk to a running penny serve (retry + backoff + jitter)",
    )
    p_client.add_argument(
        "action",
        choices=("compile", "ping", "health", "stats", "shutdown"),
    )
    p_client.add_argument(
        "input", nargs="?", default=None,
        help="PTX-subset file for 'compile', or '-' for stdin",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=9779)
    p_client.add_argument(
        "--timeout", type=float, default=120.0,
        help="socket timeout per attempt (seconds)",
    )
    p_client.add_argument(
        "--retries", type=int, default=5,
        help="attempts before ServerUnavailable (default 5)",
    )
    p_client.add_argument(
        "--backoff", type=float, default=0.05,
        help="base backoff delay in seconds (doubles per retry, "
             "jittered)",
    )
    p_client.add_argument(
        "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
        help="comparison-scheme preset to start from",
    )
    p_client.add_argument(
        "--pruning", choices=("none", "basic", "optimal"), default=None
    )
    p_client.add_argument(
        "--storage", choices=("shared", "global", "auto"), default=None
    )
    p_client.add_argument(
        "--overwrite", type=Scheme.parse, choices=tuple(Scheme),
        default=None, metavar="{rr,sa,auto,none}",
        help="overwrite-prevention scheme (aliases accepted)",
    )
    p_client.add_argument("--no-low-opts", action="store_true")
    p_client.add_argument("--param-noalias", action="store_true")
    p_client.add_argument(
        "--policy", default=None, metavar="POLICY",
        help="protection policy sent with the compile request",
    )
    p_client.add_argument("--no-strict", action="store_true")
    p_client.add_argument("--block", type=int, default=256,
                          help="threads per block (storage layout)")
    p_client.add_argument("--grid", type=int, default=4,
                          help="number of blocks (storage layout)")
    p_client.add_argument(
        "--json", action="store_true",
        help="print the raw response object(s)",
    )
    p_client.set_defaults(func=cmd_client)

    p_cache = sub.add_parser(
        "cache",
        help="inspect/clear/gc the on-disk compile cache",
    )
    p_cache.add_argument("action", choices=("stats", "clear", "gc"))
    p_cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default $PENNY_CACHE_DIR or "
             "~/.cache/penny)",
    )
    p_cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc: evict least-recently-used entries beyond this size",
    )
    p_cache.add_argument(
        "--max-age", type=float, default=None,
        help="gc: drop entries older than this many seconds",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_trace = sub.add_parser(
        "trace",
        help="compile + execute a kernel under a tracer and export a "
             "Chrome trace with a seeded fault recovery",
    )
    p_trace.add_argument("input", help="PTX-subset file, or '-' for stdin")
    p_trace.add_argument(
        "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
        help="comparison-scheme preset to start from",
    )
    p_trace.add_argument(
        "--pruning", choices=("none", "basic", "optimal"), default=None
    )
    p_trace.add_argument(
        "--storage", choices=("shared", "global", "auto"), default=None
    )
    p_trace.add_argument(
        "--overwrite", type=Scheme.parse, choices=tuple(Scheme),
        default=None, metavar="{rr,sa,auto,none}",
        help="overwrite-prevention scheme (aliases accepted)",
    )
    p_trace.add_argument("--no-low-opts", action="store_true")
    p_trace.add_argument("--param-noalias", action="store_true")
    p_trace.add_argument(
        "--policy", default=None, metavar="POLICY",
        help="protection policy (full, address-only, "
             "top-k-vulnerable[:K], detection-only, none)",
    )
    p_trace.add_argument("--no-strict", action="store_true")
    p_trace.add_argument(
        "--block", type=int, default=16, help="threads per block"
    )
    p_trace.add_argument(
        "--grid", type=int, default=2, help="number of blocks"
    )
    p_trace.add_argument(
        "--words", type=int, default=64,
        help="synthesized buffer length / scalar-param value",
    )
    _add_backend_flag(p_trace)
    _add_observe_flags(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_lint = sub.add_parser(
        "lint",
        help="run the static analyzer over PTX kernels and render "
             "text/JSONL/SARIF diagnostics",
    )
    p_lint.add_argument(
        "inputs", nargs="*",
        help="PTX-subset files, or '-' for stdin",
    )
    p_lint.add_argument(
        "--bench", action="append", default=[], metavar="ABBR",
        help="lint a registered benchmark kernel ('all' for the suite); "
             "repeatable",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default text, with source carets)",
    )
    p_lint.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    p_lint.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule (repeatable)",
    )
    p_lint.add_argument(
        "--disable", action="append", default=[], metavar="ID",
        help="skip this rule (repeatable)",
    )
    p_lint.add_argument(
        "--severity", action="append", default=[], metavar="RULE=LEVEL",
        help="override a rule's severity (error|warning|note); repeatable",
    )
    p_lint.add_argument(
        "--fail-on", choices=("error", "warning", "note"), default="error",
        help="exit 1 when any diagnostic is at least this severe "
             "(default error)",
    )
    p_lint.add_argument(
        "--compiled", action="store_true",
        help="also compile each kernel and run the post-compile "
             "(penny-*, ckpt-*) rules",
    )
    p_lint.add_argument(
        "--fixtures", default=None, metavar="DIR",
        help="regression mode: lint DIR/*.ptx against their .expect "
             "goldens",
    )
    p_lint.add_argument(
        "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
        help="scheme preset for --compiled",
    )
    p_lint.add_argument(
        "--policy", default=None, metavar="POLICY",
        help="protection policy for --compiled (drives the "
             "policy-uncovered-addr rule)",
    )
    p_lint.add_argument("--block", type=int, default=256,
                        help="threads per block for --compiled")
    p_lint.add_argument("--grid", type=int, default=4,
                        help="number of blocks for --compiled")
    _add_observe_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_campaign = sub.add_parser(
        "campaign",
        help="run a parallel fault-injection campaign on a benchmark",
    )
    p_campaign.add_argument(
        "--bench", default=None,
        help="benchmark abbreviation (e.g. STC); "
        "required unless --fsck is given",
    )
    p_campaign.add_argument(
        "--fsck", default=None, metavar="JOURNAL",
        help="validate a journal's checksums/schema and print its "
        "reconciliation summary without running anything",
    )
    p_campaign.add_argument(
        "-n", "--injections", type=int, default=200,
        help="number of injections (default 200)",
    )
    p_campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = inline)",
    )
    p_campaign.add_argument("--seed", type=int, default=2020)
    p_campaign.add_argument(
        "--scheme", default=SCHEME_PENNY,
        choices=_SCHEMES + ("none",),
        help="protection scheme, or 'none' for an unprotected kernel",
    )
    p_campaign.add_argument(
        "--code", default="parity", choices=("parity", "secded", "none"),
        help="register-file detection code",
    )
    p_campaign.add_argument(
        "--policy", default="full", metavar="POLICY",
        help="protection policy applied to the compiled kernel "
             "(full, address-only, top-k-vulnerable[:K], "
             "detection-only, none)",
    )
    p_campaign.add_argument(
        "--surfaces", default="rf",
        help="comma-separated injection surfaces: rf,ckpt,recovery",
    )
    p_campaign.add_argument(
        "--bits", type=int, default=1, help="flipped bits per RF fault"
    )
    p_campaign.add_argument(
        "--pattern", default="random", choices=("random", "burst")
    )
    p_campaign.add_argument(
        "--journal", default=None,
        help="JSONL journal path (crash-safe, resumable)",
    )
    p_campaign.add_argument(
        "--resume", action="store_true",
        help="resume a killed campaign from its journal",
    )
    p_campaign.add_argument(
        "--watchdog", type=int, default=2_000_000,
        help="per-injection instruction budget per thread",
    )
    p_campaign.add_argument(
        "--max-recoveries", type=int, default=100,
        help="recovery budget per thread before budget_exhausted",
    )
    p_campaign.add_argument(
        "--wall-timeout", type=float, default=None,
        help="wall-clock seconds before a busy worker is declared hung "
        "and reclaimed (default: no deadline)",
    )
    p_campaign.add_argument(
        "--poison-threshold", type=int, default=2,
        help="consecutive worker deaths on one injection before it is "
        "quarantined as a worker_crash DUE (default 2)",
    )
    p_campaign.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="arm a chaos plan for the campaign "
        "(e.g. 'campaign.worker.kill:p=0.1:max=3,journal.torn:p=0.05')",
    )
    p_campaign.add_argument(
        "--chaos-seed", type=int, default=None,
        help="seed for the chaos plan's RNG (deterministic injection)",
    )
    p_campaign.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_backend_flag(p_campaign)
    _add_observe_flags(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz the compiler with generated kernels",
    )
    p_fuzz.add_argument(
        "-n", "--iterations", type=int, default=200,
        help="number of fuzz iterations (default 200)",
    )
    p_fuzz.add_argument("--seed", type=int, default=2020)
    p_fuzz.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = inline)",
    )
    p_fuzz.add_argument(
        "--scheme", default=SCHEME_PENNY, choices=_SCHEMES,
        help="protection scheme under test",
    )
    p_fuzz.add_argument(
        "--strict", action="store_true",
        help="compile strictly (no fallback lattice); pass failures "
             "become findings",
    )
    p_fuzz.add_argument(
        "--mutate-rate", type=float, default=0.3,
        help="fraction of cases passed through the IR mutators",
    )
    p_fuzz.add_argument(
        "--no-fault", action="store_true",
        help="skip the fault-recovery oracle stage",
    )
    p_fuzz.add_argument(
        "--reduce", action="store_true",
        help="ddmin-reduce one representative per finding bucket",
    )
    p_fuzz.add_argument(
        "--journal", default=None,
        help="JSONL finding-corpus path (crash-safe, append-only)",
    )
    p_fuzz.add_argument(
        "--cross-check", action="store_true",
        help="re-run every zero-fault protected execution on the other "
             "backend and flag any divergence as a finding",
    )
    p_fuzz.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_backend_flag(p_fuzz)
    _add_observe_flags(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    from repro.perf.cli import register_perf_parser

    register_perf_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
