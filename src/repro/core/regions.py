"""Idempotent region formation (§5, "Region formation").

A region may not overwrite its own memory inputs, so every memory
anti-dependence (load → may-aliasing store) must cross at least one region
boundary on every path.  Synchronization instructions (barriers, fences,
atomics) are boundaries too, which handles inter-thread anti-dependences
for the data-race-free programs Penny targets.

The exact minimum-cut formulation is a hitting-set problem (De Kruijf et
al.); like the paper we use an approximation: existing boundaries are
checked first, and an uncovered anti-dependence is cut immediately before
its store — a point every load→store path provably crosses.

After cut positions are chosen, blocks are split so that **every region
boundary is a block entry**; the boundary block labels are recorded in
``kernel.meta['region_boundaries']``.  The kernel entry is always a
boundary (execution starts a region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.analysis.antidep import AntiDependence, find_memory_antideps
from repro.analysis.cfg import CFG
from repro.ir.module import Kernel

Position = Tuple[str, int]  # boundary *before* instruction index in block


@dataclass
class RegionInfo:
    """Result of region formation.

    ``boundaries`` — labels of blocks whose entry is a region boundary
    (always includes the kernel entry block).
    ``entries_of`` — for every block, the set of boundary labels from which
    the block is reachable without crossing another boundary; i.e. the
    possible *current region entries* while executing that block.
    ``num_cuts`` — how many anti-dependence cuts were inserted (sync
    boundaries not included).
    """

    boundaries: Set[str]
    entries_of: Dict[str, Set[str]] = field(default_factory=dict)
    num_cuts: int = 0

    def region_entry_candidates(self, label: str) -> Set[str]:
        return self.entries_of.get(label, set())


def form_regions(kernel: Kernel, aa: Optional[AliasAnalysis] = None) -> RegionInfo:
    """Partition ``kernel`` into idempotent regions, mutating it (block
    splits) so boundaries land on block entries."""
    cuts = _sync_cuts(kernel)
    cuts |= _antidep_cuts(kernel, cuts, aa)
    num_cuts = _apply_cuts(kernel, cuts)

    cfg = CFG(kernel)
    boundaries = set(kernel.meta.get("region_boundaries", set()))
    boundaries.add(cfg.entry)
    kernel.meta["region_boundaries"] = boundaries

    info = RegionInfo(boundaries=boundaries, num_cuts=num_cuts)
    info.entries_of = _region_entries(cfg, boundaries)
    kernel.meta["region_info"] = info
    return info


def _sync_cuts(kernel: Kernel) -> Set[Position]:
    """Boundaries around synchronization instructions.

    A boundary goes *before* and *after* each sync so no region ever
    re-executes one: a sync-only region reads no registers and therefore
    never detects (hence never re-executes) anything.
    """
    cuts: Set[Position] = set()
    for blk in kernel.blocks:
        for i, inst in enumerate(blk.instructions):
            if inst.is_barrier_like:
                cuts.add((blk.label, i))
                cuts.add((blk.label, i + 1))
    return cuts


def _antidep_cuts(
    kernel: Kernel, existing: Set[Position], aa: Optional[AliasAnalysis]
) -> Set[Position]:
    """Greedy hitting-set approximation over memory anti-dependences."""
    cfg = CFG(kernel)
    aa = aa or AliasAnalysis(cfg)
    deps = find_memory_antideps(cfg, aa)
    cuts: Set[Position] = set(existing)
    added: Set[Position] = set()
    # Stores with many incoming anti-deps first, so one cut covers several.
    by_store: Dict[Position, List[AntiDependence]] = {}
    for dep in deps:
        by_store.setdefault(dep.store_at, []).append(dep)
    for store_at, store_deps in sorted(
        by_store.items(), key=lambda kv: -len(kv[1])
    ):
        for dep in store_deps:
            if not _covered(cfg, dep, cuts):
                cuts.add(store_at)
                added.add(store_at)
                break
    return added


def _covered(cfg: CFG, dep: AntiDependence, cuts: Set[Position]) -> bool:
    """Does every path from the load to the store cross a cut?

    Equivalently: is there NO cut-free path?  We search forward from the
    point just after the load; a block's instructions are passable up to its
    first cut.
    """
    load_label, load_idx = dep.load_at
    store_label, store_idx = dep.store_at

    def first_cut_at_or_after(label: str, start: int) -> Optional[int]:
        indices = [
            idx for (lbl, idx) in cuts if lbl == label and idx >= start
        ]
        return min(indices) if indices else None

    # Start just after the load.
    start_points = [(load_label, load_idx + 1)]
    seen: Set[Tuple[str, int]] = set()
    while start_points:
        label, start = start_points.pop()
        if (label, start) in seen:
            continue
        seen.add((label, start))
        cut = first_cut_at_or_after(label, start)
        block_len = len(cfg.block(label).instructions)
        reach_end = cut is None
        limit = cut if cut is not None else block_len
        if label == store_label and start <= store_idx < limit:
            return False  # reached the store without crossing a cut
        if reach_end:
            for succ in cfg.successors(label):
                start_points.append((succ, 0))
    return True


def _apply_cuts(kernel: Kernel, cuts: Set[Position]) -> int:
    """Split blocks so each cut position becomes a block entry.  Returns the
    number of distinct cut positions that required action."""
    boundaries: Set[str] = set(kernel.meta.get("region_boundaries", set()))
    by_block: Dict[str, List[int]] = {}
    for label, idx in cuts:
        by_block.setdefault(label, []).append(idx)

    count = 0
    for label, indices in by_block.items():
        # Split from the highest index down so earlier indices stay valid.
        for idx in sorted(set(indices), reverse=True):
            blk = kernel.block(label)
            count += 1
            if idx == 0:
                boundaries.add(label)
                continue
            if idx >= len(blk.instructions):
                # Cut at block end: boundary is the fall-through successor's
                # entry only if the block falls through; if it branches, the
                # successor entries are natural split points already.  Create
                # an explicit empty boundary block on the fall-through edge.
                if blk.falls_through:
                    tail = kernel.split_block(label, idx)
                    boundaries.add(tail.label)
                # If the block ends in a terminator, the cut is the target
                # block's entry, which sync cuts add separately; nothing to do.
                continue
            tail = kernel.split_block(label, idx)
            boundaries.add(tail.label)
    kernel.meta["region_boundaries"] = boundaries
    return count


def _region_entries(cfg: CFG, boundaries: Set[str]) -> Dict[str, Set[str]]:
    """For each block, which boundaries can be the current region's entry
    when control is inside that block (forward dataflow)."""
    entries: Dict[str, Set[str]] = {}
    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for label in order:
            if label in boundaries:
                new = {label}
            else:
                new = set()
                for pred in cfg.predecessors(label):
                    new |= entries.get(pred, set())
            if entries.get(label) != new:
                entries[label] = new
                changed = True
    return entries
