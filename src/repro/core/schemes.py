"""The comparison schemes of the paper's evaluation (§7.3).

- **iGPU** — De Kruijf et al.'s idempotence via anti-dependence register
  renaming.  No checkpoints: recovery relies on an ECC-protected register
  file, so only its fault-free overhead (register pressure) is comparable.
- **Bolt/Global** — Bolt's eager checkpointing with basic random-search
  pruning, all checkpoints in global memory; storage alternation is enabled
  for correctness (GPUs have no store buffer).
- **Bolt/Auto_storage** — Bolt plus Penny's automatic storage assignment.
- **Penny** — everything enabled: bimodal placement, optimal pruning,
  automatic storage and overwrite-scheme selection, low-level opts.
"""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import Dict, Union

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import ReachingDefs
from repro.core.liveins import analyze_liveins
from repro.core.pipeline import PennyConfig
from repro.core.regions import form_regions
from repro.core.renaming import compute_webs, renamable, _rename_web
from repro.ir.module import Kernel

class Scheme(str, enum.Enum):
    """The overwrite-prevention scheme (§6.3), as a typed enum.

    Historically this knob was a magic string threaded through
    ``PennyConfig.overwrite``, the fallback lattice, compile stats and
    the CLI; the enum replaces it so trace span tags and error payloads
    are typed.  It subclasses ``str`` — ``Scheme.SA == "sa"`` holds, and
    JSON serialization yields the plain value — so existing string-based
    callers keep working; :meth:`parse` accepts the historical spellings
    plus a few self-describing aliases.
    """

    #: register renaming first, storage alternation for the residue
    RR = "rr"
    #: 2-coloring storage alternation only
    SA = "sa"
    #: compile both, keep the cheaper (§6.3)
    AUTO = "auto"
    #: no overwrite prevention (unsafe; Fig. 11's last bar)
    NONE = "none"

    # Mixed-in enums on Python < 3.12 format as "Scheme.SA" unless the
    # str behavior is restored explicitly; stats lines and CLI tables
    # must render the plain value.
    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def parse(cls, value: Union["Scheme", str, None]) -> "Scheme":
        """Parse a scheme from its value or a historical alias."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls.AUTO
        try:
            key = value.strip().lower().replace("_", "-")
        except AttributeError:
            raise ValueError(
                f"cannot parse {value!r} as an overwrite scheme"
            ) from None
        try:
            return _SCHEME_ALIASES[key]
        except KeyError:
            known = sorted({s.value for s in cls})
            raise ValueError(
                f"unknown overwrite scheme {value!r}; known: {known} "
                f"(aliases: renaming, storage-alternation, off)"
            ) from None


_SCHEME_ALIASES: Dict[str, Scheme] = {
    "rr": Scheme.RR,
    "rename": Scheme.RR,
    "renaming": Scheme.RR,
    "sa": Scheme.SA,
    "alternation": Scheme.SA,
    "storage-alternation": Scheme.SA,
    "auto": Scheme.AUTO,
    "best": Scheme.AUTO,
    "none": Scheme.NONE,
    "off": Scheme.NONE,
}


SCHEME_IGPU = "iGPU"
SCHEME_BOLT_GLOBAL = "Bolt/Global"
SCHEME_BOLT_AUTO = "Bolt/Auto_storage"
SCHEME_PENNY = "Penny"

_CONFIGS: Dict[str, PennyConfig] = {
    SCHEME_BOLT_GLOBAL: PennyConfig(
        name=SCHEME_BOLT_GLOBAL,
        placement="eager",
        pruning="basic",
        storage_mode="global",
        overwrite="sa",
        low_opts=False,
    ),
    SCHEME_BOLT_AUTO: PennyConfig(
        name=SCHEME_BOLT_AUTO,
        placement="eager",
        pruning="basic",
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    ),
    SCHEME_PENNY: PennyConfig(
        name=SCHEME_PENNY,
        placement="bimodal",
        pruning="optimal",
        storage_mode="auto",
        overwrite="auto",
        low_opts=True,
    ),
}


def scheme_config(name: str) -> PennyConfig:
    """Config for one of the paper's comparison schemes (not iGPU, which is
    a different transformation — see :func:`igpu_transform`)."""
    try:
        return replace(_CONFIGS[name])
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}") from None


def igpu_transform(kernel: Kernel, max_rounds: int = 8) -> int:
    """iGPU's idempotence transformation: rename every register
    anti-dependence (a register live-in at a region entry and redefined in
    that region), extending live ranges and raising register pressure.

    Returns the number of webs renamed.  Loop-carried updates cannot be
    renamed (the web supplies its own live-in); real iGPU subdivides such
    regions — since our experiments use iGPU only for fault-free overhead
    (its recovery needs ECC hardware we deliberately omit), the residue is
    left in place.
    """
    regions = form_regions(kernel)
    total = 0
    for _ in range(max_rounds):
        cfg = CFG(kernel)
        rdefs = ReachingDefs(cfg)
        liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
        webs = compute_webs(cfg, rdefs)

        renamed = 0
        claimed = set()
        for blk in cfg.blocks:
            for i, inst in enumerate(blk.instructions):
                for reg in inst.defs():
                    hazard = any(
                        entry in liveins.boundaries
                        and reg in liveins.boundaries[entry].live_ins
                        for entry in regions.region_entry_candidates(blk.label)
                    )
                    if not hazard:
                        continue
                    from repro.analysis.reachingdefs import DefSite

                    site = DefSite(blk.label, i, reg)
                    web = webs.get(site, {site})
                    if id(web) in claimed:
                        continue
                    entries = regions.region_entry_candidates(blk.label)
                    if renamable(reg, web, entries, liveins, rdefs):
                        claimed.add(id(web))
                        _rename_web(kernel, cfg, rdefs, reg, frozenset(web))
                        renamed += 1
        total += renamed
        if renamed == 0:
            break
    return total
