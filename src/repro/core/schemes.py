"""The comparison schemes of the paper's evaluation (§7.3).

- **iGPU** — De Kruijf et al.'s idempotence via anti-dependence register
  renaming.  No checkpoints: recovery relies on an ECC-protected register
  file, so only its fault-free overhead (register pressure) is comparable.
- **Bolt/Global** — Bolt's eager checkpointing with basic random-search
  pruning, all checkpoints in global memory; storage alternation is enabled
  for correctness (GPUs have no store buffer).
- **Bolt/Auto_storage** — Bolt plus Penny's automatic storage assignment.
- **Penny** — everything enabled: bimodal placement, optimal pruning,
  automatic storage and overwrite-scheme selection, low-level opts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import ReachingDefs
from repro.core.liveins import analyze_liveins
from repro.core.pipeline import PennyConfig
from repro.core.regions import form_regions
from repro.core.renaming import compute_webs, renamable, _rename_web
from repro.ir.module import Kernel

SCHEME_IGPU = "iGPU"
SCHEME_BOLT_GLOBAL = "Bolt/Global"
SCHEME_BOLT_AUTO = "Bolt/Auto_storage"
SCHEME_PENNY = "Penny"

_CONFIGS: Dict[str, PennyConfig] = {
    SCHEME_BOLT_GLOBAL: PennyConfig(
        name=SCHEME_BOLT_GLOBAL,
        placement="eager",
        pruning="basic",
        storage_mode="global",
        overwrite="sa",
        low_opts=False,
    ),
    SCHEME_BOLT_AUTO: PennyConfig(
        name=SCHEME_BOLT_AUTO,
        placement="eager",
        pruning="basic",
        storage_mode="auto",
        overwrite="sa",
        low_opts=False,
    ),
    SCHEME_PENNY: PennyConfig(
        name=SCHEME_PENNY,
        placement="bimodal",
        pruning="optimal",
        storage_mode="auto",
        overwrite="auto",
        low_opts=True,
    ),
}


def scheme_config(name: str) -> PennyConfig:
    """Config for one of the paper's comparison schemes (not iGPU, which is
    a different transformation — see :func:`igpu_transform`)."""
    try:
        return replace(_CONFIGS[name])
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}") from None


def igpu_transform(kernel: Kernel, max_rounds: int = 8) -> int:
    """iGPU's idempotence transformation: rename every register
    anti-dependence (a register live-in at a region entry and redefined in
    that region), extending live ranges and raising register pressure.

    Returns the number of webs renamed.  Loop-carried updates cannot be
    renamed (the web supplies its own live-in); real iGPU subdivides such
    regions — since our experiments use iGPU only for fault-free overhead
    (its recovery needs ECC hardware we deliberately omit), the residue is
    left in place.
    """
    regions = form_regions(kernel)
    total = 0
    for _ in range(max_rounds):
        cfg = CFG(kernel)
        rdefs = ReachingDefs(cfg)
        liveins = analyze_liveins(kernel, regions, cfg=cfg, rdefs=rdefs)
        webs = compute_webs(cfg, rdefs)

        renamed = 0
        claimed = set()
        for blk in cfg.blocks:
            for i, inst in enumerate(blk.instructions):
                for reg in inst.defs():
                    hazard = any(
                        entry in liveins.boundaries
                        and reg in liveins.boundaries[entry].live_ins
                        for entry in regions.region_entry_candidates(blk.label)
                    )
                    if not hazard:
                        continue
                    from repro.analysis.reachingdefs import DefSite

                    site = DefSite(blk.label, i, reg)
                    web = webs.get(site, {site})
                    if id(web) in claimed:
                        continue
                    entries = regions.region_entry_candidates(blk.label)
                    if renamable(reg, web, entries, liveins, rdefs):
                        claimed.add(id(web))
                        _rename_web(kernel, cfg, rdefs, reg, frozenset(web))
                        renamed += 1
        total += renamed
        if renamed == 0:
            break
    return total
