"""Register-renaming based overwrite prevention (§6.3, Figure 4(c)).

A hazardous checkpoint stores a value defined *inside* a region where the
same register is a live-in: the store clobbers the live-in's saved value.
Renaming gives the in-region definition (and every use it reaches — its
du-web) a fresh register, so its checkpoint writes a fresh slot.

Renaming is impossible when the hazardous definition's web also carries the
live-in value itself — the classic case being a loop-carried update
``r = r + 1``, where the defining web *is* the live-in web.  Such registers
are left to storage alternation (the pipeline applies 2-coloring to whatever
renaming cannot fix, in either RR or SA mode; the modes differ in which
technique is tried first, matching the paper's auto-selection design).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import DefSite, ReachingDefs
from repro.core.hazards import CpInstance
from repro.core.liveins import LiveinAnalysis
from repro.core.regions import RegionInfo
from repro.ir.module import Kernel
from repro.ir.types import Reg


class _UnionFind:
    def __init__(self):
        self.parent: Dict[DefSite, DefSite] = {}

    def find(self, x: DefSite) -> DefSite:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: DefSite, b: DefSite) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def compute_webs(cfg: CFG, rdefs: ReachingDefs) -> Dict[DefSite, Set[DefSite]]:
    """Du-webs: definitions of the same register that reach a common use are
    merged; returns a map from each def site to its web (shared set)."""
    uf = _UnionFind()
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            for reg in set(inst.reg_uses()):
                sites = [
                    s
                    for s in rdefs.reaching_at(blk.label, i, reg)
                    if not s.is_entry
                ]
                for a, b in zip(sites, sites[1:]):
                    uf.union(a, b)
    webs: Dict[DefSite, Set[DefSite]] = {}
    groups: Dict[DefSite, Set[DefSite]] = {}
    for site in uf.parent:
        groups.setdefault(uf.find(site), set()).add(site)
    for root, members in groups.items():
        for m in members:
            webs[m] = members
    return webs


def renamable(
    reg: Reg,
    web: Set[DefSite],
    hazard_entries,
    liveins: LiveinAnalysis,
    rdefs: ReachingDefs,
) -> bool:
    """Can renaming this web break the overwrite hazard observed at the
    given region entries?

    Not if the web itself supplies the live-in value of any of those
    entries — then the renamed register would be live-in there too and the
    hazard survives (the loop-carried case).
    """
    for entry in hazard_entries:
        binfo = liveins.boundaries.get(entry)
        if binfo is None or reg not in binfo.live_ins:
            continue
        reaching = {
            s for s in rdefs.reaching_at(entry, 0, reg) if not s.is_entry
        }
        if reaching & web:
            return False
    return True


def apply_renaming(
    kernel: Kernel,
    cfg: CFG,
    regions: RegionInfo,
    liveins: LiveinAnalysis,
    rdefs: ReachingDefs,
    instances: List[CpInstance],
) -> int:
    """Rename the webs of hazardous LUP-checkpoint definitions where legal.

    Returns the number of webs renamed (0 = fixpoint reached; remaining
    hazards need storage alternation).  The caller must recompute analyses
    and the checkpoint plan after a nonzero return.
    """
    webs = compute_webs(cfg, rdefs)
    renamed_webs: List[Tuple[Reg, FrozenSet[DefSite]]] = []
    claimed: Set[int] = set()
    for inst in instances:
        if not inst.hazardous:
            continue
        if inst.cp.kind.value == "lup":
            sites: List[DefSite] = [inst.cp.site]
        else:
            sites = [lup for lup, _ in inst.cp.covers]
        hazard_entries = regions.region_entry_candidates(inst.block)
        for site in sites:
            web = webs.get(site, {site})
            if id(web) in claimed:
                continue
            if renamable(site.reg, web, hazard_entries, liveins, rdefs):
                claimed.add(id(web))
                renamed_webs.append((site.reg, frozenset(web)))

    for reg, web in renamed_webs:
        _rename_web(kernel, cfg, rdefs, reg, web)
    return len(renamed_webs)


def _rename_web(
    kernel: Kernel,
    cfg: CFG,
    rdefs: ReachingDefs,
    reg: Reg,
    web: FrozenSet[DefSite],
) -> None:
    fresh = kernel.fresh_reg(reg.dtype, prefix="%rn")
    mapping = {reg: fresh}
    # Identify every use reached (exclusively — webs guarantee it) by the
    # web *before* mutating any definition: reaching-def queries rescan the
    # instruction stream and would miss defs that were already renamed.
    use_sites = []
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if reg not in inst.reg_uses():
                continue
            reaching = {
                s
                for s in rdefs.reaching_at(blk.label, i, reg)
                if not s.is_entry
            }
            if reaching & web:
                use_sites.append(inst)
    for site in web:
        inst = cfg.block(site.label).instructions[site.index]
        inst.replace_defs(mapping)
    for inst in use_sites:
        inst.replace_uses(mapping)
