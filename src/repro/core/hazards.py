"""Checkpoint-overwrite hazard detection (§3.1, §6.3).

GPUs have no gated store buffer, so a checkpoint store can clobber a
previously saved checkpoint that recovery still needs.  The precise
condition: a ``cp`` of register ``r`` executing inside a region whose entry
``B`` has ``r`` as a live-in, storing a value that may *differ* from ``r``'s
value at ``B`` — i.e. the stored value was defined inside the current
region.  (A checkpoint that rewrites the same value is harmless.)

This module materializes the plan's logical checkpoints into concrete
(block, position) instances and flags the hazardous ones; the renaming and
coloring schemes consume the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.analysis.cfg import CFG
from repro.core.checkpoints import (
    CheckpointKind,
    CheckpointPlan,
    PlannedCheckpoint,
)
from repro.core.liveins import LiveinAnalysis
from repro.core.regions import RegionInfo
from repro.ir.types import Reg


@dataclass
class CpInstance:
    """A concrete checkpoint instance: logical checkpoint ``cp`` placed in
    ``block`` (for LUP checkpoints, right after instruction ``index``; for
    boundary checkpoints, at the bottom of the block)."""

    cp: PlannedCheckpoint
    block: str
    index: Optional[int]  # def index for LUP kind, None for block-bottom
    hazardous: bool = False

    @property
    def reg(self) -> Reg:
        return self.cp.reg

    @property
    def at_block_end(self) -> bool:
        return self.index is None


def materialize_instances(
    plan: CheckpointPlan, cfg: CFG
) -> List[CpInstance]:
    """Expand logical checkpoints to per-block instances."""
    instances: List[CpInstance] = []
    for cp in plan.checkpoints:
        if cp.kind is CheckpointKind.LUP:
            assert cp.site is not None
            instances.append(CpInstance(cp, cp.site.label, cp.site.index))
        else:
            assert cp.boundary is not None
            for pred in cfg.predecessors(cp.boundary):
                instances.append(CpInstance(cp, pred, None))
    return instances


def detect_hazards(
    cfg: CFG,
    regions: RegionInfo,
    liveins: LiveinAnalysis,
    instances: List[CpInstance],
) -> Set[Reg]:
    """Mark hazardous instances in place; return the hazardous registers.

    An instance in block ``X`` is hazardous when some region-entry candidate
    ``B`` of ``X`` has the register live-in *and* the checkpointed value was
    defined inside that same region (for LUP checkpoints the definition is
    at the checkpoint; for boundary checkpoints we check whether any covered
    LUP lies in the current region).
    """
    hazardous: Set[Reg] = set()
    for inst in instances:
        reg = inst.reg
        for entry in regions.region_entry_candidates(inst.block):
            binfo = liveins.boundaries.get(entry)
            if binfo is None or reg not in binfo.live_ins:
                continue
            if inst.cp.kind is CheckpointKind.LUP:
                inst.hazardous = True
            else:
                # Boundary checkpoint: hazardous only if a covered LUP is
                # inside the region entered at ``entry``.
                for lup, _ in inst.cp.covers:
                    if entry in regions.region_entry_candidates(lup.label):
                        inst.hazardous = True
                        break
            if inst.hazardous:
                hazardous.add(reg)
                break
    return hazardous
