"""Penny's compiler: the paper's primary contribution.

The passes run in the order of §5:

1. :mod:`repro.core.regions` — idempotent region formation (cut every memory
   anti-dependence; synchronization instructions are boundaries).
2. :mod:`repro.core.liveins` — region live-ins and last update points (LUPs).
3. :mod:`repro.core.checkpoints` — eager checkpoint placement (Bolt) and the
   checkpoint plan representation.
4. :mod:`repro.core.bimodal` — bimodal checkpoint placement (LUP vs region
   boundary) solved as bipartite min-weight vertex cover via max-flow (§6.2).
5. :mod:`repro.core.overwrite` — checkpoint-overwrite hazard detection plus
   the two prevention schemes (register renaming / 2-coloring storage
   alternation with adjustment blocks) and automatic selection (§6.3).
6. :mod:`repro.core.pruning` — Bolt's basic random-search pruning and
   Penny's optimal two-phase pruning over the PDDG (§6.4, Algorithms 1-2).
7. :mod:`repro.core.storage` — occupancy-aware shared/global checkpoint
   storage assignment (§6.5).
8. :mod:`repro.core.codegen` — checkpoint lowering, low-level optimizations
   (§6.6), and recovery-table emission.

:mod:`repro.core.pipeline` wires everything behind :class:`PennyCompiler`,
and :mod:`repro.core.schemes` provides the paper's comparison configurations
(iGPU, Bolt/Global, Bolt/Auto_storage, Penny).
"""

from repro.core.regions import RegionInfo, form_regions
from repro.core.liveins import BoundaryInfo, LupInfo, analyze_liveins
from repro.core.checkpoints import CheckpointPlan, PlannedCheckpoint
from repro.core.costmodel import CostModel
from repro.core.pipeline import CompileResult, PennyCompiler, PennyConfig
from repro.core.schemes import (
    SCHEME_BOLT_AUTO,
    SCHEME_BOLT_GLOBAL,
    SCHEME_IGPU,
    SCHEME_PENNY,
    Scheme,
    scheme_config,
)

__all__ = [
    "RegionInfo",
    "form_regions",
    "BoundaryInfo",
    "LupInfo",
    "analyze_liveins",
    "CheckpointPlan",
    "PlannedCheckpoint",
    "CostModel",
    "PennyCompiler",
    "PennyConfig",
    "CompileResult",
    "SCHEME_IGPU",
    "SCHEME_BOLT_GLOBAL",
    "SCHEME_BOLT_AUTO",
    "SCHEME_PENNY",
    "Scheme",
    "scheme_config",
]
