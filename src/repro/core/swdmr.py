"""Software dual-modular redundancy (SW-DMR) — the expensive detector
Penny's §4 argues against.

Prior idempotent-recovery schemes require errors to be detected *within*
the region where they occur, which forces a low-latency detector such as
software instruction duplication (SWIFT-style DMR, the paper's citation
[50]).  This pass implements that detector so its fault-free cost can be
compared against Penny's parity hardware:

- every computational instruction is duplicated into a shadow register
  space (``%dmr_*``),
- loads are *not* duplicated (memory is ECC-protected; the loaded value is
  copied into the shadow space instead — standard SWIFT treatment),
- before every store, atomic, and conditional branch, the operands'
  master and shadow copies are compared; a mismatch redirects control to a
  detection block (modelled as kernel abort — the detector only needs to
  *signal*; recovery would be someone else's job).

The resulting kernel computes exactly what the original computes (the
shadow computation is dead weight), which the test suite verifies, and its
simulated overhead quantifies §4's point: checking at every externalization
point costs integer-factor slowdowns where Penny's detection is free at
run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.instructions import (
    Alu,
    Atom,
    Bar,
    Bra,
    Instruction,
    Ld,
    Membar,
    Ret,
    Selp,
    Setp,
    St,
)
from repro.ir.module import BasicBlock, Kernel
from repro.ir.types import DType, Reg

#: label of the synthesized detection-signal block
DETECT_LABEL = "__DMR_DETECT"


@dataclass
class DmrResult:
    """Statistics of the transformation."""

    duplicated: int = 0
    checks: int = 0
    shadow_registers: int = 0


def _shadow(reg: Reg, table: Dict[str, Reg]) -> Reg:
    if reg.name not in table:
        table[reg.name] = Reg(f"%dmr_{reg.name.lstrip('%')}", reg.dtype)
    return table[reg.name]


def _shadow_operand(op, table: Dict[str, Reg]):
    if isinstance(op, Reg):
        return _shadow(op, table)
    return op  # immediates / specials / symbols are fault-free sources


def apply_swdmr(kernel: Kernel) -> DmrResult:
    """Apply SW-DMR in place.  The kernel gains a ``__DMR_DETECT`` block
    that loops forever (the simulator's instruction budget turns an actual
    divergence into a simulation error — in fault-free runs it is never
    reached, which is all the overhead comparison needs)."""
    result = DmrResult()
    shadows: Dict[str, Reg] = {}
    check_preds: List[Reg] = []

    def make_check(kernel, reg: Reg, shadow: Reg) -> List[Instruction]:
        pred = kernel.fresh_reg(DType.PRED, prefix="%dmrp")
        check_preds.append(pred)
        result.checks += 1
        return [
            Setp("ne", reg.dtype, pred, reg, shadow),
            Bra(DETECT_LABEL, guard=(pred, True)),
        ]

    for blk in list(kernel.blocks):
        new: List[Instruction] = []
        for inst in blk.instructions:
            checks: List[Instruction] = []
            dup: Optional[Instruction] = None

            if isinstance(inst, Alu):
                dup = Alu(
                    inst.op,
                    inst.dtype,
                    _shadow(inst.dst, shadows),
                    [_shadow_operand(s, shadows) for s in inst.srcs],
                    guard=_shadow_guard(inst.guard, shadows),
                )
            elif isinstance(inst, Setp):
                dup = Setp(
                    inst.cmp,
                    inst.dtype,
                    _shadow(inst.dst, shadows),
                    _shadow_operand(inst.srcs[0], shadows),
                    _shadow_operand(inst.srcs[1], shadows),
                    guard=_shadow_guard(inst.guard, shadows),
                )
            elif isinstance(inst, Selp):
                dup = Selp(
                    inst.dtype,
                    _shadow(inst.dst, shadows),
                    _shadow_operand(inst.srcs[0], shadows),
                    _shadow_operand(inst.srcs[1], shadows),
                    _shadow(inst.pred, shadows),
                    guard=_shadow_guard(inst.guard, shadows),
                )
            elif isinstance(inst, Ld):
                # Memory is ECC-protected: copy the loaded value into the
                # shadow space rather than loading twice.
                dup = Alu(
                    "mov",
                    inst.dtype,
                    _shadow(inst.dst, shadows),
                    [inst.dst],
                    guard=_shadow_guard(inst.guard, shadows),
                )
                # ... but the *address* must be verified before the access.
                if isinstance(inst.base, Reg):
                    checks.extend(make_check(kernel, inst.base,
                                             _shadow(inst.base, shadows)))
            elif isinstance(inst, (St, Atom)):
                for reg in inst.reg_uses():
                    if reg.name.startswith("%dmr"):
                        continue
                    if reg.name in shadows:
                        checks.extend(
                            make_check(kernel, reg, shadows[reg.name])
                        )
            elif isinstance(inst, Bra) and inst.guard is not None:
                guard_reg = inst.guard[0]
                if guard_reg.name in shadows:
                    checks.extend(
                        make_check(kernel, guard_reg, shadows[guard_reg.name])
                    )

            new.extend(checks)
            new.append(inst)
            if dup is not None:
                result.duplicated += 1
                new.append(dup)
        blk.instructions = new

    # Guarded branches must still terminate their blocks: re-split blocks
    # whose checks introduced mid-block branches.
    _normalize_blocks(kernel)

    detect = BasicBlock(
        DETECT_LABEL,
        [Bra(DETECT_LABEL)],  # signal by spinning; never reached fault-free
    )
    kernel.blocks.append(detect)
    result.shadow_registers = len(shadows)
    kernel.validate()
    return result


def _shadow_guard(guard, shadows):
    if guard is None:
        return None
    reg, sense = guard
    # The shadow computation is guarded by the *master* predicate so that
    # master and shadow stay in lockstep even if the shadow predicate was
    # corrupted (the compare at the branch will catch that case).
    return (reg, sense)


def _normalize_blocks(kernel: Kernel) -> None:
    """Split blocks so every branch is block-final again."""
    changed = True
    while changed:
        changed = False
        for blk in list(kernel.blocks):
            for i, inst in enumerate(blk.instructions):
                is_last = i == len(blk.instructions) - 1
                if isinstance(inst, Bra) and not is_last:
                    kernel.split_block(blk.label, i + 1)
                    changed = True
                    break
            if changed:
                break
