"""Checkpoint cost estimation (§6.1).

A checkpoint placed at loop depth ``d`` costs ``C ** d`` with ``C = 64`` by
default — large enough that removing one checkpoint from a deeply nested
loop always beats removing many shallow ones.  Bimodal placement (§6.2)
uses the same model with ``C = 2`` for its vertex weights, as the paper
does in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.cfg import CFG
from repro.analysis.loops import LoopInfo


@dataclass
class CostModel:
    """Estimates checkpoint costs from loop nesting depth."""

    loops: LoopInfo
    base: int = 64

    @classmethod
    def for_cfg(cls, cfg: CFG, base: int = 64) -> "CostModel":
        return cls(loops=LoopInfo(cfg), base=base)

    def depth(self, label: str) -> int:
        return self.loops.depth_of(label)

    def block_cost(self, label: str) -> int:
        """Cost of one checkpoint placed in the given block."""
        return self.base ** self.loops.depth_of(label)

    def plan_cost(self, plan) -> int:
        """Total estimated cost of all committed checkpoints in a plan."""
        total = 0
        for cp in plan.committed():
            for label in cp.insertion_blocks():
                total += self.block_cost(label)
        return total
