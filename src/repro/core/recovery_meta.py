"""Recovery table: what the runtime does when parity fires.

For every region boundary the table records how to restore each live-in
register — from its checkpoint slot (with the right storage color) or by
executing a recovery slice.  Adjustment blocks (storage-alternation dummies)
get *mini-region* entries: their dummy registers are restored from the slot
holding the register's current value and only the adjustment block is
re-executed (see :mod:`repro.core.coloring` for why).

``build_recovery_table`` runs a small fixpoint: if no valid slice exists
for a (boundary, register) pair whose checkpoints were pruned, those
checkpoints are force-committed and the affected entries recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.core.checkpoints import CheckpointPlan, PruneState
from repro.core.coloring import ColoringResult
from repro.core.errors import RecoveryMetaError
from repro.core.liveins import LiveinAnalysis
from repro.core.pddg import PddgValidator, VState
from repro.core.slices import SliceExpr
from repro.ir.types import Reg


@dataclass
class RestoreAction:
    """How to restore one register: from a slot or by running a slice."""

    reg_name: str
    dtype: str
    slot_color: Optional[int] = None  # set for slot restores
    slice_expr: Optional[SliceExpr] = None  # set for slice restores

    @property
    def is_slot(self) -> bool:
        return self.slot_color is not None


@dataclass
class RegionRecovery:
    """Recovery entry for one region: re-execute from ``entry_label`` after
    applying ``restores``."""

    entry_label: str
    restores: List[RestoreAction] = field(default_factory=list)
    #: True for adjustment-block mini-regions
    mini_region: bool = False


@dataclass
class RecoveryTable:
    """Per-boundary recovery entries, consumed by the simulator runtime."""

    regions: Dict[str, RegionRecovery] = field(default_factory=dict)
    #: number of force-committed checkpoints during table construction
    forced_commits: int = 0

    def entry_for(self, boundary: str) -> RegionRecovery:
        return self.regions[boundary]


def build_recovery_table(
    cfg: CFG,
    liveins: LiveinAnalysis,
    plan: CheckpointPlan,
    validator: PddgValidator,
    slices: Dict[Tuple, SliceExpr],
    coloring: Optional[ColoringResult] = None,
    extra_slices: Optional[Dict[str, SliceExpr]] = None,
    max_rounds: int = 32,
) -> RecoveryTable:
    """Build the restore plan for every boundary, force-committing pruned
    checkpoints whose values turn out not to be slice-restorable.

    ``extra_slices`` maps register names introduced by codegen (checkpoint
    base pointers) to always-valid slices added to every boundary entry.
    """
    table = RecoveryTable()

    def decision(cp):
        return cp.state

    for _ in range(max_rounds):
        changed = False
        table.regions.clear()
        for label, binfo in liveins.boundaries.items():
            entry = RegionRecovery(entry_label=label)
            for reg in sorted(binfo.live_ins, key=lambda r: r.name):
                if reg not in binfo.lups:
                    # Read-before-write on some path: nothing to restore
                    # (and nothing meaningful to restore to).
                    continue
                action = _restore_for(
                    label, reg, binfo, plan, validator, coloring, decision
                )
                if action is None:
                    # No slice available: force-commit the covering
                    # checkpoints and retry the whole table.
                    forced = _force_commit(label, reg, plan)
                    table.forced_commits += forced
                    changed = True
                    break
                entry.restores.append(action)
            if changed:
                break
            table.regions[label] = entry
        if not changed:
            break
    else:
        raise RecoveryMetaError(
            "recovery table construction did not converge"
        )

    if extra_slices:
        for entry in table.regions.values():
            for reg_name, expr in sorted(extra_slices.items()):
                entry.restores.append(
                    RestoreAction(
                        reg_name=reg_name, dtype="u32", slice_expr=expr
                    )
                )
    return table


def _covering_checkpoints(label: str, reg: Reg, plan: CheckpointPlan):
    """Checkpoints covering any (lup -> this boundary) edge of ``reg``."""
    out = []
    for cp in plan.checkpoints:
        if cp.reg != reg:
            continue
        if any(b == label for (_, b) in cp.covers):
            out.append(cp)
    return out


def _edges_of(label: str, reg: Reg, binfo) -> Set:
    return {(lup, label) for lup in binfo.lups.get(reg, set())}


def _restore_for(
    label: str,
    reg: Reg,
    binfo,
    plan: CheckpointPlan,
    validator: PddgValidator,
    coloring: Optional[ColoringResult],
    decision,
) -> Optional[RestoreAction]:
    edges = _edges_of(label, reg, binfo)
    covering = _covering_checkpoints(label, reg, plan)
    committed_edges = set()
    for cp in covering:
        if cp.state is PruneState.COMMITTED:
            committed_edges |= {e for e in cp.covers if e[1] == label}
    if edges and edges <= committed_edges:
        color = coloring.restore_color(label, reg) if coloring else 0
        return RestoreAction(
            reg_name=reg.name, dtype=reg.dtype.value, slot_color=color
        )
    marked = validator.value_at(label, 0, reg, decision)
    if marked.state is VState.VALID and marked.expr is not None:
        return RestoreAction(
            reg_name=reg.name, dtype=reg.dtype.value, slice_expr=marked.expr
        )
    return None


def _force_commit(label: str, reg: Reg, plan: CheckpointPlan) -> int:
    forced = 0
    for cp in plan.checkpoints:
        if cp.reg != reg:
            continue
        if any(b == label for (_, b) in cp.covers):
            if cp.state is not PruneState.COMMITTED:
                cp.state = PruneState.COMMITTED
                forced += 1
    if forced == 0:
        raise RecoveryMetaError(
            f"cannot restore {reg.name} at {label}: no checkpoints to commit",
            detail={"register": reg.name, "boundary": label},
        )
    # Keep the plan stats coherent.
    plan.stats["pruned"] = len(plan.pruned())
    plan.stats["committed"] = len(plan.committed())
    return forced


def adjustment_recoveries(
    coloring: Optional[ColoringResult],
    adjustment_labels: Dict[Tuple[str, str], str],
) -> Dict[str, RegionRecovery]:
    """Mini-region recovery entries for adjustment blocks.

    ``adjustment_labels`` maps each (pred, succ) edge to the label codegen
    gave its adjustment block."""
    out: Dict[str, RegionRecovery] = {}
    if coloring is None:
        return out
    for adj in coloring.adjustments:
        label = adjustment_labels[(adj.pred, adj.succ)]
        entry = out.setdefault(
            label, RegionRecovery(entry_label=label, mini_region=True)
        )
        entry.restores.append(
            RestoreAction(
                reg_name=adj.reg.name,
                dtype=adj.reg.dtype.value,
                slot_color=adj.restore_color,
            )
        )
    return out
