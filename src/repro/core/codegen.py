"""Checkpoint materialization and lowering (§6.6).

Code generation takes the pruned checkpoint plan plus the coloring and
storage decisions and rewrites the kernel:

1. adjustment blocks (with dummy checkpoints) are spliced onto their edges,
2. committed checkpoints become ``cp`` pseudo-instructions at their
   planned positions (after the LUP, or at the bottom of each boundary
   predecessor),
3. every ``cp`` is lowered to a real store with its address computation.

The low-level optimizations of §6.6 are modelled structurally: with
``low_opts`` enabled, the per-thread checkpoint base addresses are computed
once in the kernel preamble (LICM + CSE of the address arithmetic across
all checkpoints) and each checkpoint is a single store off that base;
without it, every checkpoint recomputes its effective address inline.

The preamble base registers become live across the whole kernel, so the
recovery table receives always-valid slices for them (they are recomputed
from special registers and buffer bases — never restored from slots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.core.checkpoints import (
    CheckpointKind,
    CheckpointPlan,
    PlannedCheckpoint,
    PruneState,
)
from repro.core.coloring import ColoringResult
from repro.core.errors import CodegenError
from repro.core.slices import SImm, SOp, SSpecial, SSymRef, SliceExpr
from repro.core.storage import StorageAssignment, StorageKind
from repro.ir.instructions import (
    Alu,
    Bra,
    Checkpoint,
    Instruction,
    St,
)
from repro.ir.module import BasicBlock, Kernel, SharedDecl
from repro.ir.types import DType, Imm, MemSpace, Reg, Special, SymRef

#: Reserved buffer symbols for checkpoint storage.
SHARED_CKPT_SYMBOL = "__ckpt_shared"
GLOBAL_CKPT_SYMBOL = "__ckpt_global"


@dataclass
class CodegenResult:
    """Bookkeeping produced while rewriting the kernel."""

    #: label of the adjustment block created for each (pred, succ) edge
    adjustment_labels: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: codegen-introduced registers restored by slices at every boundary
    extra_slices: Dict[str, SliceExpr] = field(default_factory=dict)
    #: number of cp stores emitted (committed + dummies)
    emitted_checkpoints: int = 0
    #: extra non-store instructions emitted for address computation
    emitted_address_insts: int = 0


def generate(
    kernel: Kernel,
    cfg: CFG,
    plan: CheckpointPlan,
    storage: StorageAssignment,
    coloring: Optional[ColoringResult] = None,
    low_opts: bool = True,
) -> CodegenResult:
    """Materialize and lower all checkpoints; mutates the kernel."""
    result = CodegenResult()

    _insert_adjustment_blocks(kernel, cfg, coloring, result)
    _insert_checkpoints(kernel, cfg, plan, coloring)
    _declare_storage(kernel, storage)
    lowering = _CheckpointLowering(kernel, storage, low_opts, result)
    lowering.run()
    kernel.validate()
    return result


# -- adjustment blocks ------------------------------------------------------------


def _insert_adjustment_blocks(
    kernel: Kernel,
    cfg: CFG,
    coloring: Optional[ColoringResult],
    result: CodegenResult,
) -> None:
    if coloring is None or not coloring.adjustments:
        return
    by_edge: Dict[Tuple[str, str], List] = {}
    for adj in coloring.adjustments:
        by_edge.setdefault((adj.pred, adj.succ), []).append(adj)

    for (pred_label, succ_label), adjs in sorted(by_edge.items()):
        label = kernel.fresh_label(prefix=f"ADJ_{pred_label}")
        block = BasicBlock(label)
        for adj in sorted(adjs, key=lambda a: a.reg.name):
            block.instructions.append(
                Checkpoint(adj.reg, color=adj.color, dummy=True)
            )
        block.instructions.append(Bra(succ_label))

        pred = kernel.block(pred_label)
        rewired = False
        for inst in pred.instructions:
            if isinstance(inst, Bra) and inst.target == succ_label:
                inst.target = label
                rewired = True
        pred_idx = kernel.block_index(pred_label)
        falls_to_succ = (
            pred.falls_through
            and pred_idx + 1 < len(kernel.blocks)
            and kernel.blocks[pred_idx + 1].label == succ_label
        )
        if falls_to_succ:
            kernel.blocks.insert(pred_idx + 1, block)
        elif rewired:
            kernel.blocks.append(block)
        else:
            raise CodegenError(
                f"no edge {pred_label} -> {succ_label} to adjust",
                detail={"pred": pred_label, "succ": succ_label},
            )
        result.adjustment_labels[(pred_label, succ_label)] = label

    kernel.meta["adjustment_blocks"] = set(
        result.adjustment_labels.values()
    )


# -- checkpoint pseudo-instruction insertion ------------------------------------------


def _insert_checkpoints(
    kernel: Kernel,
    cfg: CFG,
    plan: CheckpointPlan,
    coloring: Optional[ColoringResult],
) -> None:
    def color_of(cp: PlannedCheckpoint, block: str) -> int:
        if coloring is None:
            return 0
        return coloring.color_of(cp.key, block)

    # LUP checkpoints: gather per block, insert bottom-up so indices hold.
    lup_by_block: Dict[str, List[PlannedCheckpoint]] = {}
    for cp in plan.committed():
        if cp.kind is CheckpointKind.LUP:
            lup_by_block.setdefault(cp.site.label, []).append(cp)
    for label, cps in lup_by_block.items():
        blk = kernel.block(label)
        for cp in sorted(cps, key=lambda c: -c.site.index):
            blk.instructions.insert(
                cp.site.index + 1,
                Checkpoint(cp.reg, color=color_of(cp, label)),
            )

    # Boundary checkpoints: append at the bottom of each predecessor, before
    # any trailing branch.  Predecessors are taken from the CFG snapshot
    # that existed when the plan was made; adjustment blocks spliced onto
    # edges do not disturb these positions (they only contain dummies).
    for cp in plan.committed():
        if cp.kind is not CheckpointKind.BOUNDARY:
            continue
        for pred_label in cfg.predecessors(cp.boundary):
            blk = kernel.block(pred_label)
            insert_at = len(blk.instructions)
            if blk.instructions and isinstance(blk.instructions[-1], Bra):
                insert_at -= 1
            blk.instructions.insert(
                insert_at,
                Checkpoint(cp.reg, color=color_of(cp, pred_label)),
            )


# -- storage declaration ----------------------------------------------------------------


def _declare_storage(kernel: Kernel, storage: StorageAssignment) -> None:
    if storage.shared_slots:
        kernel.shared.append(
            SharedDecl(
                SHARED_CKPT_SYMBOL,
                storage.shared_slots * storage.threads_per_block,
            )
        )
    kernel.meta["ckpt_global_words"] = (
        storage.global_slots * storage.total_threads
    )
    kernel.meta["storage_assignment"] = storage


# -- checkpoint lowering ------------------------------------------------------------------


class _CheckpointLowering:
    """Rewrites ``cp`` pseudo-instructions into stores."""

    def __init__(
        self,
        kernel: Kernel,
        storage: StorageAssignment,
        low_opts: bool,
        result: CodegenResult,
    ):
        self.kernel = kernel
        self.storage = storage
        self.low_opts = low_opts
        self.result = result
        self.base_shared: Optional[Reg] = None
        self.base_global: Optional[Reg] = None

    def run(self) -> None:
        if self.low_opts and self.storage.slots:
            self._emit_preamble()
        for blk in self.kernel.blocks:
            new: List[Instruction] = []
            for inst in blk.instructions:
                if isinstance(inst, Checkpoint):
                    new.extend(self._lower(inst))
                else:
                    new.append(inst)
            blk.instructions = new

    def _emit_preamble(self) -> None:
        """Hoisted per-thread checkpoint base addresses (LICM + CSE)."""
        insts: List[Instruction] = []
        needs_shared = self.storage.shared_slots > 0
        needs_global = self.storage.global_slots > 0
        if needs_shared:
            self.base_shared = Reg("%ckb_s", DType.U32)
            insts.extend(
                [
                    Alu("mov", DType.U32, self.base_shared, [SymRef(SHARED_CKPT_SYMBOL)]),
                    Alu(
                        "mad",
                        DType.U32,
                        self.base_shared,
                        [Special("%tid.x"), Imm(4), self.base_shared],
                    ),
                ]
            )
            self.result.extra_slices["%ckb_s"] = SOp(
                "mad",
                DType.U32,
                (
                    SSpecial("%tid.x"),
                    SImm(4),
                    SSymRef(SHARED_CKPT_SYMBOL),
                ),
            )
        if needs_global:
            self.base_global = Reg("%ckb_g", DType.U32)
            gtid = Reg("%ckb_t", DType.U32)
            insts.extend(
                [
                    Alu("mov", DType.U32, gtid, [Special("%ctaid.x")]),
                    Alu(
                        "mad",
                        DType.U32,
                        gtid,
                        [gtid, Special("%ntid.x"), Special("%tid.x")],
                    ),
                    Alu("mov", DType.U32, self.base_global, [SymRef(GLOBAL_CKPT_SYMBOL)]),
                    Alu(
                        "mad",
                        DType.U32,
                        self.base_global,
                        [gtid, Imm(4), self.base_global],
                    ),
                ]
            )
            gtid_expr = SOp(
                "mad",
                DType.U32,
                (SSpecial("%ctaid.x"), SSpecial("%ntid.x"), SSpecial("%tid.x")),
            )
            self.result.extra_slices["%ckb_g"] = SOp(
                "mad",
                DType.U32,
                (gtid_expr, SImm(4), SSymRef(GLOBAL_CKPT_SYMBOL)),
            )
            self.result.extra_slices["%ckb_t"] = gtid_expr
        self.result.emitted_address_insts += len(insts)
        entry = self.kernel.entry
        entry.instructions[0:0] = insts

    def _slot_offset(self, kind: StorageKind, index: int) -> int:
        if kind is StorageKind.SHARED:
            return index * self.storage.threads_per_block * 4
        return index * self.storage.total_threads * 4

    def _lower(self, cp: Checkpoint) -> List[Instruction]:
        slot = self.storage.slots.get((cp.reg.name, cp.color))
        if slot is None:
            raise KeyError(
                f"no storage slot for checkpoint of {cp.reg.name} "
                f"color {cp.color}"
            )
        space = (
            MemSpace.SHARED
            if slot.kind is StorageKind.SHARED
            else MemSpace.GLOBAL
        )
        offset = self._slot_offset(slot.kind, slot.index)
        self.result.emitted_checkpoints += 1

        if self.low_opts:
            base = (
                self.base_shared
                if slot.kind is StorageKind.SHARED
                else self.base_global
            )
            assert base is not None
            return [St(space, DType.U32, base, cp.reg, offset)]

        # Unoptimized: recompute the effective address inline.
        insts: List[Instruction] = []
        t0 = self.kernel.fresh_reg(DType.U32, prefix="%ca")
        if slot.kind is StorageKind.SHARED:
            insts.append(
                Alu("mov", DType.U32, t0, [SymRef(SHARED_CKPT_SYMBOL)])
            )
            insts.append(
                Alu("mad", DType.U32, t0, [Special("%tid.x"), Imm(4), t0])
            )
        else:
            t1 = self.kernel.fresh_reg(DType.U32, prefix="%ca")
            insts.append(Alu("mov", DType.U32, t1, [Special("%ctaid.x")]))
            insts.append(
                Alu(
                    "mad",
                    DType.U32,
                    t1,
                    [t1, Special("%ntid.x"), Special("%tid.x")],
                )
            )
            insts.append(
                Alu("mov", DType.U32, t0, [SymRef(GLOBAL_CKPT_SYMBOL)])
            )
            insts.append(Alu("mad", DType.U32, t0, [t1, Imm(4), t0]))
        self.result.emitted_address_insts += len(insts)
        insts.append(St(space, DType.U32, t0, cp.reg, offset))
        return insts
