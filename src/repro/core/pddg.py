"""Predicate/data dependence graph (PDDG) validation — Algorithm 1 (§6.4.1).

Validating a checkpoint ``cv`` asks: can the value it saves be recomputed at
recovery time from things that are guaranteed intact — constants, special
registers, read-only or un-overwritten memory, and other *committed*
checkpoints?  The answer is computed by a depth-first traversal of the
value's dependences, merging three validation states with priority
``invalid > undecided > valid``:

- ``VALID``     — recomputable; a recovery-slice expression is produced.
- ``INVALID``   — provably not recomputable (cyclic dependence, overwritten
  memory, atomics, uninitialized input).
- ``UNDECIDED`` — recomputable *if* some other checkpoint ends up committed
  (its pruning decision is deferred to phase 2).

Deviations from the paper, chosen to keep the produced recovery slices
*executable* in our recovery runtime and documented in DESIGN.md:

- A valid state whose value our slice builder cannot linearize (e.g. a join
  of more than two definitions) is demoted to INVALID, so "prunable" always
  means "the runtime can actually rebuild the value".
- A committed checkpoint's slot is only trusted under conservative
  conditions (LUP-kind, sole writer of its slot, not inside a loop); see
  :meth:`PddgValidator._slot_usable`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.cfg import CFG
from repro.analysis.loops import LoopInfo
from repro.analysis.postdom import ControlDependence
from repro.analysis.reachingdefs import DefSite, ReachingDefs
from repro.core.checkpoints import (
    CheckpointKind,
    CheckpointPlan,
    PlannedCheckpoint,
    PruneState,
)
from repro.core.coloring import ColoringResult
from repro.core.hazards import CpInstance
from repro.core.slices import (
    SImm,
    SLoad,
    SOp,
    SSelp,
    SSetp,
    SSlot,
    SSpecial,
    SSymRef,
    SliceExpr,
)
from repro.ir.instructions import Alu, Atom, Ld, Selp, Setp, St
from repro.ir.types import DType, Imm, Operand, Reg, Special, SymRef


class VState(enum.IntEnum):
    """Validation state; numeric order is the merge priority."""

    VALID = 0
    UNDECIDED = 1
    INVALID = 2


def merge(a: VState, b: VState) -> VState:
    return max(a, b)


@dataclass
class Marked:
    """Validation result for one node: the merged state and, when VALID,
    the recovery-slice expression that recomputes the value."""

    state: VState
    expr: Optional[SliceExpr] = None


#: Callback giving the current pruning decision of a checkpoint, or None
#: when decisions are not yet known (phase 1).
DecisionFn = Callable[[PlannedCheckpoint], Optional[PruneState]]


class PddgValidator:
    """Shared machinery for phase-1/phase-2 validation and restore slices."""

    def __init__(
        self,
        cfg: CFG,
        rdefs: ReachingDefs,
        plan: CheckpointPlan,
        instances: List[CpInstance],
        aa: AliasAnalysis,
        loops: LoopInfo,
        ctrldep: ControlDependence,
        coloring: Optional[ColoringResult] = None,
    ):
        self.cfg = cfg
        self.rdefs = rdefs
        self.plan = plan
        self.instances = instances
        self.aa = aa
        self.loops = loops
        self.ctrldep = ctrldep
        self.coloring = coloring
        self.materialization_failures = 0

        #: LUP checkpoints by their defining site.
        self.cp_at_site: Dict[DefSite, PlannedCheckpoint] = {}
        for cp in plan.checkpoints:
            if cp.kind is CheckpointKind.LUP and cp.site is not None:
                self.cp_at_site[cp.site] = cp

        #: all stores, for memory-overwrite checks
        self._stores: List[Tuple[str, int]] = []
        for blk in cfg.blocks:
            for i, inst in enumerate(blk.instructions):
                if inst.is_memory_write:
                    self._stores.append((blk.label, i))

    # -- public API -------------------------------------------------------------

    def validate_checkpoint(
        self, cv: PlannedCheckpoint, decision: Optional[DecisionFn] = None
    ) -> Marked:
        """Run Algorithm 1 from checkpoint ``cv``."""
        if cv.kind is CheckpointKind.LUP:
            assert cv.site is not None
            return self._mark_def(cv.site, frozenset(), decision, root=cv)
        assert cv.boundary is not None
        return self._mark_reg_at(
            cv.boundary, 0, cv.reg, frozenset(), decision
        )

    def value_at(
        self, label: str, index: int, reg: Reg, decision: Optional[DecisionFn]
    ) -> Marked:
        """Validate/slice the value of ``reg`` just before (label, index) —
        used to build boundary restore slices."""
        return self._mark_reg_at(label, index, reg, frozenset(), decision)

    def collect_decision_deps(
        self, cv: PlannedCheckpoint, decision: DecisionFn
    ) -> Set[PlannedCheckpoint]:
        """Algorithm 2's CollectDecisionDeps: the checkpoints whose pruning
        decisions must be known before ``cv`` can be finalized."""
        deps: Set[PlannedCheckpoint] = set()
        visited: Set[DefSite] = set()
        if cv.kind is CheckpointKind.LUP:
            self._deps_from_def(cv.site, cv, decision, deps, visited)
        else:
            self._deps_from_reg(
                cv.boundary, 0, cv.reg, cv, decision, deps, visited
            )
        deps.discard(cv)
        return deps

    # -- memory-overwrite check ----------------------------------------------------

    def memory_intact(self, label: str, index: int) -> bool:
        """CheckMemOW: may the location loaded at (label, index) be
        overwritten before recovery re-executes the load?  Conservative:
        invalid when any may-aliasing store is reachable from the load."""
        addr = self.aa.address_of(label, index)
        for s_label, s_index in self._stores:
            s_addr = self.aa.address_of(s_label, s_index)
            if self.aa.alias(addr, s_addr) is AliasResult.NO:
                continue
            if self._reachable(label, s_label, index, s_index):
                return False
        return True

    def _reachable(
        self, from_label: str, to_label: str, from_idx: int, to_idx: int
    ) -> bool:
        if from_label == to_label and to_idx > from_idx:
            return True
        seen: Set[str] = set()
        stack = list(self.cfg.successors(from_label))
        while stack:
            lbl = stack.pop()
            if lbl == to_label:
                return True
            if lbl in seen:
                continue
            seen.add(lbl)
            stack.extend(self.cfg.successors(lbl))
        return False

    # -- slot usability ----------------------------------------------------------------

    def _slot_usable(self, cd: PlannedCheckpoint) -> bool:
        """May a recovery slice read ``cd``'s checkpoint slot?

        Conservative conditions guaranteeing the slot holds exactly the
        value that flowed into the dependent computation:

        - ``cd`` is LUP-kind (it provably executed right after the value was
          defined; a boundary checkpoint may still be pending),
        - ``cd``'s block is not inside a loop (no self-overwrite across
          iterations),
        - no other checkpoint instance or coloring dummy writes the same
          (register, color) slot.
        """
        if cd.kind is not CheckpointKind.LUP:
            return False
        if self.loops.depth_of(cd.site.label) > 0:
            return False
        color = 0
        if self.coloring is not None:
            color = self.coloring.color_of(cd.key, cd.site.label)
        for inst in self.instances:
            if inst.cp is cd or inst.reg != cd.reg:
                continue
            other_color = 0
            if self.coloring is not None:
                other_color = self.coloring.color_of(inst.cp.key, inst.block)
            if other_color == color:
                return False
        if self.coloring is not None:
            for adj in self.coloring.adjustments:
                if adj.reg == cd.reg and adj.color == color:
                    return False
        return True

    # -- Algorithm 1: marking --------------------------------------------------------------

    def _mark_reg_at(
        self,
        label: str,
        index: int,
        reg: Reg,
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Marked:
        sites = [
            s
            for s in self.rdefs.reaching_at(label, index, reg)
            if not s.is_entry
        ]
        if not sites:
            return Marked(VState.INVALID)  # uninitialized input
        if len(sites) == 1:
            return self._mark_def(sites[0], visited, decision)
        return self._mark_join(sites, visited, decision)

    def _mark_join(
        self,
        sites: List[DefSite],
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Marked:
        """A value defined on multiple paths: data dependences on every
        definition plus predicate dependences on the branches steering
        between them (§6.4.1)."""
        state = VState.VALID
        marks: List[Tuple[DefSite, Marked]] = []
        for site in sorted(sites, key=lambda s: (s.label, s.index)):
            m = self._mark_def(site, visited, decision)
            marks.append((site, m))
            state = merge(state, m.state)
        # Predicate dependences: the branch predicates the definitions are
        # control-dependent on.
        pred_exprs: Dict[Tuple[str, str], Marked] = {}
        for site, _ in marks:
            for cd in self.ctrldep.of(site.label):
                key = (cd.branch_block, cd.pred.name)
                if key in pred_exprs:
                    continue
                branch_blk = self.cfg.block(cd.branch_block)
                pm = self._mark_reg_at(
                    cd.branch_block,
                    len(branch_blk.instructions),
                    cd.pred,
                    visited,
                    decision,
                )
                pred_exprs[key] = pm
                state = merge(state, pm.state)
        if state is not VState.VALID:
            return Marked(state)
        expr = self._materialize_join(marks, visited, decision)
        if expr is None:
            self.materialization_failures += 1
            return Marked(VState.INVALID)
        return Marked(VState.VALID, expr)

    def _materialize_join(
        self,
        marks: List[Tuple[DefSite, Marked]],
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Optional[SliceExpr]:
        """Linearize a two-way join as a select over its branch predicate.

        Supported shapes: both definitions control-dependent on opposite
        edges of one branch, or one definition on a branch edge with the
        other flowing around the branch."""
        if len(marks) != 2:
            return None
        (site_a, mark_a), (site_b, mark_b) = marks
        deps_a = self.ctrldep.of(site_a.label)
        deps_b = self.ctrldep.of(site_b.label)
        for cd_a in deps_a:
            opposite = next(
                (
                    cd_b
                    for cd_b in deps_b
                    if cd_b.branch_block == cd_a.branch_block
                    and cd_b.pred == cd_a.pred
                    and cd_b.sense != cd_a.sense
                ),
                None,
            )
            matches_around = not any(
                cd_b.branch_block == cd_a.branch_block for cd_b in deps_b
            )
            if opposite is None and not matches_around:
                continue
            branch_blk = self.cfg.block(cd_a.branch_block)
            pm = self._mark_reg_at(
                cd_a.branch_block,
                len(branch_blk.instructions),
                cd_a.pred,
                visited,
                decision,
            )
            if pm.state is not VState.VALID or pm.expr is None:
                continue
            dtype = site_a.reg.dtype
            if cd_a.sense:
                return SSelp(dtype, mark_a.expr, mark_b.expr, pm.expr)
            return SSelp(dtype, mark_b.expr, mark_a.expr, pm.expr)
        return None

    def _mark_def(
        self,
        site: DefSite,
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
        root: Optional[PlannedCheckpoint] = None,
    ) -> Marked:
        if site in visited:
            return Marked(VState.INVALID)  # cyclic dependence
        visited = visited | {site}

        cp = self.cp_at_site.get(site)
        is_checkpoint_node = cp is not None and cp is not root
        # Phase 2 shortcut: a committed checkpoint with a trustworthy slot
        # terminates the traversal (Algorithm 2, lines 7-8).
        if is_checkpoint_node and decision is not None:
            d = decision(cp)
            if d is PruneState.COMMITTED and self._slot_usable(cp):
                color = (
                    self.coloring.color_of(cp.key, cp.site.label)
                    if self.coloring
                    else 0
                )
                return Marked(VState.VALID, SSlot(cp.reg.name, color))

        result = self._mark_instruction(site, visited, decision)

        if result.state is VState.INVALID and is_checkpoint_node:
            if decision is None:
                # Phase 1: the checkpoint *might* be committed — defer.
                return Marked(VState.UNDECIDED)
            d = decision(cp)
            if d is PruneState.UNDECIDED:
                return Marked(VState.UNDECIDED)
            # Committed-but-unusable or pruned: the value is unreachable.
            return Marked(VState.INVALID)
        return result

    def _mark_instruction(
        self,
        site: DefSite,
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Marked:
        inst = self.cfg.block(site.label).instructions[site.index]

        if inst.guard is not None:
            # A guarded definition merges with the prior value under the
            # guard predicate: dst = guard ? value : previous.
            prior = self._mark_reg_at(
                site.label, site.index, site.reg, visited, decision
            )
            guard_reg, sense = inst.guard
            guard_mark = self._mark_reg_at(
                site.label, site.index, guard_reg, visited, decision
            )
            value = self._mark_unguarded(site, inst, visited, decision)
            state = merge(merge(prior.state, guard_mark.state), value.state)
            if state is not VState.VALID:
                return Marked(state)
            if sense:
                expr = SSelp(
                    site.reg.dtype, value.expr, prior.expr, guard_mark.expr
                )
            else:
                expr = SSelp(
                    site.reg.dtype, prior.expr, value.expr, guard_mark.expr
                )
            return Marked(VState.VALID, expr)

        return self._mark_unguarded(site, inst, visited, decision)

    def _mark_unguarded(
        self,
        site: DefSite,
        inst,
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Marked:
        if isinstance(inst, Atom):
            return Marked(VState.INVALID)  # non-idempotent read

        if isinstance(inst, Ld):
            base = self._mark_operand(
                site, inst.base, DType.U32, visited, decision
            )
            if inst.space.read_only:
                mem = VState.VALID
            else:
                mem = (
                    VState.VALID
                    if self.memory_intact(site.label, site.index)
                    else VState.INVALID
                )
            state = merge(base.state, mem)
            if state is not VState.VALID:
                return Marked(state)
            return Marked(
                VState.VALID,
                SLoad(inst.space, inst.dtype, base.expr, inst.offset),
            )

        if isinstance(inst, Setp):
            a = self._mark_operand(site, inst.srcs[0], inst.dtype, visited, decision)
            b = self._mark_operand(site, inst.srcs[1], inst.dtype, visited, decision)
            state = merge(a.state, b.state)
            if state is not VState.VALID:
                return Marked(state)
            return Marked(VState.VALID, SSetp(inst.cmp, inst.dtype, a.expr, b.expr))

        if isinstance(inst, Selp):
            a = self._mark_operand(site, inst.srcs[0], inst.dtype, visited, decision)
            b = self._mark_operand(site, inst.srcs[1], inst.dtype, visited, decision)
            p = self._mark_operand(site, inst.pred, DType.PRED, visited, decision)
            state = merge(merge(a.state, b.state), p.state)
            if state is not VState.VALID:
                return Marked(state)
            return Marked(
                VState.VALID, SSelp(inst.dtype, a.expr, b.expr, p.expr)
            )

        if isinstance(inst, Alu):
            marks = [
                self._mark_operand(site, src, inst.dtype, visited, decision)
                for src in inst.srcs
            ]
            state = VState.VALID
            for m in marks:
                state = merge(state, m.state)
            if state is not VState.VALID:
                return Marked(state)
            return Marked(
                VState.VALID,
                SOp(inst.op, inst.dtype, tuple(m.expr for m in marks)),
            )

        return Marked(VState.INVALID)

    def _mark_operand(
        self,
        site: DefSite,
        op: Operand,
        dtype: DType,
        visited: FrozenSet[DefSite],
        decision: Optional[DecisionFn],
    ) -> Marked:
        if isinstance(op, Imm):
            return Marked(VState.VALID, SImm(op.value, op.dtype))
        if isinstance(op, Special):
            return Marked(VState.VALID, SSpecial(op.name))
        if isinstance(op, SymRef):
            return Marked(VState.VALID, SSymRef(op.name))
        return self._mark_reg_at(
            site.label, site.index, op, visited, decision
        )

    # -- Algorithm 2: decision-dependence collection ---------------------------------------

    def overwriting_checkpoints(
        self, cd: PlannedCheckpoint
    ) -> Set[PlannedCheckpoint]:
        """OWCkpts: checkpoints that may overwrite ``cd``'s slot (same
        register, same color — conservatively, all other checkpoints of the
        register when coloring is absent)."""
        color = 0
        if self.coloring is not None and cd.kind is CheckpointKind.LUP:
            color = self.coloring.color_of(cd.key, cd.site.label)
        out: Set[PlannedCheckpoint] = set()
        for inst in self.instances:
            if inst.cp is cd or inst.reg != cd.reg:
                continue
            other = 0
            if self.coloring is not None:
                other = self.coloring.color_of(inst.cp.key, inst.block)
            if other == color:
                out.add(inst.cp)
        return out

    def _deps_from_def(
        self,
        site: DefSite,
        cv: PlannedCheckpoint,
        decision: DecisionFn,
        deps: Set[PlannedCheckpoint],
        visited: Set[DefSite],
    ) -> None:
        if site in visited:
            return
        visited.add(site)
        cp = self.cp_at_site.get(site)
        if cp is not None and cp is not cv:
            d = decision(cp)
            if d is PruneState.COMMITTED:
                deps.update(self.overwriting_checkpoints(cp))
                return  # traversal stops at committed checkpoints
            if d is PruneState.UNDECIDED:
                deps.add(cp)
                deps.update(self.overwriting_checkpoints(cp))
                # continue the traversal to find committed ones deeper
        inst = self.cfg.block(site.label).instructions[site.index]
        regs = list(inst.reg_uses())
        if inst.guard is not None:
            self._deps_from_reg(
                site.label, site.index, site.reg, cv, decision, deps, visited
            )
        for reg in regs:
            self._deps_from_reg(
                site.label, site.index, reg, cv, decision, deps, visited
            )

    def _deps_from_reg(
        self,
        label: str,
        index: int,
        reg: Reg,
        cv: PlannedCheckpoint,
        decision: DecisionFn,
        deps: Set[PlannedCheckpoint],
        visited: Set[DefSite],
    ) -> None:
        sites = [
            s
            for s in self.rdefs.reaching_at(label, index, reg)
            if not s.is_entry
        ]
        for site in sites:
            self._deps_from_def(site, cv, decision, deps, visited)
        if len(sites) > 1:
            for site in sites:
                for cd in self.ctrldep.of(site.label):
                    branch_blk = self.cfg.block(cd.branch_block)
                    self._deps_from_reg(
                        cd.branch_block,
                        len(branch_blk.instructions),
                        cd.pred,
                        cv,
                        decision,
                        deps,
                        visited,
                    )
