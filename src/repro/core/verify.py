"""Static verification of compiled kernels.

A production resilience compiler cannot afford silent mis-compilation: a
kernel that *runs correctly* but whose recovery metadata is subtly wrong
only fails when a particle strikes.  This verifier re-derives the
correctness obligations of docs/INTERNALS.md from the final kernel and its
metadata, independently of the passes that were supposed to establish
them:

- **V1 coverage** — along every path, after the last definition of a
  live-in register a checkpoint store (or its pruned-with-slice
  replacement) precedes the boundary.
- **V2 restore completeness** — every region's recovery entry restores
  every live-in register that has a definition (slot or slice), and every
  slot it references exists in the storage assignment.
- **V3 barrier isolation** — no barrier-like instruction can be re-executed:
  each is block-final with only boundary successors.
- **V4 slice safety** — recovery slices only read read-only memory,
  locations no reachable store may alias, committed slots, and fault-free
  sources.
- **V5 adjustment soundness** — adjustment blocks contain only checkpoint
  stores (plus the address arithmetic the unoptimized lowering emits for
  them) and one unconditional branch, and carry mini-region entries
  restoring every register they read.

``verify_compiled`` returns a list of human-readable violations (empty =
clean); :class:`VerificationError` is raised by ``check`` for pipeline
integration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.core.codegen import GLOBAL_CKPT_SYMBOL, SHARED_CKPT_SYMBOL
from repro.core.recovery_meta import RecoveryTable
from repro.core.slices import (
    SLoad,
    SOp,
    SSelp,
    SSetp,
    SSlot,
    SliceExpr,
)
from repro.ir.instructions import Alu, Bra, Instruction, St
from repro.ir.module import Kernel
from repro.ir.types import Imm, MemSpace, Reg, Special, SymRef


class VerificationError(RuntimeError):
    """The compiled kernel violates a recovery-correctness obligation."""


def _is_checkpoint_store(inst: Instruction) -> bool:
    if not isinstance(inst, St):
        return False
    if isinstance(inst.base, SymRef):
        return inst.base.name in (SHARED_CKPT_SYMBOL, GLOBAL_CKPT_SYMBOL)
    if isinstance(inst.base, Reg):
        return inst.base.name.startswith(("%ckb_", "%ca"))
    return False


def _is_checkpoint_addressing(inst: Instruction) -> bool:
    """Address arithmetic emitted by the unoptimized (``low_opts=False``)
    checkpoint lowering: unguarded mov/mad into a fresh ``%ca*`` register
    whose inputs are only specials, immediates, checkpoint base symbols,
    or other ``%ca*`` registers.  Such instructions cannot touch kernel
    state, so they are sound inside adjustment blocks."""
    if not isinstance(inst, Alu) or inst.guard is not None:
        return False
    dst = inst.dst
    if not isinstance(dst, Reg) or not dst.name.startswith("%ca"):
        return False
    for src in inst.srcs:
        if isinstance(src, (Special, Imm)):
            continue
        if isinstance(src, SymRef) and src.name in (
            SHARED_CKPT_SYMBOL,
            GLOBAL_CKPT_SYMBOL,
        ):
            continue
        if isinstance(src, Reg) and src.name.startswith("%ca"):
            continue
        return False
    return True


def verify_compiled(kernel: Kernel) -> List[str]:
    """Check every obligation; returns violations (empty list = clean)."""
    problems: List[str] = []
    table: Optional[RecoveryTable] = kernel.meta.get("recovery_table")
    boundaries: Set[str] = set(kernel.meta.get("region_boundaries", set()))
    adjustments: Set[str] = set(kernel.meta.get("adjustment_blocks", set()))
    storage = kernel.meta.get("storage_assignment")
    if table is None or not boundaries:
        return ["kernel carries no recovery metadata (not compiled?)"]

    cfg = CFG(kernel)
    problems += _verify_restores(kernel, cfg, table, boundaries, storage)
    problems += _verify_coverage(kernel, cfg, table, boundaries)
    problems += _verify_barriers(kernel, cfg, boundaries, adjustments)
    problems += _verify_slices(kernel, cfg, table, storage)
    problems += _verify_adjustments(kernel, cfg, table, adjustments)
    return problems


def check(kernel: Kernel) -> None:
    """Raise :class:`VerificationError` on the first violation."""
    problems = verify_compiled(kernel)
    if problems:
        raise VerificationError(
            f"{len(problems)} violation(s): " + "; ".join(problems[:5])
        )


# -- V2: restore completeness -------------------------------------------------


def _verify_restores(
    kernel: Kernel, cfg: CFG, table: RecoveryTable, boundaries, storage
) -> List[str]:
    from repro.analysis.liveness import Liveness
    from repro.analysis.reachingdefs import ReachingDefs

    problems: List[str] = []
    liveness = Liveness(cfg)
    rdefs = ReachingDefs(cfg)
    for label in boundaries:
        entry = table.regions.get(label)
        if entry is None:
            problems.append(f"boundary {label} has no recovery entry")
            continue
        restored = {a.reg_name for a in entry.restores}
        for reg in liveness.live_in.get(label, set()):
            sites = [
                s for s in rdefs.reaching_at(label, 0, reg) if not s.is_entry
            ]
            if not sites:
                continue  # read-before-write: nothing restorable
            if reg.name not in restored:
                problems.append(
                    f"{label}: live-in {reg.name} has no restore action"
                )
        for action in entry.restores:
            if action.is_slot:
                if storage is None or (
                    action.reg_name,
                    action.slot_color,
                ) not in storage.slots:
                    problems.append(
                        f"{label}: slot restore of {action.reg_name} "
                        f"color {action.slot_color} has no storage slot"
                    )
            elif action.slice_expr is None:
                problems.append(
                    f"{label}: restore of {action.reg_name} is neither "
                    "slot nor slice"
                )
    return problems


# -- V1: coverage ----------------------------------------------------------------


def _verify_coverage(
    kernel: Kernel, cfg: CFG, table: RecoveryTable, boundaries
) -> List[str]:
    """For every slot-restored register of every recovery entry (boundaries
    and adjustment mini-regions alike): no path may run from a definition
    of the register to the entry's label without passing a checkpoint store
    into the restored *color's* slot.

    Performed on the final (lowered) kernel, independently of the plan.
    Slot colors are recovered from each store's byte offset against the
    storage assignment's coalesced layout.
    """
    problems: List[str] = []
    storage = kernel.meta.get("storage_assignment")
    if storage is None:
        return ["kernel has no storage assignment"]

    from repro.core.storage import StorageKind

    #: (reg name, color) -> expected store offset + space
    expected: Dict[Tuple[str, int], Tuple[int, MemSpace]] = {}
    for (reg_name, color), slot in storage.slots.items():
        if slot.kind is StorageKind.SHARED:
            expected[(reg_name, color)] = (
                slot.index * storage.threads_per_block * 4,
                MemSpace.SHARED,
            )
        else:
            expected[(reg_name, color)] = (
                slot.index * storage.total_threads * 4,
                MemSpace.GLOBAL,
            )

    # Positions of defs, and of checkpoint stores per (register, color).
    defs: Dict[str, List[Tuple[str, int]]] = {}
    cp_stores: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    for blk in cfg.blocks:
        for i, inst in enumerate(blk.instructions):
            if _is_checkpoint_store(inst) and isinstance(inst.src, Reg):
                for color in (0, 1):
                    key = (inst.src.name, color)
                    exp = expected.get(key)
                    if exp and exp == (inst.offset, inst.space):
                        cp_stores.setdefault(key, set()).add((blk.label, i))
            else:
                for reg in inst.defs():
                    defs.setdefault(reg.name, []).append((blk.label, i))

    def uncovered_path(
        reg_name: str, color: int, start: Tuple[str, int], target: str
    ) -> bool:
        """Path from just after ``start`` to ``target``'s entry crossing
        neither a matching-color checkpoint store nor a redefinition (each
        redefinition is its own coverage problem)."""
        blockers = cp_stores.get((reg_name, color), set())
        redefs = set(defs.get(reg_name, []))
        seen: Set[Tuple[str, int]] = set()
        work = [(start[0], start[1] + 1)]
        while work:
            label, idx = work.pop()
            if (label, idx) in seen:
                continue
            seen.add((label, idx))
            blk = cfg.block(label)
            blocked = False
            for j in range(idx, len(blk.instructions)):
                if (label, j) in blockers or (
                    (label, j) in redefs and (label, j) != start
                ):
                    blocked = True
                    break
            if blocked:
                continue
            for succ in cfg.successors(label):
                if succ == target:
                    return True
                work.append((succ, 0))
        return False

    for label, entry in table.regions.items():
        for action in entry.restores:
            if not action.is_slot:
                continue
            for d in defs.get(action.reg_name, []):
                if uncovered_path(
                    action.reg_name, action.slot_color, d, label
                ):
                    problems.append(
                        f"{label}: definition of {action.reg_name} at "
                        f"{d[0]}:{d[1]} can reach the entry without a "
                        f"K{action.slot_color} checkpoint "
                        "(slot restore would be stale)"
                    )
                    break
    return problems


# -- V3: barrier isolation ------------------------------------------------------


def _verify_barriers(
    kernel: Kernel, cfg: CFG, boundaries, adjustments
) -> List[str]:
    problems: List[str] = []
    for blk in kernel.blocks:
        for i, inst in enumerate(blk.instructions):
            if not inst.is_barrier_like:
                continue
            if i != len(blk.instructions) - 1:
                problems.append(
                    f"{blk.label}: barrier-like instruction not block-final"
                )
                continue
            for succ in cfg.successors(blk.label):
                if succ not in boundaries:
                    problems.append(
                        f"{blk.label}: barrier falls into non-boundary "
                        f"{succ} (re-execution would repeat it)"
                    )
    return problems


# -- V4: slice safety ---------------------------------------------------------------


def _verify_slices(
    kernel: Kernel, cfg: CFG, table: RecoveryTable, storage
) -> List[str]:
    problems: List[str] = []
    # Blocks reachable from each boundary (a slice attached to boundary B
    # only ever runs after B was crossed, so only stores reachable from B
    # can invalidate its memory sources).
    reachable_cache: Dict[str, Set[str]] = {}

    def reachable_from(label: str) -> Set[str]:
        if label not in reachable_cache:
            seen = {label}
            stack = [label]
            while stack:
                cur = stack.pop()
                for succ in cfg.successors(cur):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            reachable_cache[label] = seen
        return reachable_cache[label]

    def local_store_reachable(boundary: str) -> bool:
        for lbl in reachable_from(boundary):
            for inst in cfg.block(lbl).instructions:
                if (
                    inst.is_memory_write
                    and not _is_checkpoint_store(inst)
                    and getattr(inst, "space", None) is MemSpace.LOCAL
                ):
                    return True
        return False

    def check_expr(where: str, boundary: str, expr: SliceExpr) -> None:
        if isinstance(expr, SLoad):
            check_expr(where, boundary, expr.base)
            if expr.space in (MemSpace.PARAM, MemSpace.CONST):
                return
            # The pruning validator proved the precise address-aware
            # property; the verifier independently re-checks the coarser
            # path property for thread-private (local) memory, where the
            # address is immaterial: no local store may execute between
            # the boundary and the slice's run.
            if expr.space is MemSpace.LOCAL and local_store_reachable(
                boundary
            ):
                problems.append(
                    f"{where}: slice re-executes a local-memory load but a "
                    "local store is reachable from its boundary"
                )
            return
        if isinstance(expr, SSlot):
            if storage is None or (expr.reg_name, expr.color) not in storage.slots:
                problems.append(
                    f"{where}: slice reads missing slot "
                    f"({expr.reg_name}, K{expr.color})"
                )
            return
        if isinstance(expr, SOp):
            for s in expr.srcs:
                check_expr(where, boundary, s)
        elif isinstance(expr, SSetp):
            check_expr(where, boundary, expr.a)
            check_expr(where, boundary, expr.b)
        elif isinstance(expr, SSelp):
            check_expr(where, boundary, expr.a)
            check_expr(where, boundary, expr.b)
            check_expr(where, boundary, expr.pred)

    for label, entry in table.regions.items():
        for action in entry.restores:
            if action.slice_expr is not None:
                check_expr(
                    f"{label}/{action.reg_name}", label, action.slice_expr
                )
    return problems


# -- V5: adjustment blocks ---------------------------------------------------------


def _verify_adjustments(
    kernel: Kernel, cfg: CFG, table: RecoveryTable, adjustments
) -> List[str]:
    problems: List[str] = []
    for label in adjustments:
        try:
            blk = kernel.block(label)
        except KeyError:
            problems.append(f"adjustment block {label} missing")
            continue
        entry = table.regions.get(label)
        if entry is None or not entry.mini_region:
            problems.append(
                f"adjustment block {label} lacks a mini-region entry"
            )
            continue
        restored = {a.reg_name for a in entry.restores}
        body = blk.instructions
        if not body or not isinstance(body[-1], Bra) or body[-1].guard:
            problems.append(
                f"adjustment block {label} must end in an unconditional bra"
            )
        for inst in body[:-1]:
            if _is_checkpoint_addressing(inst):
                continue
            if not _is_checkpoint_store(inst):
                problems.append(
                    f"adjustment block {label} contains a non-checkpoint "
                    f"instruction: {inst}"
                )
                continue
            src = inst.src
            if isinstance(src, Reg) and src.name not in restored:
                problems.append(
                    f"adjustment block {label} reads {src.name} without a "
                    "mini-region restore"
                )
    return problems
