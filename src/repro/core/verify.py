"""Static verification of compiled kernels — compatibility shim.

The V1–V5 obligations (coverage, restore completeness, barrier
isolation, slice safety, adjustment soundness) now live as lint rules in
:mod:`repro.lint.rules_post` (``penny-coverage`` … ``penny-adjustment``)
on top of the shared analyzer engine.  This module keeps the historical
entry points alive for the pipeline, the fallback lattice, the fuzz
oracle, and every test that imports them:

- :func:`verify_compiled` runs exactly the five migrated rules and
  returns their diagnostics as strings, every message normalized to the
  ``kernel:block:index: message`` form.
- :func:`check` raises :class:`VerificationError` on any violation.
- ``_is_checkpoint_store`` / ``_is_checkpoint_addressing`` re-export the
  checkpoint-store classifiers (schemes and tests import them from
  here).

Newer post-compile rules (``ckpt-loop-overwrite``, ``ckpt-slot-alias``,
``ckpt-space-write``, ``restore-live-mismatch``) intentionally do NOT
run here: the fallback lattice uses ``verify_compiled`` as its
acceptance gate, and that contract is pinned to V1–V5.  Run
``penny lint --compiled`` or :func:`repro.lint.lint_compiled` for the
full rule set.
"""

from __future__ import annotations

from typing import List

from repro.ir.module import Kernel
from repro.lint.rules_post import (
    is_checkpoint_addressing as _is_checkpoint_addressing,
    is_checkpoint_store as _is_checkpoint_store,
)

#: the migrated V1–V5 obligations, in the historical reporting order
VERIFY_RULES = (
    "penny-restore",  # V2
    "penny-coverage",  # V1
    "penny-barrier",  # V3
    "penny-slice",  # V4
    "penny-adjustment",  # V5
)

__all__ = [
    "VERIFY_RULES",
    "VerificationError",
    "check",
    "verify_compiled",
]


class VerificationError(RuntimeError):
    """The compiled kernel violates a recovery-correctness obligation."""


def _policy_opted_out(kernel: Kernel) -> bool:
    """True when the kernel was compiled under a protection policy that
    legitimately produces no recovery metadata (``none`` /
    ``detection-only``): the V1–V5 obligations are vacuous then, and the
    fallback lattice must accept such kernels instead of rejecting them
    as "not compiled"."""
    meta = kernel.meta.get("protection_policy")
    if meta is None:
        return False
    from repro.policy import PolicyError, ProtectionPolicy

    try:
        return ProtectionPolicy.parse(meta).unprotected
    except PolicyError:
        return False


def verify_compiled(kernel: Kernel) -> List[str]:
    """Check every V1–V5 obligation; returns violations (empty = clean).

    Each violation is ``kernel:block:index: message``.
    """
    from repro.lint.engine import lint_compiled

    if kernel.meta.get("recovery_table") is None or not kernel.meta.get(
        "region_boundaries"
    ):
        if _policy_opted_out(kernel):
            return []  # none/detection-only: no metadata is correct
        return ["kernel carries no recovery metadata (not compiled?)"]
    report = lint_compiled(kernel, only=VERIFY_RULES)
    by_rule = {rid: [] for rid in VERIFY_RULES}
    for d in report.diagnostics:
        by_rule.setdefault(d.rule, []).append(d.plain())
    return [p for rid in VERIFY_RULES for p in by_rule[rid]]


def check(kernel: Kernel) -> None:
    """Raise :class:`VerificationError` on the first violation."""
    problems = verify_compiled(kernel)
    if problems:
        raise VerificationError(
            f"{len(problems)} violation(s): " + "; ".join(problems[:5])
        )
