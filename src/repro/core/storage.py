"""Automatic checkpoint storage assignment (§6.5).

Committed checkpoints live in shared or global memory (both ECC-protected
on GPUs).  Shared memory is fast but scarce: over-allocating it reduces the
number of resident thread blocks (occupancy) and can cost more than it
saves.  Penny therefore:

1. computes how much shared memory the kernel can consume *without*
   reducing its occupancy,
2. scores each checkpointed register by the total cost-model weight of its
   committed checkpoints (deep-loop checkpoints dominate), and
3. packs the highest-scoring registers into the occupancy-preserving shared
   budget, sending the rest to global memory.

Each register with committed checkpoints owns one slot per storage color
(two if storage alternation applies).  Layouts are coalesced: consecutive
threads hit consecutive 4-byte words.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.core.checkpoints import CheckpointPlan
from repro.core.coloring import ColoringResult
from repro.core.costmodel import CostModel
from repro.core.errors import ConfigError, StorageError
from repro.ir.types import Reg


class StorageKind(enum.Enum):
    SHARED = "shared"
    GLOBAL = "global"


@dataclass
class StorageBudget:
    """The per-SM resource limits the assignment reasons about (defaults are
    Fermi-class, matching the paper's Tesla C2050 target)."""

    shared_per_sm: int = 48 * 1024
    max_blocks_per_sm: int = 8
    max_threads_per_sm: int = 1536
    threads_per_block: int = 256
    kernel_shared_bytes: int = 0

    def occupancy_blocks(self, extra_shared_per_block: int = 0) -> int:
        """Resident blocks per SM given extra shared usage per block."""
        by_threads = self.max_threads_per_sm // max(1, self.threads_per_block)
        per_block = self.kernel_shared_bytes + extra_shared_per_block
        by_shared = (
            self.shared_per_sm // per_block if per_block > 0 else self.max_blocks_per_sm
        )
        return max(0, min(self.max_blocks_per_sm, by_threads, by_shared))

    def occupancy_preserving_shared(self) -> int:
        """Largest extra shared bytes per block that keeps occupancy at its
        current level."""
        current = self.occupancy_blocks(0)
        if current == 0:
            return 0
        lo, hi = 0, self.shared_per_sm
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.occupancy_blocks(mid) >= current:
                lo = mid
            else:
                hi = mid - 1
        return lo


@dataclass
class SlotAssignment:
    """One checkpoint slot: register + color mapped to a storage location.

    ``index`` is the slot number within its storage kind; codegen turns it
    into a byte offset using the coalesced layout."""

    reg_name: str
    color: int
    kind: StorageKind
    index: int


@dataclass
class StorageAssignment:
    """All slot placements for one kernel."""

    slots: Dict[Tuple[str, int], SlotAssignment] = field(default_factory=dict)
    shared_slots: int = 0
    global_slots: int = 0
    threads_per_block: int = 256
    total_threads: int = 256

    def slot(self, reg_name: str, color: int) -> SlotAssignment:
        return self.slots[(reg_name, color)]

    @property
    def shared_bytes_per_block(self) -> int:
        return self.shared_slots * self.threads_per_block * 4

    @property
    def global_bytes(self) -> int:
        return self.global_slots * self.total_threads * 4


def _slot_colors(
    reg: Reg, coloring: Optional[ColoringResult]
) -> List[int]:
    if coloring is not None and reg in coloring.colored_registers:
        return [0, 1]
    return [0]


def assign_storage(
    plan: CheckpointPlan,
    cfg: CFG,
    cost: CostModel,
    budget: StorageBudget,
    coloring: Optional[ColoringResult] = None,
    mode: str = "auto",
    total_threads: Optional[int] = None,
) -> StorageAssignment:
    """Assign every committed checkpoint's slots to shared/global memory.

    ``mode``: ``"auto"`` (occupancy-aware split, the paper's default),
    ``"shared"`` (everything in shared) or ``"global"`` (everything in
    global — the Bolt/Global configuration).
    """
    if mode not in ("auto", "shared", "global"):
        raise ConfigError(f"unknown storage mode {mode!r}", pass_name="storage")

    regs: Dict[Reg, int] = {}
    for cp in plan.committed():
        score = 0
        for label in cp.insertion_blocks(cfg):
            score += cost.block_cost(label)
        regs[cp.reg] = regs.get(cp.reg, 0) + score
    # Registers with dummy checkpoints but no committed plan checkpoints
    # still need their two slots.
    if coloring is not None:
        for adj in coloring.adjustments:
            regs.setdefault(adj.reg, 0)

    assignment = StorageAssignment(
        threads_per_block=budget.threads_per_block,
        total_threads=total_threads or budget.threads_per_block,
    )

    ordered = sorted(regs.items(), key=lambda kv: (-kv[1], kv[0].name))
    bytes_per_slot = budget.threads_per_block * 4
    shared_budget = (
        budget.occupancy_preserving_shared() if mode == "auto" else 0
    )

    for reg, _score in ordered:
        colors = _slot_colors(reg, coloring)
        want_shared = mode == "shared" or (
            mode == "auto"
            and (assignment.shared_slots + len(colors)) * bytes_per_slot
            <= shared_budget
        )
        for color in colors:
            if want_shared:
                slot = SlotAssignment(
                    reg.name, color, StorageKind.SHARED, assignment.shared_slots
                )
                assignment.shared_slots += 1
            else:
                slot = SlotAssignment(
                    reg.name, color, StorageKind.GLOBAL, assignment.global_slots
                )
                assignment.global_slots += 1
            assignment.slots[(reg.name, color)] = slot

    # Forced-shared layouts can exceed physical shared memory outright
    # (occupancy aside, the kernel would not even launch) — that is a
    # compile failure the fallback lattice degrades to global storage on.
    total_shared = (
        budget.kernel_shared_bytes + assignment.shared_bytes_per_block
    )
    if assignment.shared_slots and total_shared > budget.shared_per_sm:
        raise StorageError(
            f"checkpoint storage needs {total_shared} shared bytes per "
            f"block but the SM has {budget.shared_per_sm}",
            detail={
                "mode": mode,
                "shared_slots": assignment.shared_slots,
                "kernel_shared_bytes": budget.kernel_shared_bytes,
            },
        )
    return assignment
