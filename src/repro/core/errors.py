"""Typed compile-error hierarchy.

Every pass failure the pipeline can hit is represented by a distinct
:class:`CompileError` subclass instead of a bare ``RuntimeError``.  Each
carries three things the fallback lattice and the fuzzing triage need:

- ``pass_name`` — which pass failed (``renaming``, ``coloring``,
  ``pruning``, ``reconcile``, ``recovery_meta``, ``storage``, ``codegen``,
  ``verify``, ``clone``, ``validate``);
- ``scheme`` — the overwrite-prevention scheme in effect (``rr``/``sa``/
  ``none``), when the failure is scheme-dependent;
- ``kernel_ptx`` — a textual snapshot of the kernel at the failure point,
  so a fuzz finding is reproducible from the error object alone.

:class:`ConfigError` additionally subclasses :class:`ValueError` because
the misconfiguration sites it replaced raised ``ValueError`` and callers
legitimately catch it that way.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _snapshot(kernel) -> Optional[str]:
    """Best-effort textual snapshot of a kernel (never raises)."""
    if kernel is None:
        return None
    try:
        from repro.ir.printer import print_kernel

        return print_kernel(kernel)
    except Exception:
        return None


class CompileError(RuntimeError):
    """Base class of every typed compilation failure."""

    #: subclass default when the raise site does not pass ``pass_name``
    default_pass = "pipeline"

    def __init__(
        self,
        message: str,
        *,
        pass_name: Optional[str] = None,
        scheme: Optional[str] = None,
        kernel=None,
        detail: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.message = message
        self.pass_name = pass_name or self.default_pass
        self.scheme = scheme
        self.kernel_name = getattr(kernel, "name", None)
        self.kernel_ptx = _snapshot(kernel)
        self.detail: Dict[str, object] = dict(detail or {})

    def attach_kernel(self, kernel) -> None:
        """Fill in the kernel snapshot if the raise site had no kernel in
        scope (the pipeline driver calls this so every error that escapes
        ``compile()`` is reproducible from the error object alone)."""
        if self.kernel_name is None:
            self.kernel_name = getattr(kernel, "name", None)
        if self.kernel_ptx is None:
            self.kernel_ptx = _snapshot(kernel)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the fuzz corpus stores this)."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "pass": self.pass_name,
            "scheme": self.scheme,
            "kernel": self.kernel_name,
            "kernel_ptx": self.kernel_ptx,
            "detail": {k: str(v) for k, v in self.detail.items()},
        }

    def __str__(self) -> str:
        scheme = f", scheme={self.scheme}" if self.scheme else ""
        return f"[{self.pass_name}{scheme}] {self.message}"


class ConfigError(CompileError, ValueError):
    """Invalid compiler configuration (unknown mode names etc.)."""

    default_pass = "config"


class InvalidKernelError(CompileError, ValueError):
    """The input kernel failed structural validation."""

    default_pass = "validate"


class CloneError(CompileError):
    """``clone_kernel`` was handed an already-compiled kernel whose
    metadata (recovery table, storage map) a textual round-trip would
    silently drop."""

    default_pass = "clone"


class LintError(CompileError):
    """The pre-compile analyzer found error-severity diagnostics.

    Raised by the pipeline when ``PennyConfig.lint`` is on: compiling a
    kernel with an uninitialized read or a divergent barrier would bake
    undefined behavior into the protected binary, so the input is
    rejected up front.  ``diagnostics`` holds the offending
    :class:`repro.lint.Diagnostic` objects.
    """

    default_pass = "lint"

    def __init__(self, message: str, diagnostics=(), **kwargs):
        super().__init__(message, **kwargs)
        self.diagnostics = list(diagnostics)
        self.detail.setdefault(
            "diagnostics", [str(d) for d in self.diagnostics]
        )


class RenamingError(CompileError):
    """Register renaming did not converge within its round budget."""

    default_pass = "renaming"


class ColoringError(CompileError):
    """Storage-alternation coloring produced an inconsistent result."""

    default_pass = "coloring"


class PruningError(CompileError):
    """Checkpoint pruning violated one of its own invariants."""

    default_pass = "pruning"


class ReconcileError(CompileError):
    """Pruning/coloring reconciliation diverged."""

    default_pass = "reconcile"


class RecoveryMetaError(CompileError):
    """Recovery-table construction failed."""

    default_pass = "recovery_meta"


class StorageError(CompileError):
    """Checkpoint storage assignment produced an unusable layout."""

    default_pass = "storage"


class CodegenError(CompileError):
    """Checkpoint lowering / code generation failed."""

    default_pass = "codegen"


class FallbackExhaustedError(CompileError):
    """Every rung of the fallback lattice failed.

    ``causes`` holds ``(rung_name, exception)`` pairs in attempt order;
    the terminal cause's fingerprint is what triage buckets on.
    """

    default_pass = "fallback"

    def __init__(self, message: str, causes, **kwargs):
        super().__init__(message, **kwargs)
        self.causes: List = list(causes)

    @property
    def terminal_cause(self):
        return self.causes[-1][1] if self.causes else None
