"""Region-boundary live-ins and last update points (LUPs).

After region formation every boundary is a block entry, so the live-in
registers of a region are the liveness live-ins of its boundary block.
The LUPs of a live-in register at a boundary are exactly the definition
sites of that register that *reach* the boundary (multiple on divergent
paths — Figure 2 of the paper), which is a reaching-definitions query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.reachingdefs import DefSite, ReachingDefs
from repro.core.regions import RegionInfo
from repro.ir.module import Kernel
from repro.ir.types import Reg


@dataclass(frozen=True)
class LupInfo:
    """A last-update point: the def site whose value reaches boundaries."""

    site: DefSite

    @property
    def label(self) -> str:
        return self.site.label

    @property
    def index(self) -> int:
        return self.site.index

    @property
    def reg(self) -> Reg:
        return self.site.reg


@dataclass
class BoundaryInfo:
    """Live-in registers of one region boundary and their LUPs."""

    label: str
    live_ins: Set[Reg] = field(default_factory=set)
    #: reg -> the LUP def sites reaching this boundary
    lups: Dict[Reg, Set[DefSite]] = field(default_factory=dict)


@dataclass
class LiveinAnalysis:
    """Whole-kernel live-in / LUP relation.

    ``edges`` is the bipartite LUP ↔ boundary relation per register used by
    bimodal checkpoint placement: for register ``r``, an edge (lup, boundary)
    means the value defined at ``lup`` is a live-in of ``boundary``.
    """

    boundaries: Dict[str, BoundaryInfo] = field(default_factory=dict)
    edges: Dict[Reg, Set[Tuple[DefSite, str]]] = field(default_factory=dict)

    def checkpointed_registers(self) -> Set[Reg]:
        """Registers that need checkpointing somewhere (are live-in to at
        least one boundary and defined somewhere)."""
        return set(self.edges)

    def boundaries_using(self, reg: Reg) -> Set[str]:
        return {b for (_, b) in self.edges.get(reg, set())}

    def lups_of(self, reg: Reg) -> Set[DefSite]:
        return {lup for (lup, _) in self.edges.get(reg, set())}


def analyze_liveins(
    kernel: Kernel,
    regions: RegionInfo,
    cfg: CFG = None,
    liveness: Liveness = None,
    rdefs: ReachingDefs = None,
) -> LiveinAnalysis:
    """Compute live-ins and LUPs for every region boundary."""
    cfg = cfg or CFG(kernel)
    liveness = liveness or Liveness(cfg)
    rdefs = rdefs or ReachingDefs(cfg)

    analysis = LiveinAnalysis()
    # Deterministic discovery order — boundaries in block order, registers
    # by name — so every consumer that iterates the result dicts (the
    # checkpoint planners in particular) is hash-seed invariant.
    block_order = {b.label: i for i, b in enumerate(kernel.blocks)}
    for label in sorted(
        regions.boundaries, key=lambda l: block_order.get(l, len(block_order))
    ):
        info = BoundaryInfo(label=label)
        info.live_ins = set(liveness.live_in.get(label, set()))
        for reg in sorted(info.live_ins, key=lambda r: r.name):
            sites = {
                s
                for s in rdefs.reaching_at(label, 0, reg)
                if not s.is_entry
            }
            # A use before the point of any definition is an uninitialized
            # read; entry pseudo-defs are dropped because nothing can (or
            # needs to) checkpoint them.
            if not sites:
                continue
            info.lups[reg] = sites
            for site in sites:
                analysis.edges.setdefault(reg, set()).add((site, label))
        analysis.boundaries[label] = info
    kernel.meta["livein_analysis"] = analysis
    return analysis
