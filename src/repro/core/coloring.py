"""2-slot checkpoint storage alternation (§6.3, Figures 4(b) and 5).

Each register with overwrite hazards gets *two* checkpoint slots.  The
paper assigns colors per region and patches conflicts with dummy
checkpoints in adjustment blocks (Figure 5).  We implement the same
two-slot idea with a construction that is uniform and locally provable —
the **edge snapshot** scheme:

- Every planned checkpoint of a hazardous register writes slot **K0**.
  Because the register's last definition is always followed by one of its
  checkpoints before the next boundary (plan coverage), K0 always holds the
  register's *current* value at region ends.
- On every edge into a boundary where the register is live-in, a dummy
  checkpoint in an *adjustment block* snapshots the register into slot
  **K1** — unless no definition of the register can reach that edge within
  the current region (then K1 provably still holds the right value).
- Recovery always restores the register from **K1**: at any point inside a
  region, K1 was last written when the region was entered, so it holds
  exactly the entry value.  In-region checkpoints touch only K0 and can
  never clobber it.

The loop case degenerates to exactly the paper's behaviour (one body
checkpoint + one back-edge dummy per iteration); straight-line multi-region
code pays a dummy per live-in boundary crossing that the paper's minimal
coloring sometimes avoids — an overhead-only deviation recorded in
DESIGN.md.

Safety of the dummy itself: it *reads* the register (detection point) and
*writes* K1, which mid-region restores rely on.  Adjustment blocks are
therefore **mini-regions** in the recovery table: an error detected inside
one restores each dummy register from K0 (fresh, see above) and re-executes
just the adjustment block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import CFG
from repro.core.errors import ColoringError
from repro.core.hazards import CpInstance
from repro.core.liveins import LiveinAnalysis
from repro.core.regions import RegionInfo
from repro.ir.types import Reg

#: Slot written by planned (in-region) checkpoints of hazardous registers.
CURRENT_SLOT = 0
#: Slot holding the region-entry snapshot; the one recovery restores from.
SNAPSHOT_SLOT = 1


@dataclass
class Adjustment:
    """A dummy checkpoint of ``reg`` in a new block on edge ``pred ->
    succ``: stores the register into ``color`` (= K1); on detection inside
    the adjustment block the register is restored from ``restore_color``
    (= K0, the register's current value)."""

    pred: str
    succ: str
    reg: Reg
    color: int
    restore_color: int


@dataclass
class ColoringResult:
    """Slot decisions for all hazardous registers."""

    instance_colors: Dict[Tuple[Tuple, str], int] = field(default_factory=dict)
    restore_colors: Dict[Tuple[str, str], int] = field(default_factory=dict)
    adjustments: List[Adjustment] = field(default_factory=list)
    colored_registers: Set[Reg] = field(default_factory=set)

    def color_of(self, cp_key: Tuple, block: str) -> int:
        return self.instance_colors.get((cp_key, block), 0)

    def restore_color(self, boundary: str, reg: Reg) -> int:
        return self.restore_colors.get((boundary, reg.name), 0)

    def drop_register(self, reg_name: str) -> None:
        """Remove a register's snapshot machinery (used when pruning makes
        all its restores slice-based)."""
        self.adjustments = [
            a for a in self.adjustments if a.reg.name != reg_name
        ]
        self.restore_colors = {
            k: v for k, v in self.restore_colors.items() if k[1] != reg_name
        }
        self.colored_registers = {
            r for r in self.colored_registers if r.name != reg_name
        }


def color_checkpoints(
    cfg: CFG,
    regions: RegionInfo,
    liveins: LiveinAnalysis,
    instances: List[CpInstance],
    hazardous: Set[Reg],
) -> ColoringResult:
    """Apply the edge-snapshot scheme to every hazardous register."""
    result = ColoringResult()
    result.colored_registers = set(hazardous)

    # Where is each hazardous register defined?  (For the dummy-elision
    # check: an edge whose predecessor's region cannot contain a definition
    # of the register needs no dummy.)
    def_regions: Dict[str, Set[str]] = {r.name: set() for r in hazardous}
    for blk in cfg.blocks:
        for inst in blk.instructions:
            for reg in inst.defs():
                if reg in hazardous:
                    def_regions[reg.name].update(
                        regions.region_entry_candidates(blk.label)
                    )

    for reg in sorted(hazardous, key=lambda r: r.name):
        # Planned checkpoints keep the default color (K0) — nothing to
        # record in instance_colors, since color_of defaults to 0.
        for boundary, binfo in liveins.boundaries.items():
            if reg not in binfo.live_ins or reg not in binfo.lups:
                continue
            result.restore_colors[(boundary, reg.name)] = SNAPSHOT_SLOT
            for pred in cfg.predecessors(boundary):
                pred_regions = regions.region_entry_candidates(pred)
                if not pred_regions & def_regions[reg.name]:
                    # No definition of reg can be live in the predecessor's
                    # region: K1 already holds the value reg has at the
                    # boundary, so the snapshot is elidable.
                    continue
                result.adjustments.append(
                    Adjustment(
                        pred=pred,
                        succ=boundary,
                        reg=reg,
                        color=SNAPSHOT_SLOT,
                        restore_color=CURRENT_SLOT,
                    )
                )

    # Integrity: every adjustment must sit on a real CFG edge (codegen
    # rewires exactly these edges) and every restore color must belong to
    # a colored register.  A violation here is a coloring bug, and typing
    # it lets the fallback lattice degrade instead of crashing later.
    for adj in result.adjustments:
        if adj.succ not in cfg.successors(adj.pred):
            raise ColoringError(
                f"adjustment for {adj.reg.name} targets nonexistent edge "
                f"{adj.pred} -> {adj.succ}",
                detail={"pred": adj.pred, "succ": adj.succ},
            )
    colored_names = {r.name for r in result.colored_registers}
    for (boundary, reg_name) in result.restore_colors:
        if reg_name not in colored_names:
            raise ColoringError(
                f"restore color recorded for uncolored register {reg_name} "
                f"at {boundary}",
                detail={"boundary": boundary, "register": reg_name},
            )
    return result


