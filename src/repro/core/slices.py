"""Recovery-slice expressions.

A pruned checkpoint's value is recomputed at recovery time by a *recovery
slice* (§6.4): a small expression tree over things that are guaranteed
error-free at recovery — immediates, special registers, re-executable loads
(read-only or provably un-overwritten memory), committed checkpoint slots,
and ALU combinations thereof.  Control-flow joins are linearized with
selects over branch predicates, which are themselves recomputed by slices.

The recovery runtime (:mod:`repro.gpusim.recovery`) evaluates these trees
per thread against ECC-protected memory state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.ir.types import DType, MemSpace


@dataclass(frozen=True)
class SImm:
    """A literal value."""

    value: Union[int, float]
    dtype: DType = DType.U32


@dataclass(frozen=True)
class SSpecial:
    """A special register (%tid.x, ...) — hardware-provided, error-free."""

    name: str


@dataclass(frozen=True)
class SSymRef:
    """The base address of a named buffer (kernel param or shared array)."""

    name: str


@dataclass(frozen=True)
class SSlot:
    """The committed checkpoint slot of a register: (register name, color).
    The runtime resolves it through the kernel's checkpoint storage map."""

    reg_name: str
    color: int


@dataclass(frozen=True)
class SLoad:
    """Re-execution of a load at recovery time."""

    space: MemSpace
    dtype: DType
    base: "SliceExpr"
    offset: int = 0


@dataclass(frozen=True)
class SOp:
    """An ALU operation over sub-expressions."""

    op: str
    dtype: DType
    srcs: Tuple["SliceExpr", ...]


@dataclass(frozen=True)
class SSetp:
    """A comparison producing 0/1."""

    cmp: str
    dtype: DType
    a: "SliceExpr"
    b: "SliceExpr"


@dataclass(frozen=True)
class SSelp:
    """pred ? a : b — linearized control-flow join."""

    dtype: DType
    a: "SliceExpr"
    b: "SliceExpr"
    pred: "SliceExpr"


SliceExpr = Union[SImm, SSpecial, SSymRef, SSlot, SLoad, SOp, SSetp, SSelp]


def slice_size(expr: SliceExpr) -> int:
    """Number of nodes — a proxy for the recovery slice's instruction count."""
    if isinstance(expr, (SImm, SSpecial, SSymRef, SSlot)):
        return 1
    if isinstance(expr, SLoad):
        return 1 + slice_size(expr.base)
    if isinstance(expr, SOp):
        return 1 + sum(slice_size(s) for s in expr.srcs)
    if isinstance(expr, SSetp):
        return 1 + slice_size(expr.a) + slice_size(expr.b)
    if isinstance(expr, SSelp):
        return (
            1
            + slice_size(expr.a)
            + slice_size(expr.b)
            + slice_size(expr.pred)
        )
    raise TypeError(f"not a slice expression: {expr!r}")


def slots_used(expr: SliceExpr) -> List[SSlot]:
    """All committed-checkpoint slots a slice reads."""
    out: List[SSlot] = []

    def walk(e: SliceExpr) -> None:
        if isinstance(e, SSlot):
            out.append(e)
        elif isinstance(e, SLoad):
            walk(e.base)
        elif isinstance(e, SOp):
            for s in e.srcs:
                walk(s)
        elif isinstance(e, SSetp):
            walk(e.a)
            walk(e.b)
        elif isinstance(e, SSelp):
            walk(e.a)
            walk(e.b)
            walk(e.pred)

    walk(expr)
    return out
