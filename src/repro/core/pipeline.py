"""The Penny compiler driver: §5's phase ordering behind one call.

:func:`PennyCompiler.compile` takes an input kernel (virtual registers,
no checkpoints) and produces a protected kernel plus a
:class:`CompileResult` with everything the evaluation needs: checkpoint
statistics, estimated costs, register demand, shared-memory consumption,
and the recovery table the simulator's runtime consumes.

Configuration knobs mirror the paper's evaluated variants:

===============  ==========================================================
``placement``    ``"eager"`` (Bolt) or ``"bimodal"`` (§6.2)
``pruning``      ``"none"``, ``"basic"`` (Bolt's random search), or
                 ``"optimal"`` (§6.4)
``storage_mode`` ``"shared"``, ``"global"``, or ``"auto"`` (§6.5)
``overwrite``    ``"rr"`` (renaming first), ``"sa"`` (2-coloring only),
                 ``"auto"`` (compile both, keep the cheaper — §6.3), or
                 ``"none"`` (no protection; Fig. 11's last bar)
``low_opts``     §6.6 address-computation LICM/CSE on checkpoint stores
===============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Set

import repro.obs as obs
from repro.analysis.alias import AliasAnalysis
from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.loops import LoopInfo
from repro.analysis.postdom import ControlDependence
from repro.analysis.reachingdefs import ReachingDefs
from repro.core.bimodal import bimodal_plan
from repro.core.checkpoints import (
    CheckpointKind,
    CheckpointPlan,
    PlannedCheckpoint,
    PruneState,
    eager_plan,
)
from repro.core.codegen import CodegenResult, generate
from repro.core.coloring import ColoringResult, color_checkpoints
from repro.core.costmodel import CostModel
from repro.core.errors import (
    CloneError,
    CompileError,
    ConfigError,
    FallbackExhaustedError,
    InvalidKernelError,
    ReconcileError,
    RenamingError,
)
from repro.core.hazards import detect_hazards, materialize_instances
from repro.core.liveins import LiveinAnalysis, analyze_liveins
from repro.core.pddg import PddgValidator
from repro.core.pruning import (
    PruneResult,
    prune_basic,
    prune_none,
    prune_optimal,
)
from repro.core.recovery_meta import (
    RecoveryTable,
    adjustment_recoveries,
    build_recovery_table,
)
from repro.core.regions import RegionInfo, form_regions
from repro.core.renaming import apply_renaming
from repro.core.storage import StorageBudget, assign_storage
from repro.ir.module import Kernel
from repro.ir.parser import parse_kernel
from repro.ir.printer import print_kernel
from repro.ir.types import Reg
from repro.regalloc import count_registers


@dataclass
class LaunchConfig:
    """The launch geometry the compiler needs for storage layout."""

    threads_per_block: int = 256
    num_blocks: int = 4

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.num_blocks


@dataclass
class PennyConfig:
    """Compiler configuration; see module docstring for the knobs."""

    name: str = "penny"
    placement: str = "bimodal"
    pruning: str = "optimal"
    storage_mode: str = "auto"
    overwrite: str = "auto"
    low_opts: bool = True
    cost_base: int = 64
    cover_base: int = 2
    basic_prune_attempts: int = 64
    basic_prune_seed: int = 12345
    max_rename_rounds: int = 8
    max_replan_rounds: int = 8
    #: model restrict-qualified pointers (True) or faithful PTX aliasing
    #: where distinct pointer params may alias (False, the default)
    param_noalias: bool = False
    #: run the static recovery-metadata verifier (repro.core.verify) on the
    #: compiled kernel and raise on violations; off by default because the
    #: evaluation compiles hundreds of kernels, on in the test suite
    verify: bool = False
    #: run the pre-compile analyzer (repro.lint) on the input kernel and
    #: promote error-severity diagnostics to a typed
    #: :class:`repro.core.errors.LintError` before any pass runs
    lint: bool = False
    #: lint rule ids to disable (applies to ``lint`` above and to every
    #: analyzer run that receives this config)
    lint_disable: tuple = ()
    #: per-rule severity overrides, rule id -> "error"/"warning"/"note"
    lint_severity: Dict[str, str] = field(default_factory=dict)
    #: selective-protection policy (:class:`repro.policy.ProtectionPolicy`
    #: string form): ``full`` | ``address-only`` |
    #: ``top-k-vulnerable[:K]`` | ``detection-only`` | ``none``, plus
    #: optional ``;label=kind`` per-region overrides and ``;no-addr-guard``
    policy: str = "full"

    def __post_init__(self):
        # Normalize the overwrite knob to the typed Scheme enum (accepting
        # historical strings and aliases).  Imported lazily: schemes.py
        # imports PennyConfig from this module at load time.
        from repro.core.schemes import Scheme
        from repro.policy import PolicyError, ProtectionPolicy

        self.overwrite = Scheme.parse(self.overwrite)
        try:
            self.policy = str(ProtectionPolicy.parse(self.policy))
        except PolicyError as exc:
            raise ConfigError(str(exc), pass_name="config") from None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serializable form: field-declaration key order,
        enums as their string values, tuples as lists.  The inverse of
        :meth:`from_dict` (round-trip preserves equality), and the
        configuration half of the serving layer's cache key."""
        from dataclasses import fields as _fields

        from repro.core.schemes import Scheme

        out: Dict[str, Any] = {}
        for f in _fields(self):
            value = getattr(self, f.name)
            if f.name == "overwrite":
                value = Scheme.parse(value).value
            elif f.name == "policy":
                # callers may assign a raw string after construction;
                # canonicalize so equal policies always serialize equal
                from repro.policy import ProtectionPolicy

                value = str(ProtectionPolicy.parse(value))
            elif f.name == "lint_disable":
                value = [str(v) for v in value]
            elif f.name == "lint_severity":
                value = {k: str(v) for k, v in sorted(value.items())}
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PennyConfig":
        """Rebuild a config from :meth:`to_dict` output.  Unknown keys
        raise :class:`repro.core.errors.ConfigError` — a forward-version
        dict must not silently compile under different knobs."""
        from dataclasses import fields as _fields

        known = {f.name for f in _fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown PennyConfig field(s) {unknown}",
                pass_name="config",
            )
        kwargs = dict(payload)
        if "lint_disable" in kwargs:
            kwargs["lint_disable"] = tuple(kwargs["lint_disable"])
        if "lint_severity" in kwargs:
            kwargs["lint_severity"] = dict(kwargs["lint_severity"])
        return cls(**kwargs)


@dataclass
class CompileResult:
    """Everything produced by one compilation.

    Implements the :class:`repro.obs.Reportable` protocol: ``to_dict``
    is the complete JSONL-sink form, ``summary`` the headline numbers.
    """

    kernel: Kernel
    config: PennyConfig
    launch: LaunchConfig
    plan: CheckpointPlan
    regions: RegionInfo
    recovery: RecoveryTable
    coloring: Optional[ColoringResult]
    codegen: CodegenResult
    stats: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.schemes import Scheme

        return {
            "kind": "compile_result",
            "kernel": self.kernel.name,
            "scheme": self.config.name,
            "placement": self.config.placement,
            "pruning": self.config.pruning,
            "storage_mode": self.config.storage_mode,
            "overwrite": Scheme.parse(self.config.overwrite).value,
            "policy": self.config.policy,
            "launch": {
                "threads_per_block": self.launch.threads_per_block,
                "num_blocks": self.launch.num_blocks,
            },
            "boundaries": sorted(self.regions.boundaries),
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
        }

    def summary(self) -> Dict[str, Any]:
        keys = (
            "checkpoints_total",
            "checkpoints_committed",
            "checkpoints_pruned",
            "num_boundaries",
            "estimated_cost",
            "registers",
            "overwrite_scheme",
        )
        out: Dict[str, Any] = {"kernel": self.kernel.name,
                               "scheme": self.config.name}
        out.update({k: self.stats[k] for k in keys if k in self.stats})
        return out


#: metadata keys that mark a kernel as already compiled — a textual
#: round-trip would silently drop them (checkpoint stores survive the
#: printer, the recovery machinery does not).
_COMPILED_META_KEYS = (
    "recovery_table",
    "region_boundaries",
    "storage_assignment",
    "protected",
    "protection_policy",
    "protected_registers",
)


def clone_kernel(kernel: Kernel) -> Kernel:
    """Deep-copy a pre-compilation kernel via its textual form.

    Compiled kernels carry recovery metadata that the printer cannot
    represent; cloning one would produce a kernel that *looks* protected
    (checkpoint stores present) but silently recovers nothing.  Detect
    that and raise :class:`repro.core.errors.CloneError` instead.
    """
    present = [k for k in _COMPILED_META_KEYS if k in kernel.meta]
    if present:
        raise CloneError(
            f"cannot clone compiled kernel {kernel.name!r} via its textual "
            f"form: metadata {present} would be silently dropped",
            kernel=kernel,
            detail={"meta_keys": present},
        )
    return parse_kernel(print_kernel(kernel))


class PennyCompiler:
    """Runs the full §5 pipeline over one kernel.

    ``strict=True`` (the default) preserves the historical contract: any
    pass failure raises a typed :class:`repro.core.errors.CompileError`.
    ``strict=False`` enables the **fallback lattice**: when the configured
    scheme fails, the compiler degrades — renaming non-convergence falls
    back to storage alternation (SA), an SA/coloring/pruning failure falls
    back to eager placement with no pruning, and the terminal rung
    checkpoints everything at region boundaries into global storage.
    Every fallback result must pass :func:`repro.core.verify.verify_compiled`
    before it is returned; the degradation path is recorded in
    ``CompileResult.stats["fallback_path"]``.
    """

    def __init__(
        self,
        config: Optional[PennyConfig] = None,
        budget: Optional[StorageBudget] = None,
        strict: bool = True,
        cache=None,
    ):
        self.config = config or PennyConfig()
        self.budget = budget or StorageBudget()
        self.strict = strict
        #: an explicit :class:`repro.serve.CompileCache`; when ``None``
        #: the context-installed cache (``repro.serve.active_cache``)
        #: applies, so ``with CompileCache(...):`` accelerates existing
        #: callers without threading a parameter through them
        self.cache = cache

    def compile(
        self,
        kernel: Kernel,
        launch: Optional[LaunchConfig] = None,
        copy: bool = True,
    ) -> CompileResult:
        launch = launch or LaunchConfig()
        cache = self.cache
        if cache is None:
            from repro.serve.cache import active_cache

            cache = active_cache()
        # copy=False callers rely on the input kernel being rewritten in
        # place; serving a cached result would skip that side effect.
        if cache is None or not copy:
            return self._compile_uncached(kernel, launch, copy)
        from repro.serve.key import compile_cache_key

        key = compile_cache_key(
            kernel,
            self.config,
            launch=launch,
            budget=self.budget,
            strict=self.strict,
        )
        hit = cache.get(key)
        if hit is not None:
            return hit
        result = self._compile_uncached(kernel, launch, copy)
        cache.put(key, result)
        return result

    def _compile_uncached(
        self,
        kernel: Kernel,
        launch: LaunchConfig,
        copy: bool,
    ) -> CompileResult:
        from repro.core.schemes import Scheme

        with obs.span(
            "compile",
            kernel=kernel.name,
            scheme=self.config.name,
            overwrite=Scheme.parse(self.config.overwrite).value,
            strict=self.strict,
        ):
            try:
                kernel.validate()
            except ValueError as exc:
                raise InvalidKernelError(
                    str(exc), kernel=kernel
                ) from exc
            if copy:
                with obs.span("pass.clone"):
                    kernel = clone_kernel(kernel)

            if self.config.lint:
                self._lint_input(kernel)

            try:
                if self.strict:
                    result = self._dispatch(kernel, launch, self.config)
                else:
                    result = self._compile_with_fallback(kernel, launch)
            except CompileError as exc:
                exc.attach_kernel(kernel)
                raise
            self._count_result(result)
            return result

    def _lint_input(self, kernel: Kernel) -> None:
        """Run the pre-compile analyzer; promote error-severity findings
        to a typed :class:`LintError`.  Degrading cannot fix a broken
        input, so this gate applies in strict and fallback modes alike."""
        from repro.core.errors import LintError
        from repro.lint import lint_kernel

        with obs.span("pass.lint", kernel=kernel.name):
            report = lint_kernel(kernel, config=self.config)
        errors = report.errors
        if errors:
            raise LintError(
                f"{len(errors)} lint error(s): "
                + "; ".join(str(d) for d in errors[:5]),
                diagnostics=errors,
                kernel=kernel,
            )

    @staticmethod
    def _count_result(result: CompileResult) -> None:
        """Publish one compilation's headline counters (no-op unobserved)."""
        if obs.current_tracer() is None:
            return
        obs.inc("compile.kernels")
        obs.inc("compile.regions_cut", len(result.regions.boundaries))
        obs.inc("compile.checkpoints_placed", len(result.plan.checkpoints))
        obs.inc("compile.checkpoints_pruned", len(result.plan.pruned()))
        obs.inc("compile.checkpoints_committed", len(result.plan.committed()))
        obs.inc(
            "compile.adjustment_blocks",
            len(result.codegen.adjustment_labels),
        )
        obs.inc(
            "compile.emitted_checkpoints", result.codegen.emitted_checkpoints
        )
        obs.inc(
            "compile.address_insts", result.codegen.emitted_address_insts
        )
        obs.inc("compile.forced_commits", result.recovery.forced_commits)
        obs.gauge("compile.registers", result.stats.get("registers", 0.0))

    def _dispatch(
        self, kernel: Kernel, launch: LaunchConfig, config: PennyConfig
    ) -> CompileResult:
        from repro.policy import ProtectionPolicy

        policy = ProtectionPolicy.parse(config.policy)
        if policy.unprotected:
            return self._compile_unprotected(kernel, launch, policy)
        if config.overwrite == "auto":
            return self._compile_auto(kernel, launch)
        return self._compile_one(kernel, launch, config.overwrite)

    def _compile_unprotected(
        self, kernel: Kernel, launch: LaunchConfig, policy
    ) -> CompileResult:
        """``none`` / ``detection-only`` (with no protecting overrides):
        no regions, no checkpoints, no recovery metadata.  The kernel
        runs bare (the SDC baseline) or with the detection code on every
        register but nothing to recover from (every detection is a
        ``no_runtime`` DUE)."""
        from repro.policy import KIND_NONE

        with obs.span("pass.policy", policy=str(policy)):
            kernel.meta["protection_policy"] = str(policy)
            if policy.kind == KIND_NONE:
                kernel.meta["protected_registers"] = frozenset()
            # detection-only: no "protected_registers" key = all protected

        if self.config.verify:
            from repro.core.verify import check as verify_check

            with obs.span("pass.verify"):
                verify_check(kernel)

        result = CompileResult(
            kernel=kernel,
            config=self.config,
            launch=launch,
            plan=CheckpointPlan(),
            regions=RegionInfo(boundaries=set()),
            recovery=RecoveryTable(),
            coloring=None,
            codegen=CodegenResult(),
            stats={},
        )
        registers = float(count_registers(kernel))
        result.stats.update(
            {
                "overwrite_scheme": "none",
                "estimated_cost": 0.0,
                "checkpoints_total": 0.0,
                "checkpoints_committed": 0.0,
                "checkpoints_pruned": 0.0,
                "hazardous_registers": 0.0,
                "registers": registers,
                "shared_slots": 0.0,
                "global_slots": 0.0,
                "shared_ckpt_bytes": 0.0,
                "emitted_checkpoints": 0.0,
                "address_insts": 0.0,
                "forced_commits": 0.0,
                "num_boundaries": 0.0,
                "protection_policy": str(policy),
                "protected_registers": (
                    0.0 if policy.kind == KIND_NONE else registers
                ),
            }
        )
        return result

    # -- the fallback lattice (strict=False) -----------------------------------

    def fallback_lattice(self):
        """The degradation ladder: ``(rung_name, config)`` pairs, most
        capable first.  ``overwrite="none"`` configurations never gain
        protection by degrading (the rungs keep ``none``)."""
        from repro.core.schemes import Scheme

        cfg = self.config
        sa = Scheme.NONE if cfg.overwrite == Scheme.NONE else Scheme.SA
        rungs = [
            ("as-configured", cfg),
            ("sa", replace(cfg, overwrite=sa)),
            (
                "eager-noprune",
                replace(cfg, overwrite=sa, placement="eager", pruning="none"),
            ),
            (
                "boundary-global",
                replace(
                    cfg,
                    overwrite=sa,
                    placement="eager",
                    pruning="none",
                    storage_mode="global",
                    low_opts=False,
                ),
            ),
        ]
        seen = []
        out = []
        for name, rung_cfg in rungs:
            if rung_cfg in seen:
                continue
            seen.append(rung_cfg)
            out.append((name, rung_cfg))
        return out

    def _compile_with_fallback(
        self, kernel: Kernel, launch: LaunchConfig
    ) -> CompileResult:
        from repro.core.verify import VerificationError, verify_compiled

        lattice = self.fallback_lattice()
        causes = []
        path = []
        for level, (rung_name, rung_cfg) in enumerate(lattice):
            path.append(rung_name)
            candidate = clone_kernel(kernel)
            rung = PennyCompiler(rung_cfg, self.budget, strict=True)
            try:
                with obs.span("fallback.rung", rung=rung_name, level=level):
                    result = rung._dispatch(candidate, launch, rung_cfg)
                    with obs.span("pass.verify", rung=rung_name):
                        problems = verify_compiled(result.kernel)
                    if problems:
                        raise VerificationError(
                            f"{len(problems)} violation(s): "
                            + "; ".join(problems[:5])
                        )
            except (KeyboardInterrupt, SystemExit, MemoryError):
                raise
            except Exception as exc:  # degrade, do not die
                causes.append((rung_name, exc))
                obs.inc("compile.fallback_rung_failures")
                obs.event(
                    "fallback.degrade",
                    rung=rung_name,
                    error=type(exc).__name__,
                )
                continue
            result.stats["fallback_level"] = float(level)
            result.stats["fallback_path"] = "->".join(path)
            result.stats["degraded"] = float(level > 0)
            if level > 0:
                obs.inc("compile.degraded")
            if causes:
                result.stats["fallback_errors"] = "; ".join(
                    f"{name}: {type(e).__name__}" for name, e in causes
                )
            result.stats["verified"] = 1.0
            return result
        raise FallbackExhaustedError(
            "every fallback rung failed: "
            + "; ".join(
                f"{name}: {type(e).__name__}: {e}" for name, e in causes
            ),
            causes,
            kernel=kernel,
        )

    # -- auto selection of the overwrite-prevention scheme (§6.3) ------------

    def _compile_auto(
        self, kernel: Kernel, launch: LaunchConfig
    ) -> CompileResult:
        from repro.core.schemes import Scheme

        results = []
        for scheme in (Scheme.RR, Scheme.SA):
            candidate = clone_kernel(kernel)
            with obs.span("compile.candidate", overwrite=scheme.value):
                results.append(self._compile_one(candidate, launch, scheme))
        best = min(results, key=lambda r: r.stats["estimated_cost"])
        best.stats["auto_selected"] = best.stats["overwrite_scheme"]
        obs.event("compile.auto_selected", overwrite=best.stats["auto_selected"])
        return best

    # -- single-scheme pipeline ------------------------------------------------

    def _compile_one(
        self, kernel: Kernel, launch: LaunchConfig, overwrite: str
    ) -> CompileResult:
        from repro.core.schemes import Scheme
        from repro.policy import ProtectionPolicy

        policy = ProtectionPolicy.parse(self.config.policy)
        overwrite = Scheme.parse(overwrite)
        with obs.span("pass.regions"):
            cfg = CFG(kernel)
            aa = AliasAnalysis(cfg, param_noalias=self.config.param_noalias)
            regions = form_regions(kernel, aa)

        # Renaming loop: hazards fixed by renaming change live-ins and LUPs,
        # so the plan is rebuilt until renaming converges.
        rename_rounds = 0
        with obs.span("pass.placement", placement=self.config.placement) as placement_span:
            for _ in range(self.config.max_rename_rounds):
                rename_rounds += 1
                cfg = CFG(kernel)
                rdefs = ReachingDefs(cfg)
                with obs.span("pass.liveins"):
                    liveins = analyze_liveins(
                        kernel, regions, cfg=cfg, rdefs=rdefs
                    )
                if policy.selective:
                    # Recomputed every round: renaming changes names, so
                    # the criticality/vulnerability sets must follow.
                    with obs.span("pass.policy", policy=str(policy)):
                        critical, top = self._policy_selection(cfg)
                        from repro.policy import filter_liveins

                        filter_liveins(liveins, policy, critical, top)
                cost = CostModel.for_cfg(cfg, base=self.config.cost_base)
                with obs.span("pass.plan"):
                    plan = self._make_plan(cfg, liveins, cost)
                instances = materialize_instances(plan, cfg)
                with obs.span("pass.hazards"):
                    hazardous = detect_hazards(cfg, regions, liveins, instances)
                if overwrite != "rr" or not hazardous:
                    break
                with obs.span("pass.renaming"):
                    renamed = apply_renaming(
                        kernel, cfg, regions, liveins, rdefs, instances
                    )
                if renamed == 0:
                    break
            else:
                placement_span.tag(rounds=rename_rounds, converged=False)
                self._raise_renaming(overwrite, kernel, hazardous)
            placement_span.tag(rounds=rename_rounds)
        obs.inc("compile.rename_rounds", rename_rounds)

        return self._lower(
            kernel, launch, overwrite, cfg, rdefs, regions, liveins,
            cost, plan, instances, hazardous,
        )

    def _policy_selection(self, cfg: CFG):
        """The (criticality, top-vulnerable) name sets the configured
        policy needs on ``cfg`` — ``None`` for the ones it does not."""
        from repro.analysis.vuln import (
            address_critical_registers,
            register_vulnerability,
        )
        from repro.policy import ProtectionPolicy

        policy = ProtectionPolicy.parse(self.config.policy)
        critical = top = None
        if policy.needs_criticality:
            critical = address_critical_registers(cfg)
        if policy.needs_vulnerability:
            report = register_vulnerability(
                cfg, loop_base=self.config.cost_base
            )
            top = policy.top_set(report)
        return critical, top

    def _raise_renaming(self, overwrite, kernel, hazardous):
        raise RenamingError(
            "register renaming did not converge within "
            f"{self.config.max_rename_rounds} rounds "
            f"({len(hazardous)} hazardous register(s) remain)",
            scheme=overwrite,
            kernel=kernel,
            detail={
                "rounds": self.config.max_rename_rounds,
                "hazardous": sorted(r.name for r in hazardous),
            },
        )

    def _lower(
        self, kernel, launch, overwrite, cfg, rdefs, regions, liveins,
        cost, plan, instances, hazardous,
    ) -> CompileResult:
        # Storage alternation for whatever hazards remain (all of them in
        # "sa" mode; the renaming-resistant rest in "rr" mode).
        coloring: Optional[ColoringResult] = None
        if overwrite != "none" and hazardous:
            with obs.span("pass.coloring", hazardous=len(hazardous)):
                coloring = color_checkpoints(
                    cfg, regions, liveins, instances, hazardous
                )

        # Pruning.  (The alias analysis used for region formation predates
        # the block splits, so build a fresh one on the current CFG.)
        with obs.span("pass.pddg"):
            aa = AliasAnalysis(
                cfg, rdefs, param_noalias=self.config.param_noalias
            )
            loops = LoopInfo(cfg)
            ctrldep = ControlDependence(cfg)
            validator = PddgValidator(
                cfg, rdefs, plan, instances, aa, loops, ctrldep, coloring
            )
        with obs.span("pass.pruning", mode=self.config.pruning):
            prune = self._run_pruning(plan, validator)

        # Recovery table (may force-commit unsliceable registers), kept
        # consistent with the snapshot machinery of colored registers:
        # mixed prune states are committed wholesale and fully-slice-
        # restored registers drop their dummies.
        with obs.span("pass.recovery_table"):
            for _ in range(self.config.max_replan_rounds):
                recovery = build_recovery_table(
                    cfg, liveins, plan, validator, prune.slices, coloring
                )
                if coloring is None:
                    break
                forced = self._reconcile_coloring(plan, coloring, recovery)
                if forced == 0:
                    break
            else:
                raise ReconcileError(
                    "pruning/coloring reconciliation diverged within "
                    f"{self.config.max_replan_rounds} rounds",
                    scheme=overwrite,
                    kernel=kernel,
                    detail={"rounds": self.config.max_replan_rounds},
                )

        # Storage assignment over the final committed set.
        with obs.span("pass.storage", mode=self.config.storage_mode):
            budget = replace(
                self.budget,
                threads_per_block=launch.threads_per_block,
                kernel_shared_bytes=sum(
                    4 * d.num_words for d in kernel.shared
                ),
            )
            storage = assign_storage(
                plan,
                cfg,
                cost,
                budget,
                coloring,
                mode=self.config.storage_mode,
                total_threads=launch.total_threads,
            )

        # Code generation.
        with obs.span("pass.codegen", low_opts=self.config.low_opts):
            codegen = generate(
                kernel,
                cfg,
                plan,
                storage,
                coloring,
                low_opts=self.config.low_opts,
            )
            for label, entry in adjustment_recoveries(
                coloring, codegen.adjustment_labels
            ).items():
                recovery.regions[label] = entry
            if codegen.extra_slices:
                for entry in recovery.regions.values():
                    from repro.core.recovery_meta import RestoreAction

                    for reg_name, expr in sorted(
                        codegen.extra_slices.items()
                    ):
                        entry.restores.append(
                            RestoreAction(
                                reg_name=reg_name, dtype="u32",
                                slice_expr=expr,
                            )
                        )

        kernel.meta["recovery_table"] = recovery
        kernel.meta["region_boundaries"] = regions.boundaries
        kernel.meta["protected"] = True

        from repro.policy import ProtectionPolicy

        policy = ProtectionPolicy.parse(self.config.policy)
        if not policy.is_full:
            kernel.meta["protection_policy"] = str(policy)
            protected = self._protected_registers(kernel, policy, recovery)
            if protected is not None:
                kernel.meta["protected_registers"] = protected

        if self.config.verify:
            from repro.core.verify import check as verify_check

            with obs.span("pass.verify"):
                verify_check(kernel)

        result = CompileResult(
            kernel=kernel,
            config=self.config,
            launch=launch,
            plan=plan,
            regions=regions,
            recovery=recovery,
            coloring=coloring,
            codegen=codegen,
            stats={},
        )
        self._fill_stats(result, cost, overwrite, storage, hazardous)
        return result

    def _protected_registers(self, kernel, policy, recovery):
        """The run-time protected set of a selectively compiled kernel.

        Computed on the *final* post-codegen kernel: the criticality and
        vulnerability sets must cover the checkpoint stores and address
        arithmetic the compiler just emitted, so under ``address-only``
        every address-feeding chain in the shipped code is protected by
        construction.  ``None`` = every register (full/detection bases).
        """
        from repro.analysis.vuln import (
            address_critical_registers,
            register_vulnerability,
        )
        from repro.policy import (
            KIND_ADDRESS,
            KIND_TOPK,
            reserved_register_names,
        )

        final_cfg = CFG(kernel)
        critical = top = None
        if policy.kind == KIND_ADDRESS:
            critical = address_critical_registers(final_cfg)
        elif policy.kind == KIND_TOPK:
            report = register_vulnerability(
                final_cfg, loop_base=self.config.cost_base
            )
            top = policy.top_set(report)
        restores = {
            action.reg_name
            for entry in recovery.regions.values()
            for action in entry.restores
        }
        return policy.protected_names(
            critical=critical,
            top=top,
            reserved=reserved_register_names(kernel),
            restores=restores,
        )

    def _reconcile_coloring(
        self, plan: CheckpointPlan, coloring: ColoringResult, recovery
    ) -> int:
        """All-or-nothing pruning for colored registers; drop snapshot
        dummies of registers whose restores are all slice-based."""
        from repro.core.checkpoints import PruneState

        forced = 0
        for reg in sorted(
            coloring.colored_registers, key=lambda r: r.name
        ):
            cps = plan.of_register(reg)
            if not cps:
                continue
            has_slot_restore = any(
                action.reg_name == reg.name and action.is_slot
                for entry in recovery.regions.values()
                for action in entry.restores
            )
            states = {cp.state for cp in cps}
            if not has_slot_restore and states == {PruneState.PRUNED}:
                coloring.drop_register(reg.name)
            elif len(states) > 1 or has_slot_restore and states != {
                PruneState.COMMITTED
            }:
                for cp in cps:
                    if cp.state is not PruneState.COMMITTED:
                        cp.state = PruneState.COMMITTED
                        forced += 1
        if forced:
            plan.stats["pruned"] = len(plan.pruned())
            plan.stats["committed"] = len(plan.committed())
        return forced

    def _make_plan(
        self, cfg: CFG, liveins: LiveinAnalysis, cost: CostModel
    ) -> CheckpointPlan:
        if self.config.placement == "eager":
            return eager_plan(liveins)
        return bimodal_plan(
            cfg, liveins, cost, cover_base=self.config.cover_base
        )

    def _run_pruning(
        self, plan: CheckpointPlan, validator: PddgValidator
    ) -> PruneResult:
        mode = self.config.pruning
        if mode == "none":
            return prune_none(plan)
        if mode == "basic":
            return prune_basic(
                plan,
                validator,
                attempts=self.config.basic_prune_attempts,
                seed=self.config.basic_prune_seed,
            )
        if mode == "optimal":
            return prune_optimal(plan, validator)
        raise ConfigError(
            f"unknown pruning mode {mode!r}", pass_name="pruning"
        )

    def _fill_stats(
        self,
        result: CompileResult,
        cost: CostModel,
        overwrite: str,
        storage,
        hazardous: Set[Reg],
    ) -> None:
        kernel = result.kernel
        cfg = CFG(kernel)
        final_loops = LoopInfo(cfg)  # adjustment blocks may sit in loops
        est = 0
        for blk in cfg.blocks:
            depth_cost = cost.base ** final_loops.depth_of(blk.label)
            for inst in blk.instructions:
                if inst.is_memory_write and _is_checkpoint_store(inst):
                    est += depth_cost
        from repro.core.schemes import Scheme

        result.stats.update(
            {
                "overwrite_scheme": Scheme.parse(overwrite).value,
                "estimated_cost": float(est),
                "checkpoints_total": float(len(result.plan.checkpoints)),
                "checkpoints_committed": float(len(result.plan.committed())),
                "checkpoints_pruned": float(len(result.plan.pruned())),
                "hazardous_registers": float(len(hazardous)),
                "registers": float(count_registers(kernel)),
                "shared_slots": float(storage.shared_slots),
                "global_slots": float(storage.global_slots),
                "shared_ckpt_bytes": float(storage.shared_bytes_per_block),
                "emitted_checkpoints": float(
                    result.codegen.emitted_checkpoints
                ),
                "address_insts": float(result.codegen.emitted_address_insts),
                "forced_commits": float(result.recovery.forced_commits),
                "num_boundaries": float(len(result.regions.boundaries)),
            }
        )
        result.stats["protection_policy"] = self.config.policy
        protected = kernel.meta.get("protected_registers")
        result.stats["protected_registers"] = (
            float(len(protected))
            if protected is not None
            else result.stats["registers"]
        )


def _is_checkpoint_store(inst) -> bool:
    from repro.core.codegen import GLOBAL_CKPT_SYMBOL, SHARED_CKPT_SYMBOL
    from repro.ir.instructions import St
    from repro.ir.types import Reg as _Reg, SymRef

    if not isinstance(inst, St):
        return False
    if isinstance(inst.base, SymRef):
        return inst.base.name in (GLOBAL_CKPT_SYMBOL, SHARED_CKPT_SYMBOL)
    if isinstance(inst.base, _Reg):
        return inst.base.name.startswith(("%ckb_", "%ca"))
    return False
