"""Checkpoint plan: which registers are checkpointed where.

A :class:`PlannedCheckpoint` is a *logical* checkpoint — one vertex of the
bimodal placement graph.  An LUP checkpoint materializes as a single ``cp``
right after its defining instruction; a boundary checkpoint materializes at
the bottom of every predecessor block of the boundary (i.e. just before the
region ends, which is what the recoverability proof requires: live-outs are
saved *before* the region's end).

Eager placement (Bolt's scheme, §3) simply creates one LUP checkpoint per
last-update point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import DefSite
from repro.core.liveins import LiveinAnalysis
from repro.ir.types import Reg


class PruneState(enum.Enum):
    """Pruning decision of a checkpoint (§6.4)."""

    COMMITTED = "committed"
    PRUNED = "pruned"
    UNDECIDED = "undecided"


class CheckpointKind(enum.Enum):
    LUP = "lup"
    BOUNDARY = "boundary"


@dataclass(eq=False)
class PlannedCheckpoint:
    """One logical checkpoint of register ``reg``.  Identity semantics
    (hash/eq by object) — the pruning phases keep checkpoints in sets.

    - LUP kind: ``site`` is the defining instruction; the ``cp`` goes right
      after it (same block).
    - BOUNDARY kind: ``boundary`` is the region-boundary label; ``cp``
      instructions go at the bottom of each predecessor block.

    ``covers`` lists the (lup site, boundary) edges this checkpoint
    satisfies.  ``state`` is filled by pruning; ``color`` by storage
    alternation; ``dummy`` marks adjustment-block checkpoints.
    """

    reg: Reg
    kind: CheckpointKind
    site: Optional[DefSite] = None
    boundary: Optional[str] = None
    covers: Set[Tuple[DefSite, str]] = field(default_factory=set)
    state: PruneState = PruneState.COMMITTED
    color: int = 0
    dummy: bool = False

    def insertion_blocks(self, cfg: Optional[CFG] = None) -> List[str]:
        """Blocks where ``cp`` instructions will be inserted."""
        if self.kind is CheckpointKind.LUP:
            assert self.site is not None
            return [self.site.label]
        assert self.boundary is not None
        if cfg is None:
            raise ValueError("boundary checkpoints need a CFG to locate preds")
        return list(cfg.predecessors(self.boundary))

    @property
    def key(self) -> Tuple:
        if self.kind is CheckpointKind.LUP:
            return ("lup", self.reg.name, self.site.label, self.site.index)
        return ("boundary", self.reg.name, self.boundary)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (
            f"{self.site.label}:{self.site.index}"
            if self.kind is CheckpointKind.LUP
            else self.boundary
        )
        return (
            f"PlannedCheckpoint({self.reg.name} @ {self.kind.value}:{where}, "
            f"{self.state.value})"
        )


@dataclass
class CheckpointPlan:
    """All logical checkpoints of a kernel plus pruning statistics."""

    checkpoints: List[PlannedCheckpoint] = field(default_factory=list)
    #: filled by pruning: counts for the Fig. 12 breakdown
    stats: Dict[str, int] = field(default_factory=dict)

    def committed(self) -> List[PlannedCheckpoint]:
        return [
            c for c in self.checkpoints if c.state is PruneState.COMMITTED
        ]

    def pruned(self) -> List[PlannedCheckpoint]:
        return [c for c in self.checkpoints if c.state is PruneState.PRUNED]

    def of_register(self, reg: Reg) -> List[PlannedCheckpoint]:
        return [c for c in self.checkpoints if c.reg == reg]

    def registers(self) -> Set[Reg]:
        return {c.reg for c in self.checkpoints}

    def find(self, key: Tuple) -> Optional[PlannedCheckpoint]:
        for c in self.checkpoints:
            if c.key == key:
                return c
        return None


def eager_plan(liveins: LiveinAnalysis) -> CheckpointPlan:
    """Bolt's eager checkpointing: one checkpoint per LUP, covering every
    boundary the LUP's value reaches."""
    plan = CheckpointPlan()
    by_site: Dict[Tuple[Reg, DefSite], PlannedCheckpoint] = {}
    # liveins.edges is keyed in discovery order (boundaries in block order,
    # registers by name), so the checkpoint list — and everything downstream
    # that indexes into it, notably prune_basic's seeded random proposals —
    # is deterministic across interpreter hash seeds.
    for reg, edges in liveins.edges.items():
        for lup, boundary in sorted(
            edges, key=lambda e: (e[0].label, e[0].index, e[1])
        ):
            cp = by_site.get((reg, lup))
            if cp is None:
                cp = PlannedCheckpoint(
                    reg=reg, kind=CheckpointKind.LUP, site=lup
                )
                by_site[(reg, lup)] = cp
                plan.checkpoints.append(cp)
            cp.covers.add((lup, boundary))
    return plan
