"""Bimodal checkpoint placement (§6.2).

For each register, every LUP↔boundary edge must be covered by a checkpoint
at one of its endpoints: checkpoint at the LUP (classic eager placement) or
delayed to the region boundary.  Choosing the cheapest set of endpoints is
min-weight vertex cover, NP-hard in general but polynomial on bipartite
graphs: by the weighted König theorem it equals a max-flow / min-cut
computation, which is how Penny solves it.

Vertex weights follow the cost model (``base ** loop_depth``); the paper's
Figure 3 uses base 2.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import networkx as nx

from repro.analysis.cfg import CFG
from repro.analysis.reachingdefs import DefSite
from repro.core.checkpoints import (
    CheckpointKind,
    CheckpointPlan,
    PlannedCheckpoint,
)
from repro.core.costmodel import CostModel
from repro.core.liveins import LiveinAnalysis
from repro.ir.types import Reg


def bimodal_plan(
    cfg: CFG,
    liveins: LiveinAnalysis,
    cost: CostModel,
    cover_base: int = 2,
) -> CheckpointPlan:
    """Choose LUP-vs-boundary placement for every register's checkpoints."""
    plan = CheckpointPlan()
    for reg in sorted(liveins.edges, key=lambda r: r.name):
        edges = liveins.edges[reg]
        chosen_lups, chosen_bounds = _min_weight_cover(
            cfg, cost, edges, cover_base
        )
        _emit_register_plan(plan, reg, edges, chosen_lups, chosen_bounds)
    return plan


def _vertex_weight(cost: CostModel, label: str, base: int) -> int:
    return base ** cost.depth(label)


def _min_weight_cover(
    cfg: CFG,
    cost: CostModel,
    edges: Set[Tuple[DefSite, str]],
    base: int,
) -> Tuple[Set[DefSite], Set[str]]:
    """Min-weight vertex cover of one register's bipartite LUP/boundary
    graph, via max-flow min-cut (weighted König)."""
    lups = {lup for lup, _ in edges}
    bounds = {b for _, b in edges}

    graph = nx.DiGraph()
    source, sink = "S", "T"
    for lup in lups:
        graph.add_edge(
            source,
            ("lup", lup),
            capacity=_vertex_weight(cost, lup.label, base),
        )
    for b in bounds:
        graph.add_edge(
            ("bound", b), sink, capacity=_vertex_weight(cost, b, base)
        )
    for lup, b in edges:
        graph.add_edge(("lup", lup), ("bound", b), capacity=float("inf"))

    _, (s_side, t_side) = nx.minimum_cut(graph, source, sink)
    # A LUP is in the cover when its source edge is cut (LUP on sink side);
    # a boundary is in the cover when its sink edge is cut (boundary on
    # source side).
    chosen_lups = {lup for lup in lups if ("lup", lup) in t_side}
    chosen_bounds = {b for b in bounds if ("bound", b) in s_side}
    return chosen_lups, chosen_bounds


def _emit_register_plan(
    plan: CheckpointPlan,
    reg: Reg,
    edges: Set[Tuple[DefSite, str]],
    chosen_lups: Set[DefSite],
    chosen_bounds: Set[str],
) -> None:
    lup_cps: Dict[DefSite, PlannedCheckpoint] = {}
    bound_cps: Dict[str, PlannedCheckpoint] = {}
    for lup, boundary in sorted(
        edges, key=lambda e: (e[0].label, e[0].index, e[1])
    ):
        if lup in chosen_lups:
            cp = lup_cps.get(lup)
            if cp is None:
                cp = PlannedCheckpoint(reg=reg, kind=CheckpointKind.LUP, site=lup)
                lup_cps[lup] = cp
                plan.checkpoints.append(cp)
            cp.covers.add((lup, boundary))
        if boundary in chosen_bounds:
            cp = bound_cps.get(boundary)
            if cp is None:
                cp = PlannedCheckpoint(
                    reg=reg, kind=CheckpointKind.BOUNDARY, boundary=boundary
                )
                bound_cps[boundary] = cp
                plan.checkpoints.append(cp)
            cp.covers.add((lup, boundary))
        if lup not in chosen_lups and boundary not in chosen_bounds:
            raise AssertionError(
                f"uncovered checkpoint edge for {reg.name}: "
                f"{lup.label}:{lup.index} -> {boundary}"
            )
