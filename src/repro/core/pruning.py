"""Checkpoint pruning: Bolt's basic random search and Penny's optimal
two-phase algorithm (§6.4).

Phase 1 (:func:`prune_optimal`) validates every checkpoint independently
with Algorithm 1: VALID checkpoints are pruned, INVALID ones committed, and
UNDECIDED ones — whose recomputability hinges on other checkpoints'
decisions — move to phase 2.  Phase 2 builds the decision-dependence graph
(Algorithm 2), condenses it with Tarjan's SCC algorithm, and finalizes the
undecided checkpoints in topological order; checkpoints inside a
dependence cycle are committed (the paper brute-forces these and reports
finding none — we record them in the stats instead).

Bolt's basic pruning (:func:`prune_basic`) re-uses the same validator as a
whole-solution checker: random bit-strings propose pruned subsets and the
first valid one wins, exactly the search the paper describes (and exactly
why it leaves many prunable checkpoints committed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.checkpoints import (
    CheckpointPlan,
    PlannedCheckpoint,
    PruneState,
)
from repro.core.errors import PruningError
from repro.core.pddg import PddgValidator, VState
from repro.core.slices import SliceExpr


@dataclass
class PruneResult:
    """Pruning outcome: per-checkpoint states live on the plan itself;
    ``slices`` maps pruned checkpoints (by key) to their recovery-slice
    expressions; ``stats`` feeds the Fig. 12 breakdown."""

    slices: Dict[Tuple, SliceExpr] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)


def prune_none(plan: CheckpointPlan) -> PruneResult:
    """No pruning: every checkpoint committed (the No_pruning bar of
    Fig. 13)."""
    for cp in plan.checkpoints:
        cp.state = PruneState.COMMITTED
    result = PruneResult()
    result.stats = {
        "total": len(plan.checkpoints),
        "pruned": 0,
        "committed": len(plan.checkpoints),
        "undecided_cycles": 0,
    }
    plan.stats = result.stats
    return result


def prune_optimal(
    plan: CheckpointPlan, validator: PddgValidator
) -> PruneResult:
    """Penny's optimal two-phase pruning."""
    result = PruneResult()

    # ---- Phase 1: trivial checkpoints --------------------------------------
    undecided: List[PlannedCheckpoint] = []
    for cp in plan.checkpoints:
        marked = validator.validate_checkpoint(cp, decision=None)
        if marked.state is VState.VALID:
            cp.state = PruneState.PRUNED
            result.slices[cp.key] = marked.expr
        elif marked.state is VState.INVALID:
            cp.state = PruneState.COMMITTED
        else:
            cp.state = PruneState.UNDECIDED
            undecided.append(cp)

    # ---- Phase 2: decision-dependent checkpoints -----------------------------
    cycles = 0
    if undecided:
        cycles = _finalize_undecided(plan, validator, undecided, result)

    # Any checkpoint still undecided is committed conservatively.
    for cp in plan.checkpoints:
        if cp.state is PruneState.UNDECIDED:
            cp.state = PruneState.COMMITTED

    # Invariant: a pruned checkpoint is only recoverable through its slice;
    # a PRUNED state without one means the validator lied and recovery
    # would silently lose the register.
    for cp in plan.checkpoints:
        if cp.state is PruneState.PRUNED and cp.key not in result.slices:
            raise PruningError(
                f"checkpoint {cp.key} pruned without a recovery slice",
                detail={"checkpoint": cp.key},
            )

    result.stats = {
        "total": len(plan.checkpoints),
        "pruned": len(plan.pruned()),
        "committed": len(plan.committed()),
        "undecided_cycles": cycles,
        "materialization_failures": validator.materialization_failures,
    }
    plan.stats = result.stats
    return result


def _finalize_undecided(
    plan: CheckpointPlan,
    validator: PddgValidator,
    undecided: List[PlannedCheckpoint],
    result: PruneResult,
) -> int:
    """Phase 2: order undecided checkpoints by decision dependence and
    finalize them.  Returns the number of checkpoints inside dependence
    cycles (committed conservatively)."""

    def decision(cp: PlannedCheckpoint) -> PruneState:
        return cp.state

    # Decision-dependence graph restricted to undecided checkpoints.
    undecided_set = set(id(cp) for cp in undecided)
    deps_of: Dict[int, Set[int]] = {}
    by_id: Dict[int, PlannedCheckpoint] = {id(cp): cp for cp in undecided}
    for cp in undecided:
        deps = validator.collect_decision_deps(cp, decision)
        deps_of[id(cp)] = {
            id(d) for d in deps if id(d) in undecided_set
        }

    order, cyclic = _tarjan_topological(deps_of)

    in_cycle = 0
    for node_id in order:
        cp = by_id[node_id]
        if node_id in cyclic:
            cp.state = PruneState.COMMITTED
            in_cycle += 1
            continue
        marked = validator.validate_checkpoint(cp, decision=decision)
        if marked.state is VState.VALID:
            cp.state = PruneState.PRUNED
            result.slices[cp.key] = marked.expr
        else:
            cp.state = PruneState.COMMITTED
    return in_cycle


def _tarjan_topological(
    deps_of: Dict[int, Set[int]]
) -> Tuple[List[int], Set[int]]:
    """Tarjan's SCC algorithm.  Returns node ids in dependence-respecting
    order (dependencies before dependents) plus the ids belonging to SCCs of
    size > 1 (cyclic decision dependence)."""
    index_counter = [0]
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []

    def strongconnect(v: int) -> None:
        work = [(v, iter(deps_of.get(v, ())))]
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(deps_of.get(w, ()))))
                    advanced = True
                    break
                elif w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)

    for v in deps_of:
        if v not in index:
            strongconnect(v)

    # Tarjan emits SCCs in reverse topological order of the condensation —
    # i.e. dependencies first, which is exactly the processing order.
    order: List[int] = []
    cyclic: Set[int] = set()
    for scc in sccs:
        if len(scc) > 1:
            cyclic.update(scc)
        order.extend(scc)
    return order, cyclic


def prune_basic(
    plan: CheckpointPlan,
    validator: PddgValidator,
    attempts: int = 64,
    seed: int = 12345,
) -> PruneResult:
    """Bolt's basic pruning: random n-bit strings propose pruned subsets;
    the first *valid* solution encountered wins (§6.4: "finds any first
    valid solution encountered during the random searches").

    Each checkpoint's bit is an SHA-256 coin over ``(seed, attempt,
    checkpoint key)`` rather than a draw from a sequential RNG, so the
    search outcome is independent of the checkpoint list's order (and of
    ``PYTHONHASHSEED``) — same property :func:`gpusim.campaign.stable_seed`
    gives injection plans.
    """
    n = len(plan.checkpoints)
    result = PruneResult()

    best: Optional[Tuple[Set[int], Dict[Tuple, SliceExpr]]] = None
    for attempt in range(attempts):
        proposal = {
            i
            for i, cp in enumerate(plan.checkpoints)
            if _stable_coin(seed, attempt, cp.key)
        }
        slices = _validate_solution(plan, validator, proposal)
        if slices is not None:
            best = (proposal, slices)
            break
    if best is None:
        # Fall back to the always-valid empty pruning.
        best = (set(), {})

    pruned_idx, slices = best
    for i, cp in enumerate(plan.checkpoints):
        cp.state = (
            PruneState.PRUNED if i in pruned_idx else PruneState.COMMITTED
        )
    result.slices = slices
    result.stats = {
        "total": n,
        "pruned": len(pruned_idx),
        "committed": n - len(pruned_idx),
        "undecided_cycles": 0,
    }
    plan.stats = result.stats
    return result


def _stable_coin(seed: int, attempt: int, key: Tuple) -> bool:
    """A fair coin that depends only on the checkpoint's identity."""
    digest = hashlib.sha256(
        f"{seed}:{attempt}:{key!r}".encode("utf-8")
    ).digest()
    return digest[0] < 128


def _validate_solution(
    plan: CheckpointPlan, validator: PddgValidator, pruned_idx: Set[int]
) -> Optional[Dict[Tuple, SliceExpr]]:
    """Whole-solution check: with the proposal's committed set fixed, every
    pruned checkpoint must validate.  Returns the slices on success."""
    states: Dict[int, PruneState] = {}
    for i, cp in enumerate(plan.checkpoints):
        states[id(cp)] = (
            PruneState.PRUNED if i in pruned_idx else PruneState.COMMITTED
        )

    def decision(cp: PlannedCheckpoint) -> PruneState:
        return states.get(id(cp), PruneState.COMMITTED)

    slices: Dict[Tuple, SliceExpr] = {}
    for i, cp in enumerate(plan.checkpoints):
        if i not in pruned_idx:
            continue
        marked = validator.validate_checkpoint(cp, decision=decision)
        if marked.state is not VState.VALID:
            return None
        slices[cp.key] = marked.expr
    return slices
