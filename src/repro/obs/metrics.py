"""The metrics registry: counters, gauges, and bucketed histograms.

Everything here is designed around one algebraic requirement: **merging
must be associative and commutative with an identity** (a fresh, empty
registry), because campaign shards merge worker snapshots in whatever
order the pool delivers them and the result must be bit-identical to a
serial run.  Concretely:

- **counters** merge by summation,
- **histograms** merge by per-bucket summation,
- **gauges** merge by ``max`` (the only order-independent choice that is
  still useful for high-water marks like peak register demand).

Snapshots (:meth:`Counters.to_dict`) are plain JSON-serializable dicts,
and :meth:`Counters.from_dict` round-trips them, so a snapshot can cross
a process boundary inside a campaign record.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional


def pow2_bucket(n: int) -> str:
    """A power-of-two histogram bucket label for a non-negative count.

    ``0 -> "0"``, ``1 -> "1"``, ``2..3 -> "2-3"``, ``4..7 -> "4-7"``, ...
    Stable, compact labels so shard merges agree on bucket identity.
    """
    if n <= 0:
        return "0"
    if n == 1:
        return "1"
    lo = 1
    while lo * 2 <= n:
        lo *= 2
    return f"{lo}-{lo * 2 - 1}"


class Counters:
    """A named-metric registry (counters + gauges + histograms)."""

    __slots__ = ("counts", "gauges", "hists")

    def __init__(self):
        self.counts: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, Dict[str, float]] = {}

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, bucket: str, n: float = 1) -> None:
        hist = self.hists.setdefault(name, {})
        hist[bucket] = hist.get(bucket, 0) + n

    def observe_value(self, name: str, value: int, n: float = 1) -> None:
        """Observe a non-negative integer into power-of-two buckets."""
        self.observe(name, pow2_bucket(value), n)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "Counters") -> "Counters":
        """Fold ``other`` into this registry (in place; returns self)."""
        for name, n in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + n
        for name, v in other.gauges.items():
            cur = self.gauges.get(name)
            self.gauges[name] = v if cur is None else max(cur, v)
        for name, hist in other.hists.items():
            mine = self.hists.setdefault(name, {})
            for bucket, n in hist.items():
                mine[bucket] = mine.get(bucket, 0) + n
        return self

    @classmethod
    def merged(cls, registries: Iterable["Counters"]) -> "Counters":
        out = cls()
        for reg in registries:
            out.merge(reg)
        return out

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot with deterministic key order."""
        return {
            "counters": {k: self.counts[k] for k in sorted(self.counts)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {b: hist[b] for b in sorted(hist)}
                for name, hist in sorted(self.hists.items())
            },
        }

    @classmethod
    def from_dict(cls, d: Optional[Mapping]) -> "Counters":
        out = cls()
        if not d:
            return out
        out.counts.update(d.get("counters", {}))
        out.gauges.update(d.get("gauges", {}))
        for name, hist in d.get("histograms", {}).items():
            out.hists[name] = dict(hist)
        return out

    # -- conveniences ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.counts or self.gauges or self.hists)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Counters({len(self.counts)} counters, "
            f"{len(self.gauges)} gauges, {len(self.hists)} histograms)"
        )
