"""The ``Reportable`` protocol: one serialization contract for results.

Before this protocol existed, three divergent ad-hoc serializations fed
anything that wanted numbers out of the system: ``CompileResult.stats``
(a loose float dict), the campaign CLI's hand-rolled JSON payload, and
the fuzz report's bucket dump.  Every sink had to special-case each.
Now every result type implements:

- ``to_dict()`` — a complete, JSON-serializable dict whose first key is
  a ``kind`` discriminator (``compile_result``, ``execution_result``,
  ``campaign_report``, ``fuzz_report``, ``finding``) with snake_case
  keys throughout, and
- ``summary()`` — a small flat dict of the headline numbers, suitable
  for one-line logging or a table row.

The JSONL metrics sink (:class:`repro.obs.export.MetricsSink`) writes
any Reportable directly; :func:`as_report_dict` is the duck-typed
adapter for code that receives "something resembling a result".
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, runtime_checkable


@runtime_checkable
class Reportable(Protocol):
    """Anything that can serialize itself for the metrics sink."""

    def to_dict(self) -> Dict[str, Any]:
        """Complete JSON-serializable form, ``kind``-discriminated."""
        ...

    def summary(self) -> Dict[str, Any]:
        """Flat headline numbers (a table row, not the whole story)."""
        ...


def as_report_dict(obj: Any) -> Dict[str, Any]:
    """Best-effort conversion of a result-ish object to a report dict."""
    if isinstance(obj, Reportable):
        return obj.to_dict()
    if isinstance(obj, dict):
        return obj
    raise TypeError(
        f"{type(obj).__name__} implements neither Reportable nor dict"
    )
