"""``repro.obs`` — zero-dependency observability for the whole system.

Three pieces, wired through every layer of the reproduction:

- **Tracing** (:mod:`repro.obs.tracer`): a context-var-scoped
  :class:`Tracer` with nested spans and a strictly no-op default.  Every
  compiler pass, fallback rung, simulator run and recovery is a span;
  unobserved runs pay one ``ContextVar.get`` per instrumentation site.

- **Metrics** (:mod:`repro.obs.metrics`): a :class:`Counters` registry
  (counters, gauges, power-of-two histograms) whose merge is associative
  and commutative — campaign shards merge worker snapshots in arrival
  order and still equal a serial run.

- **Export** (:mod:`repro.obs.export`): Chrome trace-event JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev) and a JSONL metrics
  sink fed by the :class:`Reportable` protocol
  (:mod:`repro.obs.report`), each with a schema validator.

Quickstart::

    from repro import obs

    tracer = obs.Tracer()
    with tracer:
        result = repro.protect(kernel)      # passes appear as spans
    obs.write_chrome_trace("trace.json", tracer)
    print(tracer.counters.to_dict())

Or from the shell::

    penny trace examples/scale.ptx --trace-out trace.json
"""

from repro.obs.export import (
    METRIC_KINDS,
    MetricsSink,
    chrome_trace,
    find_span,
    load_chrome_trace,
    span_names,
    validate_chrome_trace,
    validate_metrics_jsonl,
    validate_metrics_record,
    write_chrome_trace,
)
from repro.obs.metrics import Counters, pow2_bucket
from repro.obs.report import Reportable, as_report_dict
from repro.obs.tracer import (
    NULL_SPAN,
    EventRecord,
    SpanRecord,
    Tracer,
    current_tracer,
    event,
    gauge,
    inc,
    observe,
    span,
)

__all__ = [
    # tracer
    "Tracer",
    "SpanRecord",
    "EventRecord",
    "NULL_SPAN",
    "current_tracer",
    "span",
    "event",
    "inc",
    "observe",
    "gauge",
    # metrics
    "Counters",
    "pow2_bucket",
    # report
    "Reportable",
    "as_report_dict",
    # export
    "MetricsSink",
    "METRIC_KINDS",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "validate_metrics_record",
    "validate_metrics_jsonl",
    "span_names",
    "find_span",
]
