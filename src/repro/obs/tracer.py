"""Context-var-scoped tracing: nested spans with a strictly no-op default.

Design constraints, in priority order:

1. **Unobserved code pays (almost) nothing.**  Every instrumentation site
   calls :func:`span` (or :func:`event`); when no tracer is installed that
   is one ``ContextVar.get`` plus a ``None`` check, and the returned
   context manager is a shared singleton whose ``__enter__``/``__exit__``
   do nothing and allocate nothing.  Instrumentation is therefore placed
   at *pass* and *event* granularity (a compile emits dozens of spans, a
   simulation emits one per recovery) — never per instruction.

2. **Scoping is dynamic, not lexical.**  The current tracer lives in a
   :class:`contextvars.ContextVar`, so ``with tracer:`` observes
   everything called underneath it — including library code that knows
   nothing about who is watching — and composes with threads and asyncio
   the way context vars do.

3. **Spans are plain data.**  A finished :class:`SpanRecord` is a frozen
   bag of (name, start, end, parent, tags) that the exporters
   (:mod:`repro.obs.export`) turn into Chrome trace-event JSON without
   touching live objects.

Usage::

    from repro import obs

    tracer = obs.Tracer()
    with tracer:
        with obs.span("compile", kernel="axpy"):
            with obs.span("pass.regions"):
                ...
            obs.inc("compile.regions_cut", 3)
    obs.write_chrome_trace("trace.json", tracer)
"""

from __future__ import annotations

import itertools
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Counters

_CURRENT: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_tracer", default=None
)


def current_tracer() -> Optional["Tracer"]:
    """The tracer observing this context, or ``None`` (unobserved)."""
    return _CURRENT.get()


class _NullSpan:
    """The shared do-nothing span handed out when no tracer is installed.

    A singleton: :func:`span` must not allocate on the unobserved path.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (pure data; exporters consume these)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float  # seconds, tracer clock
    end: float
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class EventRecord:
    """One instant event (a point in time, no duration)."""

    name: str
    at: float
    parent_id: Optional[int]
    tags: Dict[str, Any] = field(default_factory=dict)


class _LiveSpan:
    """An open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start", "tags")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Dict[str, Any],
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start = 0.0

    def tag(self, **tags: Any) -> "_LiveSpan":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "_LiveSpan":
        self.start = self._tracer._clock()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        stack = self._tracer._stack
        # Tolerate mis-nested exits (an exception unwinding through
        # several spans): pop back to (and including) this span.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        if self._tracer.record_spans:
            self._tracer.spans.append(
                SpanRecord(
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    name=self.name,
                    start=self.start,
                    end=end,
                    tags=self.tags,
                )
            )
        return False


class Tracer:
    """Collects spans, events and metrics for one observed activity.

    ``record_spans=False`` keeps only the metrics registry — what the
    campaign engine's workers use, where per-injection span lists would
    be pure memory pressure.

    A tracer is also a context manager: ``with tracer:`` installs it as
    the context's current tracer and restores the previous one on exit
    (tracers nest; the innermost wins).
    """

    def __init__(self, record_spans: bool = True, clock=time.perf_counter):
        self.record_spans = record_spans
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.counters = Counters()
        self._clock = clock
        self._stack: List[_LiveSpan] = []
        self._ids = itertools.count(1)
        self._token = None

    # -- installation ---------------------------------------------------------

    def __enter__(self) -> "Tracer":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False

    # -- recording ------------------------------------------------------------

    def span(self, name: str, **tags: Any) -> _LiveSpan:
        parent = self._stack[-1].span_id if self._stack else None
        return _LiveSpan(self, next(self._ids), parent, name, tags)

    def event(self, name: str, **tags: Any) -> None:
        if not self.record_spans:
            return
        parent = self._stack[-1].span_id if self._stack else None
        self.events.append(
            EventRecord(
                name=name, at=self._clock(), parent_id=parent, tags=tags
            )
        )

    # -- inspection -----------------------------------------------------------

    def roots(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[SpanRecord]:
        """All finished spans with exactly this name."""
        return [s for s in self.spans if s.name == name]


# -- module-level instrumentation API (the no-op fast path) ---------------------


def span(name: str, **tags: Any):
    """A span under the current tracer, or the shared no-op singleton."""
    tracer = _CURRENT.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **tags)


def event(name: str, **tags: Any) -> None:
    """An instant event under the current tracer (no-op when unobserved)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.event(name, **tags)


def inc(name: str, n: float = 1) -> None:
    """Increment a counter on the current tracer (no-op when unobserved)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.counters.inc(name, n)


def observe(name: str, bucket: str, n: float = 1) -> None:
    """Add to a histogram bucket on the current tracer (no-op version)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.counters.observe(name, bucket, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current tracer (no-op when unobserved)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.counters.gauge(name, value)
