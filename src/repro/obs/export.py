"""Exporters: Chrome trace-event JSON and the JSONL metrics sink.

**Chrome trace format.**  :func:`chrome_trace` renders a tracer's spans
as *complete* events (``"ph": "X"``) and its instant events as ``"ph":
"i"``, in the JSON-object flavor (``{"traceEvents": [...]}``) that both
``chrome://tracing`` and Perfetto load directly.  Timestamps and
durations are microseconds relative to the earliest span, span tags
become ``args``, and the span taxonomy's first dotted component becomes
the category (``"pass.regions"`` -> cat ``"pass"``).  Nesting needs no
explicit parent links in this format — the viewers reconstruct it from
containment on the same pid/tid — but ``args.span_id``/``args.parent_id``
are preserved for programmatic consumers.

**Metrics sink.**  :class:`MetricsSink` appends JSON records to a JSONL
file, one object per line, each stamped with a ``kind`` discriminator.
Anything :class:`repro.obs.report.Reportable` can be written directly;
counter registries are written as ``kind: "counters"`` snapshots.

Both formats ship a validator (:func:`validate_chrome_trace`,
:func:`validate_metrics_jsonl`) returning a list of problems — empty
means valid — so tests and CI gate artifacts on schema, not vibes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import Counters
from repro.obs.tracer import Tracer

#: metrics-record discriminators the sink emits / the validator accepts
METRIC_KINDS = (
    "counters",
    "compile_result",
    "execution_result",
    "campaign_report",
    "fuzz_report",
    "finding",
    "meta",
    "diagnostic",
    "lint_report",
    "batch_report",
    "cache_stats",
    "cache_benchmark",
    "bench_result",
    "bench_comparison",
)


# -- Chrome trace-event JSON ------------------------------------------------------


def chrome_trace(
    tracer: Tracer,
    process_name: str = "repro",
    pid: int = 1,
    tid: int = 1,
) -> Dict[str, Any]:
    """Render a tracer's spans/events as a Chrome trace-event object."""
    origin = min(
        [s.start for s in tracer.spans] + [e.at for e in tracer.events],
        default=0.0,
    )

    def us(t: float) -> float:
        return round((t - origin) * 1e6, 3)

    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for s in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        args = dict(s.tags)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ts": us(s.start),
                "dur": us(s.end) - us(s.start),
                "args": args,
            }
        )
    for e in sorted(tracer.events, key=lambda e: e.at):
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tid,
                "name": e.name,
                "cat": e.name.split(".", 1)[0],
                "ts": us(e.at),
                "s": "t",  # thread-scoped instant
                "args": dict(e.tags),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer, **kwargs) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, **kwargs), f, indent=1, default=str)
        f.write("\n")


def validate_chrome_trace(obj: Any) -> List[str]:
    """Schema-check a Chrome trace object; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(obj, Mapping):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, Mapping):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        args = ev.get("args", {})
        if not isinstance(args, Mapping):
            problems.append(f"{where}: args not an object")
    # Containment sanity: every X event with a parent_id must fall inside
    # its parent's [ts, ts+dur] window (the invariant viewers rely on).
    by_id = {
        ev["args"]["span_id"]: ev
        for ev in events
        if isinstance(ev, Mapping)
        and ev.get("ph") == "X"
        and isinstance(ev.get("args"), Mapping)
        and "span_id" in ev["args"]
    }
    for ev in by_id.values():
        parent_id = ev["args"].get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {ev['args']['span_id']}: parent {parent_id} missing"
            )
            continue
        eps = 1e-3  # µs rounding slack
        if not (
            parent["ts"] - eps <= ev["ts"]
            and ev["ts"] + ev["dur"] <= parent["ts"] + parent["dur"] + eps
        ):
            problems.append(
                f"span {ev['args']['span_id']} ({ev['name']}) escapes "
                f"parent {parent_id} ({parent['name']})"
            )
    return problems


# -- JSONL metrics sink -----------------------------------------------------------


class MetricsSink:
    """Append-only JSONL metrics writer, flushed per record."""

    def __init__(self, path: str):
        self.path = path
        self._f = open(path, "w")

    def write(self, kind: str, payload: Mapping[str, Any]) -> None:
        record = {"kind": kind}
        record.update(payload)
        self._f.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._f.flush()

    def write_counters(
        self, counters: Counters, **context: Any
    ) -> None:
        payload: Dict[str, Any] = dict(context)
        payload["data"] = counters.to_dict()
        self.write("counters", payload)

    def write_report(self, reportable) -> None:
        """Write anything implementing the Reportable protocol."""
        d = reportable.to_dict()
        kind = d.get("kind", "meta")
        self.write(kind, {k: v for k, v in d.items() if k != "kind"})

    def close(self) -> None:
        self._f.close()

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def validate_metrics_record(obj: Any) -> List[str]:
    """Schema-check one metrics record; returns problems (empty = ok)."""
    if not isinstance(obj, Mapping):
        return ["record is not an object"]
    problems: List[str] = []
    kind = obj.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append(f"bad kind {kind!r}")
    elif kind not in METRIC_KINDS:
        problems.append(f"unknown kind {kind!r}")
    if kind == "counters":
        data = obj.get("data")
        if not isinstance(data, Mapping):
            problems.append("counters record missing 'data' object")
        else:
            for section in ("counters", "gauges", "histograms"):
                if section not in data:
                    problems.append(f"counters data missing {section!r}")
    return problems


def validate_metrics_jsonl(
    path_or_lines: Union[str, List[str]]
) -> List[str]:
    """Validate a JSONL metrics file (or pre-split lines)."""
    if isinstance(path_or_lines, str):
        with open(path_or_lines) as f:
            lines = f.readlines()
    else:
        lines = path_or_lines
    problems: List[str] = []
    seen = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        seen += 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        problems.extend(
            f"line {lineno}: {p}" for p in validate_metrics_record(obj)
        )
    if seen == 0:
        problems.append("no records")
    return problems


def load_chrome_trace(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)


def span_names(trace_obj: Mapping[str, Any]) -> List[str]:
    """All X-event names in a Chrome trace object (with duplicates)."""
    return [
        ev["name"]
        for ev in trace_obj.get("traceEvents", [])
        if isinstance(ev, Mapping) and ev.get("ph") == "X"
    ]


def find_span(
    trace_obj: Mapping[str, Any], name: str
) -> Optional[Dict[str, Any]]:
    for ev in trace_obj.get("traceEvents", []):
        if isinstance(ev, Mapping) and ev.get("ph") == "X" and ev.get("name") == name:
            return dict(ev)
    return None
