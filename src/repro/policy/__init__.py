"""Selective-protection policies: which registers Penny actually guards.

Penny historically protects *everything*: every region-boundary live-in
is checkpointed and every register carries a detection code.  The
related work protects selectively — PRESAGE guards only the chains that
feed memory addresses, partial-protection schemes guard the top
fraction of registers by expected fault impact — and a
:class:`ProtectionPolicy` makes that a first-class compiler knob:

=====================  ======================================================
``full``               the historical behavior: checkpoint every live-in,
                       parity on every register
``address-only``       PRESAGE-style: protect exactly the backward chains
                       feeding memory addresses, branch predicates and
                       barrier conditions (:mod:`repro.analysis.vuln`)
``top-k-vulnerable``   protect the K most vulnerable registers by
                       ACE-style live-interval exposure; ``K`` is a
                       fraction (``:0.5``) or an absolute count (``:8``)
``detection-only``     parity on every register but no checkpoints: faults
                       are *detected* (DUE) but never recovered
``none``               nothing at all — the SDC baseline
=====================  ======================================================

A policy string is ``;``-separated: the base kind first, then optional
``label=kind`` per-region overrides (the boundary ``label``'s live-ins
are selected under ``kind`` instead of the base), then the literal
``no-addr-guard`` to opt out of the ``policy-uncovered-addr`` lint
guarantee.  Examples::

    full
    address-only
    top-k-vulnerable:0.25
    none;BB7=full
    top-k-vulnerable:4;no-addr-guard

Two independent mechanisms fall out of one policy:

- **checkpoint selection** — per boundary, which live-ins are
  checkpointed/restored (drives the whole §5 pipeline);
- **the protected set** — which register names carry a detection code at
  run time (``kernel.meta["protected_registers"]``; ``None`` = all).
  Partial policies always keep parity on the compiler-reserved
  checkpoint-addressing registers and on every register the recovery
  table restores, so recovery itself stays detectable.

The canonical string form round-trips through :meth:`parse` and is what
``PennyConfig.to_dict`` (and therefore the serve cache key) carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple, Union

KIND_FULL = "full"
KIND_ADDRESS = "address-only"
KIND_TOPK = "top-k-vulnerable"
KIND_DETECTION = "detection-only"
KIND_NONE = "none"

#: kinds that select no checkpoints at a boundary
UNPROTECTED_KINDS = (KIND_DETECTION, KIND_NONE)

#: kinds allowed as per-region overrides (``top-k`` is whole-kernel: its
#: ranking has no per-region meaning)
OVERRIDE_KINDS = (KIND_FULL, KIND_ADDRESS, KIND_DETECTION, KIND_NONE)

_KIND_ALIASES: Dict[str, str] = {
    "full": KIND_FULL,
    "all": KIND_FULL,
    "penny": KIND_FULL,
    "address-only": KIND_ADDRESS,
    "addr-only": KIND_ADDRESS,
    "addr": KIND_ADDRESS,
    "address": KIND_ADDRESS,
    "presage": KIND_ADDRESS,
    "top-k-vulnerable": KIND_TOPK,
    "top-k": KIND_TOPK,
    "topk": KIND_TOPK,
    "top": KIND_TOPK,
    "detection-only": KIND_DETECTION,
    "detection": KIND_DETECTION,
    "detect": KIND_DETECTION,
    "none": KIND_NONE,
    "off": KIND_NONE,
}

#: register-name prefixes the compiler reserves for checkpoint machinery;
#: partial policies always keep these under the detection code
RESERVED_REG_PREFIXES = ("%ckb_", "%ca")

#: default ``top-k-vulnerable`` parameter when none is given
DEFAULT_TOP_FRACTION = 0.5


class PolicyError(ValueError):
    """A protection-policy string failed to parse."""


def _parse_kind(token: str, where: str) -> Tuple[str, Optional[float]]:
    token = token.strip().lower().replace("_", "-")
    param: Optional[float] = None
    if ":" in token:
        token, _, raw = token.partition(":")
        try:
            param = float(raw)
        except ValueError:
            raise PolicyError(
                f"bad top-k parameter {raw!r} in {where}"
            ) from None
    kind = _KIND_ALIASES.get(token)
    if kind is None:
        known = sorted(
            {KIND_FULL, KIND_ADDRESS, KIND_TOPK, KIND_DETECTION, KIND_NONE}
        )
        raise PolicyError(
            f"unknown protection kind {token!r} in {where}; known: {known}"
        )
    if param is not None:
        if kind != KIND_TOPK:
            raise PolicyError(
                f"kind {kind!r} takes no parameter (in {where})"
            )
        if param <= 0:
            raise PolicyError(
                f"top-k parameter must be positive, got {param} in {where}"
            )
        if param >= 1 and param != int(param):
            raise PolicyError(
                f"top-k count must be an integer, got {param} in {where}"
            )
    return kind, param


def _format_param(param: float) -> str:
    if param >= 1:
        return str(int(param))
    return repr(param)


@dataclass(frozen=True)
class ProtectionPolicy:
    """One parsed policy: base kind, top-k parameter, region overrides."""

    kind: str = KIND_FULL
    #: top-k parameter: a fraction in (0, 1) or an integer count >= 1;
    #: ``None`` means :data:`DEFAULT_TOP_FRACTION` (only for ``top-k``)
    top_k: Optional[float] = None
    #: sorted ``(boundary label, kind)`` per-region overrides
    overrides: Tuple[Tuple[str, str], ...] = ()
    #: when False the policy opted out of the ``policy-uncovered-addr``
    #: guarantee (the ``no-addr-guard`` token)
    addr_guard: bool = True

    @classmethod
    def parse(
        cls, value: Union["ProtectionPolicy", str, None]
    ) -> "ProtectionPolicy":
        """Parse a policy string (or pass a policy through).  ``None``
        and the empty string mean ``full``.  Raises :class:`PolicyError`
        (a ``ValueError``) on malformed input."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if not isinstance(value, str):
            raise PolicyError(
                f"cannot parse {value!r} as a protection policy"
            )
        tokens = [t.strip() for t in value.split(";") if t.strip()]
        if not tokens:
            return cls()
        kind, param = _parse_kind(tokens[0], "the base policy")
        overrides: Dict[str, str] = {}
        addr_guard = True
        for token in tokens[1:]:
            if token.lower().replace("_", "-") == "no-addr-guard":
                addr_guard = False
                continue
            label, sep, raw_kind = token.partition("=")
            if not sep or not label.strip():
                raise PolicyError(
                    f"bad policy token {token!r}: expected 'label=kind' "
                    "or 'no-addr-guard'"
                )
            okind, oparam = _parse_kind(
                raw_kind, f"override for {label.strip()!r}"
            )
            if okind not in OVERRIDE_KINDS or oparam is not None:
                raise PolicyError(
                    f"kind {okind!r} is not allowed as a per-region "
                    f"override; allowed: {sorted(OVERRIDE_KINDS)}"
                )
            overrides[label.strip()] = okind
        if kind != KIND_TOPK and param is not None:
            raise PolicyError(f"kind {kind!r} takes no parameter")
        return cls(
            kind=kind,
            top_k=param,
            overrides=tuple(sorted(overrides.items())),
            addr_guard=addr_guard,
        )

    def __str__(self) -> str:
        base = self.kind
        if self.kind == KIND_TOPK and self.top_k is not None:
            base += f":{_format_param(self.top_k)}"
        parts = [base]
        parts.extend(f"{label}={kind}" for label, kind in self.overrides)
        if not self.addr_guard:
            parts.append("no-addr-guard")
        return ";".join(parts)

    # -- policy queries -------------------------------------------------------

    def kind_at(self, label: str) -> str:
        """The checkpoint-selection kind for boundary ``label``."""
        for olabel, okind in self.overrides:
            if olabel == label:
                return okind
        return self.kind

    @property
    def is_full(self) -> bool:
        """The historical protect-everything behavior, exactly."""
        return self.kind == KIND_FULL and not self.overrides

    @property
    def unprotected(self) -> bool:
        """No boundary anywhere selects a checkpoint: the pipeline can
        skip region formation entirely."""
        return self.kind in UNPROTECTED_KINDS and all(
            k in UNPROTECTED_KINDS for _, k in self.overrides
        )

    @property
    def selective(self) -> bool:
        """Protects something, but not everything the classic way."""
        return not self.is_full and not self.unprotected

    @property
    def needs_criticality(self) -> bool:
        return self.kind == KIND_ADDRESS or any(
            k == KIND_ADDRESS for _, k in self.overrides
        )

    @property
    def needs_vulnerability(self) -> bool:
        return self.kind == KIND_TOPK

    def top_set(self, report) -> FrozenSet[str]:
        """The protected names under ``top-k`` given a
        :class:`repro.analysis.vuln.VulnerabilityReport`."""
        param = self.top_k if self.top_k is not None else DEFAULT_TOP_FRACTION
        if param >= 1:
            return report.top_k(int(param))
        return report.top_fraction(param)

    # -- checkpoint selection -------------------------------------------------

    def checkpoint_selection(
        self,
        label: str,
        names: Iterable[str],
        critical: Optional[FrozenSet[str]] = None,
        top: Optional[FrozenSet[str]] = None,
    ) -> Set[str]:
        """Which of the live-in ``names`` at boundary ``label`` the
        policy checkpoints."""
        kind = self.kind_at(label)
        names = set(names)
        if kind == KIND_FULL:
            return names
        if kind in UNPROTECTED_KINDS:
            return set()
        if kind == KIND_ADDRESS:
            return names & set(critical or ())
        return names & set(top or ())  # KIND_TOPK

    # -- the run-time protected set -------------------------------------------

    def protected_names(
        self,
        critical: Optional[FrozenSet[str]] = None,
        top: Optional[FrozenSet[str]] = None,
        reserved: Iterable[str] = (),
        restores: Iterable[str] = (),
    ) -> Optional[FrozenSet[str]]:
        """Register names carrying a detection code at run time.

        ``None`` means *all* (full/detection-only bases).  Partial
        policies union in the compiler-reserved checkpoint-addressing
        registers and every restored register, so detection covers the
        recovery machinery itself."""
        if self.kind in (KIND_FULL, KIND_DETECTION):
            return None
        if self.kind == KIND_NONE:
            base: Set[str] = set()
        elif self.kind == KIND_ADDRESS:
            base = set(critical or ())
        else:  # KIND_TOPK
            base = set(top or ())
        base |= set(reserved)
        base |= set(restores)
        return frozenset(base)


def filter_liveins(liveins, policy, critical=None, top=None):
    """Restrict a :class:`repro.core.liveins.LiveinAnalysis` in place to
    the policy's checkpoint selection.

    Returns ``{label: dropped reg names}`` for stats.  Dropping a
    register from a boundary removes it from ``live_ins``, ``lups`` and
    the bipartite ``edges`` relation, so placement, hazard detection and
    the recovery table all see only the selected registers.
    """
    dropped: Dict[str, Set[str]] = {}
    for label, info in liveins.boundaries.items():
        keep = policy.checkpoint_selection(
            label, (r.name for r in info.live_ins), critical, top
        )
        removed = {r for r in info.live_ins if r.name not in keep}
        if not removed:
            continue
        info.live_ins -= removed
        for reg in removed:
            info.lups.pop(reg, None)
        dropped[label] = {r.name for r in removed}
    if dropped:
        for reg in list(liveins.edges):
            kept = {
                (site, label)
                for (site, label) in liveins.edges[reg]
                if not (label in dropped and reg.name in dropped[label])
            }
            if kept:
                liveins.edges[reg] = kept
            else:
                del liveins.edges[reg]
    return dropped


def reserved_register_names(kernel) -> Set[str]:
    """Compiler-reserved checkpoint-machinery registers in ``kernel``."""
    names: Set[str] = set()
    for blk in kernel.blocks:
        for inst in blk.instructions:
            for reg in list(inst.defs()) + list(inst.reg_uses()):
                if reg.name.startswith(RESERVED_REG_PREFIXES):
                    names.add(reg.name)
    return names


__all__ = [
    "DEFAULT_TOP_FRACTION",
    "KIND_ADDRESS",
    "KIND_DETECTION",
    "KIND_FULL",
    "KIND_NONE",
    "KIND_TOPK",
    "OVERRIDE_KINDS",
    "PolicyError",
    "ProtectionPolicy",
    "RESERVED_REG_PREFIXES",
    "UNPROTECTED_KINDS",
    "filter_liveins",
    "reserved_register_names",
]
