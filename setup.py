"""Setup shim for environments installing without PEP 517 build isolation."""
from setuptools import setup

setup()
